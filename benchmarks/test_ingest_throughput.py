"""E11 — End-to-end intake throughput of the streaming ingestion pipeline.

The serving story (PR 6) measured how fast mined rules leave the system;
this benchmark measures how fast transactions *enter* it through the full
``repro ingest`` path: micro-batching, ledger dedup, journaled apply, FUP
maintenance.  Two runs share one session directory:

* **clean** — every event key is fresh, so the measured rate is the real
  apply cost per event;
* **redelivered** — the same stream offered again, so every event dedups
  against the ledger and the rate isolates the intake overhead (the price
  of the at-least-once guarantee when nothing needs applying).

The final lattice is asserted equal to a from-scratch mine of the updated
database, so the throughput numbers are only reported for provably correct
state.  With ``REPRO_BENCH_ARTIFACT`` set, the measurements land in the
``ingest`` section of ``BENCH_maintenance.json``.
"""

from __future__ import annotations

import pytest

from repro import AprioriMiner
from repro.harness import measure_ingest_throughput
from repro.ingest import IngestEvent

from .conftest import build_workload, print_report, timing_asserts_enabled, update_bench_artifact

MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.5
BATCH_EVENTS = 64

#: The redelivered pass applies nothing, so it must not be slower than the
#: clean pass by more than this factor (ledger lookups are cheap; FUP is not).
MAX_DEDUP_SLOWDOWN = 1.0


def _events(increment) -> list[IngestEvent]:
    return [
        IngestEvent(key=f"txn-{tid}", op="insert", items=tuple(rows))
        for tid, rows in enumerate(increment.transactions())
    ]


@pytest.mark.benchmark(group="maintenance")
def test_ingest_throughput_clean_vs_redelivered(benchmark, tmp_path):
    workload = build_workload("T10.I4.D100.d10", seed=47)
    events = _events(workload.increment)
    session_dir = tmp_path / "session"

    def run_clean():
        return measure_ingest_throughput(
            session_dir,
            events,
            database=workload.original,
            min_support=MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            batch_events=BATCH_EVENTS,
        )

    clean = benchmark.pedantic(run_clean, rounds=1, iterations=1)
    assert clean.applied == len(events) and clean.duplicates == 0

    # The producer redelivers the whole stream (at-least-once worst case).
    redelivered = measure_ingest_throughput(session_dir, events, batch_events=BATCH_EVENTS)
    assert redelivered.applied == 0
    assert redelivered.duplicates == len(events)

    # Correctness gate: the maintained lattice equals a from-scratch mine.
    final = AprioriMiner(MIN_SUPPORT).mine(
        workload.original.concatenate(workload.increment)
    )
    assert clean.itemsets == len(final.lattice)
    assert clean.database_size == len(workload.original) + len(workload.increment)

    rows = [
        {"pass": "clean", **clean.as_dict()},
        {"pass": "redelivered", **redelivered.as_dict()},
    ]
    print_report(
        f"E11 ingest throughput — {workload.name}, batch={BATCH_EVENTS}", rows
    )
    update_bench_artifact(
        "BENCH_maintenance.json",
        "maintenance_session",
        "ingest",
        {
            "workload": workload.name,
            "batch_events": BATCH_EVENTS,
            "passes": rows,
        },
    )

    if timing_asserts_enabled():
        assert (
            redelivered.seconds <= clean.seconds * MAX_DEDUP_SLOWDOWN
        ), "deduplicating a redelivered stream should not cost more than applying it"

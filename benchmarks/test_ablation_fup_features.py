"""E9 — Ablation: what each FUP design choice contributes.

Not a figure of the paper, but DESIGN.md calls out four separable design
choices in FUP (candidate pruning by increment support, Lemma-3 loser
filtering, the Section-3.4 database reductions, and the DHP hash filter).
This benchmark disables them one at a time and reports the impact on run time
and candidate counts, confirming that the increment-support pruning is the
dominant optimisation — which is the paper's central claim.
"""

from __future__ import annotations

import pytest

from repro import FupOptions
from repro.harness.runner import run_fup_update

from .conftest import print_report

MIN_SUPPORT = 0.01

VARIANTS = [
    ("full FUP", FupOptions()),
    ("no increment-support pruning", FupOptions(prune_candidates_by_increment=False)),
    ("no Lemma-3 loser filtering", FupOptions(filter_losers_by_subsets=False)),
    ("no database reduction", FupOptions(reduce_databases=False)),
    ("no DHP hash filter", FupOptions(use_hash_filter=False)),
    ("all optimisations off", FupOptions.all_disabled()),
]


@pytest.mark.benchmark(group="ablation")
def test_ablation_of_fup_features(benchmark, figure2_workload, initial_results_cache):
    """Run FUP with each optimisation disabled in turn and compare."""
    workload = figure2_workload
    initial = initial_results_cache(workload.original, MIN_SUPPORT)

    def run_variants():
        results = []
        for label, options in VARIANTS:
            result = run_fup_update(
                workload.original,
                initial,
                workload.increment,
                MIN_SUPPORT,
                options=options,
            )
            results.append((label, result))
        return results

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    reference = dict(results)["full FUP"]
    rows = []
    for label, result in results:
        # Every variant must compute the same answer.
        assert result.lattice.supports() == reference.lattice.supports()
        rows.append(
            {
                "variant": label,
                "seconds": result.elapsed_seconds,
                "candidates": result.candidates_generated,
                "db_scans": result.database_scans,
                "transactions_read": result.transactions_read,
            }
        )
    print_report(
        f"Ablation - FUP feature contributions on {workload.name} at {MIN_SUPPORT:.2%}", rows
    )

    by_label = dict(results)
    # Increment-support pruning is the dominant candidate-set reducer.
    assert (
        by_label["full FUP"].candidates_generated
        <= by_label["no increment-support pruning"].candidates_generated
    )
    # Disabling everything can only increase (or equal) the work done.
    assert (
        by_label["full FUP"].transactions_read
        <= by_label["all optimisations off"].transactions_read
    )

"""Benchmark-regression gate: fresh BENCH artifacts vs committed baselines.

CI regenerates ``BENCH_serving.json``, ``BENCH_backends.json`` and
``BENCH_maintenance.json`` on every run (``REPRO_BENCH_ARTIFACT=1``); this
script compares the throughput numbers of that fresh run against the
baselines committed in git and fails
(exit 1) when a metric fell below ``tolerance × baseline`` — a generous
band, because shared CI runners are noisy and the gate exists to catch
*collapses* (an accidentally quadratic code path, a lost index), not
single-digit-percent drift.

The gate **skips instead of failing** whenever the comparison would not be
apples-to-apples, mirroring the ``assertion_active`` discipline of the
benchmarks themselves:

* a file or section is missing on either side (a new section has no
  baseline yet; an old baseline predates a section),
* the two runs used different ``REPRO_BENCH_SCALE``,
* the row was recorded with ``assertion_active: false`` (1-core runner or
  smoke scale — the numbers are a trajectory, not a promise),
* the machine running the gate has fewer than 2 usable cores.

Every metric is reported in a table with its verdict so a skip is visible
in the log, never silent.

Usage::

    python benchmarks/check_regression.py \
        --baseline-dir /tmp/bench-baseline --fresh-dir . [--tolerance 0.4]

Pure standard library; no repro import needed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Comparison", "check", "collect_comparisons", "main", "usable_cpus"]

#: Fresh value must reach this fraction of the baseline (default gate).
DEFAULT_TOLERANCE = 0.4

#: path-into-document → metric, per artifact file.  Every metric is a
#: throughput or speedup where *bigger is better*; latency-style metrics
#: would need an inverted gate, so they are deliberately not listed.
METRICS: dict[str, tuple[tuple[str, ...], ...]] = {
    "BENCH_serving.json": (
        ("basket_queries", "indexed", "queries_per_second"),
        ("basket_queries", "speedup_indexed_vs_linear"),
        ("closed_loop", "threaded", "queries_per_second"),
        ("closed_loop", "async", "queries_per_second"),
        ("open_loop", "async", "queries_per_second"),
    ),
    "BENCH_backends.json": (
        ("vertical_speedup_vs_horizontal",),
        ("kernels", "speedup_numpy_vs_bigint"),
        ("snapshot_open", "speedup_v2_open_vs_v1"),
    ),
    "BENCH_maintenance.json": (
        ("index_maintenance", "speedup_delta_vs_rebuild"),
        ("deletion_validation", "validation_speedup_vs_rebuild"),
        ("session_kernels", "speedup_numpy_vs_bigint"),
        ("policy_modes", "skip", "skip_work_ratio"),
    ),
}

#: Sections whose rows carry an ``assertion_active`` flag; a false flag on
#: either side downgrades that section's metrics to SKIP.
GATED_SECTIONS = ("closed_loop", "open_loop", "kernels", "snapshot_open", "policy_modes")


@dataclass(frozen=True)
class Comparison:
    """One metric's verdict: ``ok``, ``regression`` or ``skip``."""

    metric: str
    verdict: str
    detail: str
    baseline: float | None = None
    fresh: float | None = None

    @property
    def row(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "baseline": "-" if self.baseline is None else f"{self.baseline:,.1f}",
            "fresh": "-" if self.fresh is None else f"{self.fresh:,.1f}",
            "verdict": self.verdict.upper(),
            "detail": self.detail,
        }


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _load(path: Path) -> dict | None:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def _dig(document: dict, path: tuple[str, ...]):
    value: object = document
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def _assertion_inactive(document: dict, path: tuple[str, ...]) -> bool:
    """True when the metric's section says its numbers are not gate-worthy."""
    if path[0] not in GATED_SECTIONS:
        return False
    section = document.get(path[0])
    return isinstance(section, dict) and section.get("assertion_active") is False


def collect_comparisons(
    baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> list[Comparison]:
    """Compare every known metric; one :class:`Comparison` per metric."""
    comparisons: list[Comparison] = []
    for filename, metric_paths in METRICS.items():
        baseline_doc = _load(baseline_dir / filename)
        fresh_doc = _load(fresh_dir / filename)
        for path in metric_paths:
            name = f"{filename.removeprefix('BENCH_').removesuffix('.json')}:" + ".".join(path)
            if baseline_doc is None or fresh_doc is None:
                side = "baseline" if baseline_doc is None else "fresh"
                comparisons.append(Comparison(name, "skip", f"no {side} {filename}"))
                continue
            if baseline_doc.get("scale") != fresh_doc.get("scale"):
                comparisons.append(
                    Comparison(
                        name,
                        "skip",
                        f"scale mismatch (baseline {baseline_doc.get('scale')}, "
                        f"fresh {fresh_doc.get('scale')})",
                    )
                )
                continue
            baseline_value = _dig(baseline_doc, path)
            fresh_value = _dig(fresh_doc, path)
            if not isinstance(baseline_value, (int, float)) or not isinstance(
                fresh_value, (int, float)
            ):
                side = "baseline" if not isinstance(baseline_value, (int, float)) else "fresh"
                comparisons.append(Comparison(name, "skip", f"metric missing in {side}"))
                continue
            if _assertion_inactive(baseline_doc, path) or _assertion_inactive(fresh_doc, path):
                comparisons.append(
                    Comparison(
                        name,
                        "skip",
                        "assertion_active=false (1-core or smoke-scale run)",
                        float(baseline_value),
                        float(fresh_value),
                    )
                )
                continue
            floor = tolerance * float(baseline_value)
            if float(fresh_value) >= floor:
                verdict, detail = "ok", f"≥ {tolerance:.0%} of baseline"
            else:
                verdict = "regression"
                detail = f"below {tolerance:.0%} of baseline (floor {floor:,.1f})"
            comparisons.append(
                Comparison(name, verdict, detail, float(baseline_value), float(fresh_value))
            )
    return comparisons


def check(baseline_dir: Path, fresh_dir: Path, tolerance: float) -> tuple[int, list[Comparison]]:
    """Exit code (0 pass/skip, 1 regression) plus the per-metric verdicts."""
    cpus = usable_cpus()
    if cpus < 2:
        return 0, [
            Comparison(
                "*", "skip", f"only {cpus} usable core(s): throughput gating is meaningless"
            )
        ]
    comparisons = collect_comparisons(baseline_dir, fresh_dir, tolerance)
    failed = any(comparison.verdict == "regression" for comparison in comparisons)
    return (1 if failed else 0), comparisons


def _print_table(comparisons: list[Comparison]) -> None:
    rows = [comparison.row for comparison in comparisons]
    columns = ["metric", "baseline", "fresh", "verdict", "detail"]
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row[column]).ljust(widths[column]) for column in columns))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json throughput against committed baselines."
    )
    parser.add_argument(
        "--baseline-dir",
        required=True,
        type=Path,
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh-dir",
        required=True,
        type=Path,
        help="directory holding the freshly regenerated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fresh value must reach this fraction of the baseline "
        f"(default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    if not 0 < args.tolerance <= 1:
        parser.error(f"--tolerance must be in (0, 1], got {args.tolerance}")
    if not args.baseline_dir.is_dir() or not args.fresh_dir.is_dir():
        missing = args.baseline_dir if not args.baseline_dir.is_dir() else args.fresh_dir
        parser.error(f"not a directory: {missing}")

    exit_code, comparisons = check(args.baseline_dir, args.fresh_dir, args.tolerance)
    _print_table(comparisons)
    if exit_code:
        print("\nFAIL: benchmark regression detected", file=sys.stderr)
    else:
        print("\nbenchmark gate passed")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

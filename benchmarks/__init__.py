"""Paper-reproduction benchmarks (collected as the ``benchmarks`` package).

The ``__init__`` makes relative imports of the shared ``conftest`` helpers
(``from .conftest import ...``) package-safe so that ``python -m pytest``
collects these modules from any rootdir.
"""

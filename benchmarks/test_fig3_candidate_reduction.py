"""E3 — Figure 3: reduction of the candidate-set count.

Figure 3 plots the ratio between the number of candidate itemsets FUP has to
check against the original database and the number the baselines generate on
the updated database.  The paper reports FUP's candidate pool being roughly
1.5-5% of DHP's (and an even smaller fraction of Apriori's) on T10.I4.D100.d1.

The sweep itself is shared with Figure 2 (session-scoped fixture); this
benchmark times the candidate-accounting pass and prints / checks the ratios.
"""

from __future__ import annotations

import pytest

from .conftest import nontrivial, print_report


@pytest.mark.benchmark(group="figure3")
def test_figure3_candidate_reduction(benchmark, figure2_workload, figure2_sweep):
    """Reproduce the Figure 3 candidate-count ratio series."""
    workload = figure2_workload
    comparisons = figure2_sweep

    def collect_ratios():
        return [
            (comparison.against_dhp.candidate_ratio, comparison.against_apriori.candidate_ratio)
            for comparison in comparisons
        ]

    benchmark.pedantic(collect_ratios, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        rows.append(
            {
                "min_support": f"{comparison.min_support:.2%}",
                "fup_candidates": comparison.fup.candidates_generated,
                "dhp_candidates": comparison.dhp.candidates_generated,
                "apriori_candidates": comparison.apriori.candidates_generated,
                "fup/dhp": comparison.against_dhp.candidate_ratio,
                "fup/apriori": comparison.against_apriori.candidate_ratio,
            }
        )
    print_report(f"Figure 3 - candidate-set reduction on {workload.name}", rows)

    # Shape checks: wherever the mining problem is non-trivial, FUP's candidate
    # pool is a small fraction of both baselines' (the paper reports 1.5-5%
    # against DHP; at bench scale we require a clear reduction rather than the
    # exact percentage band).
    meaningful = [comparison for comparison in comparisons if nontrivial(comparison)]
    assert meaningful, "the sweep must contain non-trivial support levels"
    for comparison in meaningful:
        assert comparison.against_dhp.candidate_ratio < 0.5
        assert comparison.against_apriori.candidate_ratio < 0.5
    # The reduction is strongest at the smallest support (most candidates saved).
    assert meaningful[-1].against_apriori.candidate_ratio < 0.25

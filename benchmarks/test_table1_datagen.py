"""E1 — Table 1: the synthetic-workload parameter table.

Table 1 of the paper lists the parameters of the synthetic databases
(|D|, |d|, |T|, |I|, |L|, N).  This benchmark generates a scaled
``T10.I4.D100.d1`` workload, verifies that the generated data honours every
parameter, reports the generation throughput, and prints the realised table
next to the requested values.
"""

from __future__ import annotations

import pytest

from repro import compute_stats
from repro.datagen.synthetic import SyntheticConfig, SyntheticDataGenerator

from .conftest import BENCH_ITEM_COUNT, BENCH_PATTERN_COUNT, BENCH_SCALE, print_report


@pytest.mark.benchmark(group="table1")
def test_table1_parameter_table(benchmark):
    """Generate the Figure-2 workload and check every Table-1 parameter."""
    config = SyntheticConfig(
        database_size=int(100_000 * BENCH_SCALE),
        increment_size=int(1_000 * BENCH_SCALE),
        mean_transaction_size=10,
        mean_pattern_size=4,
        pattern_count=BENCH_PATTERN_COUNT,
        item_count=BENCH_ITEM_COUNT,
    )

    def generate():
        return SyntheticDataGenerator(config).generate()

    original, increment = benchmark.pedantic(generate, rounds=1, iterations=1)

    original_stats = compute_stats(original)
    increment_stats = compute_stats(increment)

    # |D| and |d|: exact transaction counts.
    assert original_stats.transaction_count == config.database_size
    assert increment_stats.transaction_count == config.increment_size
    # |T|: mean transaction size close to the requested 10.
    assert original_stats.mean_transaction_size == pytest.approx(10, rel=0.35)
    # N: items drawn from the configured universe.
    assert original_stats.distinct_items <= config.item_count

    print_report(
        "Table 1 - synthetic workload parameters (requested vs realised)",
        [
            {"parameter": "|D| transactions in DB", "requested": config.database_size,
             "realised": original_stats.transaction_count},
            {"parameter": "|d| transactions in db", "requested": config.increment_size,
             "realised": increment_stats.transaction_count},
            {"parameter": "|T| mean transaction size", "requested": config.mean_transaction_size,
             "realised": round(original_stats.mean_transaction_size, 2)},
            {"parameter": "|I| mean pattern size", "requested": config.mean_pattern_size,
             "realised": config.mean_pattern_size},
            {"parameter": "|L| potentially large itemsets", "requested": config.pattern_count,
             "realised": config.pattern_count},
            {"parameter": "N items", "requested": config.item_count,
             "realised": original_stats.distinct_items},
        ],
    )

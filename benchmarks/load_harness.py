"""Closed-loop and open-loop load generator for the rule-serving tier.

Drives a running ``repro serve`` endpoint (either front end) with concurrent
keep-alive clients and reports sustained q/s plus p50/p95/p99 latency — the
serving-side analogue of the counting benchmarks, so serving performance
becomes a recorded trajectory instead of an anecdote.

Two generator disciplines, because they answer different questions:

* **Closed loop** (``--mode closed``): each of ``--clients`` workers keeps
  exactly one request in flight — send, wait, repeat.  Offered load adapts
  to the server, so this measures *capacity*: the best sustained q/s the
  server gives N well-behaved keep-alive clients.  Latency here excludes
  queueing you didn't create: it is pure service time under concurrency N.
* **Open loop** (``--mode open --rate R``): arrivals are scheduled on a
  fixed clock (arrival *i* at ``i/R`` seconds) no matter how the server is
  doing, like independent users who do not coordinate.  Latency is measured
  **from the scheduled arrival time**, not from when a worker got around to
  sending — so if the server (or a saturated worker pool) falls behind, the
  queueing delay lands in the percentiles instead of being silently omitted
  (the classic coordinated-omission mistake).

Each worker owns one persistent ``http.client.HTTPConnection`` (HTTP/1.1
keep-alive); a connection that dies is reopened and the request counted as
an error.  Requests are ``GET /recommend`` by default; ``--batch B`` posts
B baskets per request to the async front end's batched endpoint (q/s then
counts logical basket queries, requests × B, so batched and unbatched runs
are comparable).  Baskets are drawn from the served rule set itself
(antecedents of ``GET /rules``), so the query mix actually exercises rule
matching rather than missing everything.

Results can be merged into a ``BENCH_serving.json``-style document
(``--out``/``--section``) and gated (``--max-p99-ms``, ``--fail-on-5xx``)
so CI can run this as a smoke test — see the ``load-smoke`` job.

Usage::

    python benchmarks/load_harness.py --url http://127.0.0.1:8000 \
        --mode closed --clients 32 --seconds 5 \
        --out BENCH_serving.json --section load_smoke \
        --max-p99-ms 500 --fail-on-5xx

Needs ``PYTHONPATH=src`` (or an installed ``repro``) for the shared
latency-summary dataclass; everything else is standard library.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from urllib.parse import urlsplit

from repro.harness.metrics import LatencySummary

__all__ = [
    "LoadResult",
    "basket_pool_from_rules",
    "main",
    "merge_artifact_section",
    "run_load",
    "wait_until_healthy",
]

#: Statuses bucketed in the per-run report.
STATUS_CLASSES = ("2xx", "3xx", "4xx", "5xx")


@dataclass
class LoadResult:
    """Everything one generator run measured (one row of a BENCH section)."""

    mode: str
    clients: int
    rate: float | None
    batch: int
    latency: LatencySummary
    statuses: dict[str, int]
    status_429: int
    errors: int
    late_arrivals: int

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "mode": self.mode,
            "clients": self.clients,
            "batch": self.batch,
        }
        if self.rate is not None:
            payload["offered_rate_per_second"] = self.rate
            payload["late_arrivals"] = self.late_arrivals
        payload.update(self.latency.as_dict())
        payload["statuses"] = dict(self.statuses)
        payload["responses_429"] = self.status_429
        payload["transport_errors"] = self.errors
        return payload


@dataclass
class _WorkerState:
    """Mutable per-run accumulators, merged under one lock."""

    latencies: list[float] = field(default_factory=list)
    statuses: dict[str, int] = field(default_factory=lambda: dict.fromkeys(STATUS_CLASSES, 0))
    status_429: int = 0
    errors: int = 0
    late_arrivals: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


def _host_port(url: str) -> tuple[str, int]:
    parsed = urlsplit(url)
    if parsed.scheme != "http" or parsed.hostname is None:
        raise ValueError(f"need an http://host:port URL, got {url!r}")
    return parsed.hostname, parsed.port or 80


def _get_json(url: str, path: str, timeout: float = 10.0) -> tuple[int, dict]:
    host, port = _host_port(url)
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def wait_until_healthy(url: str, timeout_seconds: float) -> dict:
    """Poll ``/health`` until it reports ``status: ok``; returns the payload."""
    deadline = time.monotonic() + timeout_seconds
    last_error = "no response"
    while time.monotonic() < deadline:
        try:
            status, payload = _get_json(url, "/health", timeout=2.0)
        except (OSError, HTTPException, ValueError) as exc:
            last_error = str(exc) or type(exc).__name__
        else:
            if status == 200 and payload.get("status") == "ok":
                return payload
            last_error = f"status {status}: {payload}"
        time.sleep(0.1)
    raise TimeoutError(f"{url}/health not ready after {timeout_seconds}s ({last_error})")


def basket_pool_from_rules(url: str, limit: int = 64) -> list[list[int]]:
    """Baskets to query with: the antecedents of the served rules.

    Falls back to single-item baskets ``[1] .. [8]`` when the server has no
    rules (the harness still measures transport + routing cost honestly).
    """
    status, payload = _get_json(url, f"/rules?limit={limit}")
    baskets: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    if status == 200:
        for rule in payload.get("rules", []):
            antecedent = rule.get("antecedent")
            if isinstance(antecedent, list) and antecedent:
                key = tuple(antecedent)
                if key not in seen:
                    seen.add(key)
                    baskets.append(list(antecedent))
    return baskets or [[item] for item in range(1, 9)]


def _request_once(
    connection: HTTPConnection,
    *,
    batch: int,
    baskets: list[list[int]],
    cursor: int,
    k: int,
    client_id: str,
) -> int:
    """Issue one request (GET, or batched POST when ``batch > 0``)."""
    headers = {"X-Client-Id": client_id}
    if batch > 0:
        chosen = [baskets[(cursor + offset) % len(baskets)] for offset in range(batch)]
        body = json.dumps({"baskets": chosen, "k": k}).encode("utf-8")
        headers["Content-Type"] = "application/json"
        connection.request("POST", "/recommend", body=body, headers=headers)
    else:
        basket = ",".join(str(item) for item in baskets[cursor % len(baskets)])
        connection.request("GET", f"/recommend?basket={basket}&k={k}", headers=headers)
    response = connection.getresponse()
    response.read()  # drain so the connection can be reused
    return response.status


def run_load(
    url: str,
    *,
    mode: str = "closed",
    clients: int = 8,
    seconds: float = 5.0,
    rate: float | None = None,
    batch: int = 0,
    k: int = 5,
    baskets: list[list[int]] | None = None,
    warmup_seconds: float = 0.0,
) -> LoadResult:
    """Run one load-generation pass and summarise it.

    ``mode="closed"``: ``clients`` workers, one outstanding request each.
    ``mode="open"``: arrivals at fixed ``rate``/second shared across the
    worker pool; latency counted from the *scheduled* arrival time.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs a positive --rate")
    if clients < 1:
        raise ValueError(f"clients must be positive, got {clients}")
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    host, port = _host_port(url)
    pool = baskets if baskets else basket_pool_from_rules(url)

    if warmup_seconds > 0:
        _warmup(host, port, pool, k, warmup_seconds)

    state = _WorkerState()
    start = time.monotonic() + 0.05  # let every worker reach its loop first
    deadline = start + seconds
    arrival_counter = [0]
    arrival_lock = threading.Lock()

    def next_arrival() -> float | None:
        """Claim the next open-loop arrival slot; ``None`` past the deadline."""
        with arrival_lock:
            index = arrival_counter[0]
            arrival_counter[0] += 1
        scheduled = start + index / rate
        return None if scheduled >= deadline else scheduled

    def worker(worker_index: int) -> None:
        connection = HTTPConnection(host, port, timeout=30)
        client_id = f"load-{worker_index}"
        cursor = worker_index
        local = _WorkerState()
        while True:
            if mode == "open":
                scheduled = next_arrival()
                if scheduled is None:
                    break
                delay = scheduled - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                else:
                    local.late_arrivals += 1
                reference = scheduled
            else:
                now = time.monotonic()
                if now >= deadline:
                    break
                reference = now
            try:
                status = _request_once(
                    connection,
                    batch=batch,
                    baskets=pool,
                    cursor=cursor,
                    k=k,
                    client_id=client_id,
                )
            except (OSError, HTTPException):
                local.errors += 1
                connection.close()
                connection = HTTPConnection(host, port, timeout=30)
            else:
                local.latencies.append(time.monotonic() - reference)
                if status == 429:
                    local.status_429 += 1
                bucket = f"{status // 100}xx"
                if bucket in local.statuses:
                    local.statuses[bucket] += 1
            cursor += clients
        connection.close()
        with state.lock:
            state.latencies.extend(local.latencies)
            state.errors += local.errors
            state.status_429 += local.status_429
            state.late_arrivals += local.late_arrivals
            for bucket, count in local.statuses.items():
                state.statuses[bucket] += count

    threads = [
        threading.Thread(target=worker, args=(index,), name=f"load-worker-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - start, seconds)

    return LoadResult(
        mode=mode,
        clients=clients,
        rate=rate if mode == "open" else None,
        batch=batch,
        latency=LatencySummary.from_samples(
            state.latencies, elapsed, queries_per_request=max(batch, 1)
        ),
        statuses=state.statuses,
        status_429=state.status_429,
        errors=state.errors,
        late_arrivals=state.late_arrivals,
    )


def _warmup(host: str, port: int, pool: list[list[int]], k: int, seconds: float) -> None:
    """A short single-connection warm pass (connection setup, code paths)."""
    connection = HTTPConnection(host, port, timeout=10)
    deadline = time.monotonic() + seconds
    cursor = 0
    try:
        while time.monotonic() < deadline:
            try:
                _request_once(
                    connection,
                    batch=0,
                    baskets=pool,
                    cursor=cursor,
                    k=k,
                    client_id="load-warmup",
                )
            except (OSError, HTTPException):
                connection.close()
                connection = HTTPConnection(host, port, timeout=10)
            cursor += 1
    finally:
        connection.close()


def merge_artifact_section(path: str | Path, section: str, payload: dict) -> None:
    """Merge *payload* under *section* of a serving-benchmark JSON document.

    Same merge discipline as the in-process serving benchmarks: an existing
    ``{"benchmark": "serving"}`` document keeps its other sections.  When the
    section already holds a dict, *payload*'s keys are merged into it — so
    two harness runs labelling different front ends under one section keep
    both rows instead of the second clobbering the first.
    """
    path = Path(path)
    document: dict = {"benchmark": "serving"}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
        if isinstance(existing, dict) and existing.get("benchmark") == "serving":
            document = existing
    current = document.get(section)
    if isinstance(current, dict) and isinstance(payload, dict):
        current.update(payload)
    else:
        document[section] = payload
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Load-test a running repro serve endpoint "
        "(closed-loop capacity or open-loop fixed-arrival-rate)."
    )
    parser.add_argument("--url", required=True, help="server base URL (http://host:port)")
    parser.add_argument("--mode", choices=["closed", "open"], default="closed")
    parser.add_argument("--clients", type=int, default=8, help="concurrent keep-alive workers")
    parser.add_argument("--seconds", type=float, default=5.0, help="measured duration")
    parser.add_argument(
        "--rate", type=float, help="open-loop arrival rate, requests/second (whole run)"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        help="baskets per request via POST /recommend (0 = unbatched GETs; "
        "the batched endpoint needs the async front end)",
    )
    parser.add_argument("--k", type=int, default=5, help="recommendations per basket")
    parser.add_argument(
        "--warmup", type=float, default=0.5, help="unmeasured warm-up seconds"
    )
    parser.add_argument(
        "--wait-seconds",
        type=float,
        default=30.0,
        help="wait up to this long for /health to report ok before loading",
    )
    parser.add_argument("--out", help="merge results into this BENCH_serving-style JSON file")
    parser.add_argument(
        "--section", help="section name inside --out (default: load_<mode>)"
    )
    parser.add_argument(
        "--label", help="row label inside the section (default: the frontend reported by /health)"
    )
    parser.add_argument(
        "--max-p99-ms", type=float, help="fail (exit 1) when p99 latency exceeds this"
    )
    parser.add_argument(
        "--fail-on-5xx",
        action="store_true",
        help="fail (exit 1) when any 5xx response or transport error occurred",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        health = wait_until_healthy(args.url, args.wait_seconds)
    except (TimeoutError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    frontend = health.get("frontend", "threaded")
    print(
        f"target {args.url}: frontend={frontend} version={health.get('version')} "
        f"rules={health.get('rules')}"
    )
    try:
        result = run_load(
            args.url,
            mode=args.mode,
            clients=args.clients,
            seconds=args.seconds,
            rate=args.rate,
            batch=args.batch,
            k=args.k,
            warmup_seconds=args.warmup,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    row = result.as_dict()
    row["frontend"] = frontend
    print(json.dumps(row, indent=2))

    if args.out:
        section = args.section or f"load_{args.mode}"
        label = args.label or frontend
        merge_artifact_section(args.out, section, {label: row})
        print(f"merged results into {args.out} under {section}/{label}")

    failures = []
    if result.latency.requests == 0:
        failures.append("no request ever completed")
    if args.max_p99_ms is not None and result.latency.p99_ms > args.max_p99_ms:
        failures.append(
            f"p99 latency {result.latency.p99_ms:.1f}ms exceeds --max-p99-ms {args.max_p99_ms}"
        )
    if args.fail_on_5xx and (result.statuses["5xx"] > 0 or result.errors > 0):
        failures.append(
            f"{result.statuses['5xx']} 5xx responses, {result.errors} transport errors"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

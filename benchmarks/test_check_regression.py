"""Unit tests for the benchmark-regression gate (``check_regression.py``).

The gate is CI-critical in the failure direction *and* in the skip
direction: a false failure blocks merges on runner noise, a silent skip
would let a real collapse through unreported.  These tests pin both edges
with synthetic artifact documents.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from . import check_regression


def _write(directory: Path, filename: str, document: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / filename).write_text(json.dumps(document), encoding="utf-8")


def _serving(indexed_qps: float, *, scale: float = 0.01, speedup: float = 8.0) -> dict:
    return {
        "benchmark": "serving",
        "scale": scale,
        "basket_queries": {
            "indexed": {"queries_per_second": indexed_qps},
            "speedup_indexed_vs_linear": speedup,
        },
    }


def _backends(speedup: float, *, scale: float = 0.01) -> dict:
    return {
        "benchmark": "backends_comparison",
        "scale": scale,
        "vertical_speedup_vs_horizontal": speedup,
    }


def _verdicts(comparisons) -> dict[str, str]:
    return {comparison.metric: comparison.verdict for comparison in comparisons}


@pytest.fixture
def dirs(tmp_path: Path) -> tuple[Path, Path]:
    return tmp_path / "baseline", tmp_path / "fresh"


def test_passes_within_tolerance(dirs) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(45_000.0))  # 45% of baseline
    comparisons = check_regression.collect_comparisons(baseline, fresh, tolerance=0.4)
    verdicts = _verdicts(comparisons)
    assert verdicts["serving:basket_queries.indexed.queries_per_second"] == "ok"
    assert not any(verdict == "regression" for verdict in verdicts.values())


def test_detects_collapse(dirs) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(10_000.0))  # 10% of baseline
    comparisons = check_regression.collect_comparisons(baseline, fresh, tolerance=0.4)
    verdicts = _verdicts(comparisons)
    assert verdicts["serving:basket_queries.indexed.queries_per_second"] == "regression"


def test_backends_speedup_is_gated(dirs) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_backends.json", _backends(400.0))
    _write(fresh, "BENCH_backends.json", _backends(2.0))
    comparisons = check_regression.collect_comparisons(baseline, fresh, tolerance=0.4)
    assert _verdicts(comparisons)["backends:vertical_speedup_vs_horizontal"] == "regression"


def test_missing_file_skips_not_fails(dirs) -> None:
    baseline, fresh = dirs
    _write(fresh, "BENCH_serving.json", _serving(100.0))
    fresh.mkdir(exist_ok=True)
    baseline.mkdir(exist_ok=True)  # baseline dir exists but has no artifacts
    comparisons = check_regression.collect_comparisons(baseline, fresh, tolerance=0.4)
    assert set(_verdicts(comparisons).values()) == {"skip"}


def test_missing_section_skips_that_metric_only(dirs) -> None:
    baseline, fresh = dirs
    # Neither side has closed_loop/open_loop sections: those skip, the
    # basket_queries metrics still gate.
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(90_000.0))
    verdicts = _verdicts(check_regression.collect_comparisons(baseline, fresh, tolerance=0.4))
    assert verdicts["serving:basket_queries.indexed.queries_per_second"] == "ok"
    assert verdicts["serving:closed_loop.async.queries_per_second"] == "skip"


def test_scale_mismatch_skips(dirs) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0, scale=0.01))
    _write(fresh, "BENCH_serving.json", _serving(50.0, scale=0.002))
    comparisons = check_regression.collect_comparisons(baseline, fresh, tolerance=0.4)
    assert set(_verdicts(comparisons).values()) == {"skip"}
    detail = next(c.detail for c in comparisons if c.metric.startswith("serving:"))
    assert "scale mismatch" in detail


def test_assertion_inactive_row_skips(dirs) -> None:
    baseline, fresh = dirs
    document = _serving(100_000.0)
    document["closed_loop"] = {
        "assertion_active": False,
        "async": {"queries_per_second": 5000.0},
        "threaded": {"queries_per_second": 4000.0},
    }
    degraded = _serving(100_000.0)
    degraded["closed_loop"] = {
        "assertion_active": False,
        "async": {"queries_per_second": 1.0},  # collapse, but flagged inactive
        "threaded": {"queries_per_second": 1.0},
    }
    _write(baseline, "BENCH_serving.json", document)
    _write(fresh, "BENCH_serving.json", degraded)
    verdicts = _verdicts(check_regression.collect_comparisons(baseline, fresh, tolerance=0.4))
    assert verdicts["serving:closed_loop.async.queries_per_second"] == "skip"
    assert verdicts["serving:basket_queries.indexed.queries_per_second"] == "ok"


def test_check_skips_wholesale_on_one_core(dirs, monkeypatch) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(1.0))  # would be a regression
    monkeypatch.setattr(check_regression, "usable_cpus", lambda: 1)
    exit_code, comparisons = check_regression.check(baseline, fresh, tolerance=0.4)
    assert exit_code == 0
    assert [comparison.verdict for comparison in comparisons] == ["skip"]


def test_check_fails_on_regression_with_cores(dirs, monkeypatch) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(1.0))
    monkeypatch.setattr(check_regression, "usable_cpus", lambda: 4)
    exit_code, comparisons = check_regression.check(baseline, fresh, tolerance=0.4)
    assert exit_code == 1
    assert any(comparison.verdict == "regression" for comparison in comparisons)


def test_main_reports_and_exits(dirs, monkeypatch, capsys) -> None:
    baseline, fresh = dirs
    _write(baseline, "BENCH_serving.json", _serving(100_000.0))
    _write(fresh, "BENCH_serving.json", _serving(80_000.0))
    monkeypatch.setattr(check_regression, "usable_cpus", lambda: 4)
    exit_code = check_regression.main(
        ["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "benchmark gate passed" in captured.out
    assert "serving:basket_queries.indexed.queries_per_second" in captured.out


def test_main_rejects_bad_tolerance(dirs) -> None:
    baseline, fresh = dirs
    baseline.mkdir()
    fresh.mkdir()
    with pytest.raises(SystemExit) as excinfo:
        check_regression.main(
            ["--baseline-dir", str(baseline), "--fresh-dir", str(fresh), "--tolerance", "1.5"]
        )
    assert excinfo.value.code == 2

"""Multi-batch maintenance session: delta-maintained index vs rebuild-per-batch.

The paper's thesis is that re-deriving mined state from scratch after every
update batch is wasteful.  PR 2 applies that same insight to the *index
layer*: the vertical TID-bitset index is maintained by delta through every
mutation instead of being invalidated and rebuilt.  This benchmark measures
exactly that claim on a k-batch insert/delete session:

* **rebuild-per-batch** (the old behaviour): after each batch's mutations,
  build the vertical index from scratch — k full O(D) passes;
* **delta-maintained** (the new behaviour): build the index once, then let
  each batch's ``extend``/``remove_batch`` OR-in and compact the deltas —
  O(dᵢ) per batch.

Each batch inserts a slice of the increment and deletes the oldest
transactions (the sliding-window pattern of the streaming examples); after
every batch the delta-maintained index is asserted bit-for-bit equal to the
from-scratch build, so the speedup is measured on provably identical state.

A second test drives the high-level :class:`~repro.core.maintenance.RuleMaintainer`
through the same kind of session on all three counting engines, asserting
identical final state and recording the end-to-end per-engine cost.

When ``REPRO_BENCH_ARTIFACT`` is set the measurements land in
``BENCH_maintenance.json`` (repo root, or the path the variable names) so CI
uploads them next to ``BENCH_backends.json``.
"""

from __future__ import annotations

import time

import pytest

from repro import AprioriMiner, FupOptions, RuleMaintainer, UpdateBatch, VerticalIndex
from repro.db.transaction_db import build_vertical_index
from repro.kernels import numpy_available
from repro.mining.backends import BACKEND_NAMES

from .conftest import build_workload, print_report, timing_asserts_enabled, update_bench_artifact

#: Batches in the session (the acceptance bar is a >=8-batch session).
BATCHES = 10
#: Oldest transactions deleted per batch (the sliding-window deletions).
DELETE_PER_BATCH = 25
#: Required advantage of delta maintenance over rebuild-per-batch across the
#: session's batches.  Both strategies pay the same one-off index build at
#: t=0 (the initial mining run builds it either way), so that build cancels
#: and the comparison is k rebuilds vs k delta updates; the build time is
#: still recorded in the artifact for transparency.
MIN_DELTA_SPEEDUP = 5.0

MAINT_SUPPORT = 0.02
MAINT_CONFIDENCE = 0.5
SHARDS = 4


def _update_artifact(section: str, payload: dict) -> None:
    """Merge *payload* under *section* into the maintenance artifact."""
    update_bench_artifact("BENCH_maintenance.json", "maintenance_session", section, payload)


def _session_batches(increment, batches: int):
    """Split the increment into *batches* insert slices of equal size."""
    rows = increment.transactions()
    size = max(1, len(rows) // batches)
    return [
        rows[index * size : (index + 1) * size if index < batches - 1 else len(rows)]
        for index in range(batches)
    ]


@pytest.mark.benchmark(group="maintenance")
def test_index_delta_maintenance_vs_rebuild_per_batch(benchmark):
    """The Figure-2 claim applied to our own data structures.

    Only the index layer is timed: the evolving transaction list (shared by
    both paths — the surgery on it is identical either way) is advanced
    outside the timers, and each batch's index cost is *either* one
    from-scratch :func:`build_vertical_index` pass (rebuild-per-batch, the
    old invalidate-on-mutation behaviour) *or* one ``delete_tids`` compaction
    plus one ``extend`` OR-in (the delta path).  Deletions take the oldest
    transactions — the sliding-window shape of the streaming examples, and
    the shape for which mask compaction is a single shift; heavily scattered
    deletions are the hard case and are exercised for correctness (not speed)
    by the property suite.
    """
    workload = build_workload("T10.I4.D100.d10", seed=71)
    inserts = _session_batches(workload.increment, BATCHES)

    def run_one_session() -> dict:
        rows = list(workload.original.transactions())

        start = time.perf_counter()
        index = VerticalIndex.build(rows)  # the one-off build the delta path pays
        build_seconds = time.perf_counter() - start

        trajectory = []
        for batch_number, batch_rows in enumerate(inserts):
            deleted_tids = range(min(DELETE_PER_BATCH, len(rows)))
            rows = rows[len(deleted_tids) :] + list(batch_rows)

            start = time.perf_counter()
            rebuilt = build_vertical_index(rows)
            rebuild_seconds = time.perf_counter() - start

            start = time.perf_counter()
            index.delete_tids(deleted_tids)
            index.extend(batch_rows)
            delta_seconds = time.perf_counter() - start

            assert dict(index) == rebuilt, f"batch {batch_number}: delta index diverged"
            trajectory.append(
                {
                    "batch": batch_number,
                    "inserted": len(batch_rows),
                    "deleted": len(deleted_tids),
                    "database_size": len(rows),
                    "rebuild_s": round(rebuild_seconds, 6),
                    "delta_s": round(delta_seconds, 6),
                }
            )
        return {"build_seconds": build_seconds, "trajectory": trajectory}

    def run_session() -> dict:
        # Best of two sessions: the per-batch delta updates sit at the 0.1 ms
        # level where one scheduler hiccup can swing the ratio, and the whole
        # session costs milliseconds, so repeating it is cheap insurance.
        first, second = run_one_session(), run_one_session()
        first_total = sum(row["delta_s"] for row in first["trajectory"])
        second_total = sum(row["delta_s"] for row in second["trajectory"])
        return first if first_total <= second_total else second

    measured = benchmark.pedantic(run_session, rounds=1)
    trajectory = measured["trajectory"]
    rebuild_total = sum(row["rebuild_s"] for row in trajectory)
    delta_total = sum(row["delta_s"] for row in trajectory)
    delta_with_build = delta_total + measured["build_seconds"]
    speedup = rebuild_total / max(delta_total, 1e-9)

    _update_artifact(
        "index_maintenance",
        {
            "workload": workload.name,
            "transactions": len(workload.original),
            "batches": len(trajectory),
            "delete_per_batch": DELETE_PER_BATCH,
            "initial_build_s": round(measured["build_seconds"], 6),
            "rebuild_total_s": round(rebuild_total, 6),
            "delta_total_s": round(delta_total, 6),
            "delta_total_with_build_s": round(delta_with_build, 6),
            "speedup_delta_vs_rebuild": round(speedup, 3),
            "speedup_charging_delta_the_build": round(
                rebuild_total / max(delta_with_build, 1e-9), 3
            ),
            "trajectory": trajectory,
        },
    )

    print_report(
        f"index maintenance on {workload.name}: delta vs rebuild-per-batch "
        f"({len(trajectory)} batches, speedup {speedup:.1f}x)",
        trajectory,
    )

    assert len(trajectory) >= 8
    if timing_asserts_enabled():
        assert speedup >= MIN_DELTA_SPEEDUP, (
            f"delta-maintained index only {speedup:.2f}x faster than "
            f"rebuild-per-batch over the session (need {MIN_DELTA_SPEEDUP}x)"
        )


@pytest.mark.benchmark(group="maintenance")
def test_maintenance_session_across_backends(benchmark):
    """The same insert/delete session ends identically on every engine."""
    workload = build_workload("T10.I4.D100.d10", seed=72)
    inserts = _session_batches(workload.increment, BATCHES)

    def run_all() -> dict:
        timings: dict[str, dict[str, float]] = {}
        final_supports = {}
        for name in BACKEND_NAMES:
            maintainer = RuleMaintainer(
                MAINT_SUPPORT,
                MAINT_CONFIDENCE,
                fup_options=FupOptions(backend=name, shards=SHARDS),
            )
            start = time.perf_counter()
            maintainer.initialise(workload.original)
            initial_seconds = time.perf_counter() - start

            start = time.perf_counter()
            for index, batch_rows in enumerate(inserts):
                deletions = (
                    [list(t) for t in maintainer.database.transactions()[:DELETE_PER_BATCH]]
                    if index % 3 == 2  # every third batch also slides the window
                    else []
                )
                maintainer.apply(
                    UpdateBatch.from_iterables(
                        insertions=batch_rows,
                        deletions=deletions,
                        label=f"batch-{index}",
                    )
                )
            session_seconds = time.perf_counter() - start
            timings[name] = {
                "initialise_s": round(initial_seconds, 6),
                "session_s": round(session_seconds, 6),
            }
            final_supports[name] = maintainer.result.lattice.supports()
            final_database = maintainer.database
        return {
            "timings": timings,
            "supports": final_supports,
            "final_database": final_database,
        }

    measured = benchmark.pedantic(run_all, rounds=1)
    supports = measured["supports"]
    reference = supports[BACKEND_NAMES[0]]
    for name in BACKEND_NAMES[1:]:
        assert supports[name] == reference, f"{name} ended the session differently"
    remined = AprioriMiner(MAINT_SUPPORT).mine(measured["final_database"])
    assert reference == remined.lattice.supports()

    _update_artifact(
        "session_backends",
        {
            "workload": workload.name,
            "batches": len(inserts),
            "min_support": MAINT_SUPPORT,
            "seconds": measured["timings"],
        },
    )
    print_report(
        f"maintenance session across backends on {workload.name} ({len(inserts)} batches)",
        [
            {"backend": name, **measured["timings"][name]}
            for name in BACKEND_NAMES
        ],
    )


@pytest.mark.benchmark(group="maintenance")
def test_maintenance_session_across_kernels(benchmark):
    """The same insert/delete session on the vertical engine, per kernel.

    The kernel seam sits *below* the counting backend, so this is the
    maintenance-layer mirror of the counting race in ``test_kernels.py``:
    the full FUP/FUP2 session (journaled inserts plus sliding-window
    deletions) must end bit-identically whichever bitmap kernel the vertical
    engine counts with, and the per-kernel wall time lands in the artifact.
    Absolute session time is dominated by FUP bookkeeping rather than the
    counting core, so no speedup floor is asserted here — the ≥10× claim
    lives with the isolated counting race.
    """
    workload = build_workload("T10.I4.D100.d10", seed=72)
    inserts = _session_batches(workload.increment, BATCHES)
    kernels = ["bigint"] + (["numpy"] if numpy_available() else [])

    def run_all() -> dict:
        timings: dict[str, dict[str, float]] = {}
        final_supports = {}
        for kernel in kernels:
            maintainer = RuleMaintainer(
                MAINT_SUPPORT,
                MAINT_CONFIDENCE,
                fup_options=FupOptions(backend="vertical", kernel=kernel),
            )
            start = time.perf_counter()
            maintainer.initialise(workload.original)
            initial_seconds = time.perf_counter() - start

            start = time.perf_counter()
            for index, batch_rows in enumerate(inserts):
                deletions = (
                    [list(t) for t in maintainer.database.transactions()[:DELETE_PER_BATCH]]
                    if index % 3 == 2
                    else []
                )
                maintainer.apply(
                    UpdateBatch.from_iterables(
                        insertions=batch_rows,
                        deletions=deletions,
                        label=f"batch-{index}",
                    )
                )
            session_seconds = time.perf_counter() - start
            timings[kernel] = {
                "initialise_s": round(initial_seconds, 6),
                "session_s": round(session_seconds, 6),
            }
            final_supports[kernel] = maintainer.result.lattice.supports()
        return {"timings": timings, "supports": final_supports}

    measured = benchmark.pedantic(run_all, rounds=1)
    supports = measured["supports"]
    for kernel in kernels[1:]:
        assert supports[kernel] == supports["bigint"], (
            f"{kernel} kernel ended the maintenance session differently"
        )

    timings = measured["timings"]
    payload: dict[str, object] = {
        "workload": workload.name,
        "batches": len(inserts),
        "min_support": MAINT_SUPPORT,
        "numpy_available": numpy_available(),
        "seconds": timings,
    }
    if "numpy" in timings:
        payload["speedup_numpy_vs_bigint"] = round(
            timings["bigint"]["session_s"] / max(timings["numpy"]["session_s"], 1e-9), 3
        )
    _update_artifact("session_kernels", payload)
    print_report(
        f"maintenance session across kernels on {workload.name} ({len(inserts)} batches)",
        [{"kernel": kernel, **timings[kernel]} for kernel in kernels],
    )

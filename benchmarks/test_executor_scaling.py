"""Thread vs process executor on the partitioned counting engine.

The partitioned engine's docstring promised for three PRs that the thread
path was "an executor swap away from real parallelism"; this benchmark holds
the swap to that promise.  Both executors race the same ≥4-shard
candidate-counting workload — the C_2 pool of the Figure-2 database, the
counting-dominated phase every algorithm's runtime funnels through — with
the same horizontal inner engine, so the only variable is who runs the
shards: GIL-bound threads or dedicated worker processes.

Methodology: one warm-up pass per engine is excluded from the timing.  For
processes that pass spawns the worker lanes and ships each shard across the
boundary once (the per-worker fingerprint cache keeps it there); steady
state — every later level of a mining run, every batch of a maintenance
session — is what the measurement is about.  Merging is order-deterministic,
and both executors' counts are asserted identical before any timing is
trusted.

The ≥2× speed-up assertion activates only where it is physically possible:
at the default benchmark scale or above AND with at least 4 usable CPU
cores (a single-core container cannot parallelise anything — the committed
baseline records the core count next to the numbers for exactly that
reason).

When ``REPRO_BENCH_ARTIFACT`` is set the measurements land in
``BENCH_executors.json`` (value ``1``: the repo root; any other value: that
directory, canonical file name), which CI uploads next to the other
baselines.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.mining.backends import PartitionedBackend, make_backend
from repro.mining.candidates import apriori_gen
from repro.mining.result import required_support_count

from .conftest import BENCH_SCALE, print_report, timing_asserts_enabled

#: Support level of the counting race (the Figure-2 C_2 pool).
COUNT_SUPPORT = 0.01
#: Shard count — the acceptance bar is a >=4-shard workload.
SHARDS = 4
#: Required steady-state advantage of processes over threads, where possible.
MIN_PROCESS_SPEEDUP = 2.0
#: Cores needed before the assertion is physically meaningful.
MIN_CPUS_FOR_ASSERT = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _artifact_path() -> Path | None:
    """Where ``BENCH_executors.json`` lands, or None to skip writing it."""
    value = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not value:
        return None
    if value == "1":
        return Path(__file__).resolve().parents[1] / "BENCH_executors.json"
    path = Path(value)
    if path.name != "BENCH_executors.json":
        return path.with_name("BENCH_executors.json")
    return path


def _level2_candidates(database) -> list[tuple[int, ...]]:
    threshold = required_support_count(COUNT_SUPPORT, len(database))
    level_one = {
        (item,) for item, count in database.item_counts().items() if count >= threshold
    }
    return sorted(apriori_gen(level_one))


def _best_of(repeats: int, run) -> float:
    """Best-of-N wall time (minimum filters scheduler noise; long runs once)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
        if best > 1.0:
            break
    return best


@pytest.mark.benchmark(group="executors")
def test_process_pool_beats_threads_on_counting(benchmark, figure2_workload):
    """Race serial / threads / processes on the C_2 counting phase."""
    database = figure2_workload.original
    candidates = _level2_candidates(database)
    assert candidates, "the workload must produce a non-trivial C_2 pool"

    serial = make_backend("horizontal")
    threaded = PartitionedBackend(shards=SHARDS, executor="threads")
    processes = PartitionedBackend(shards=SHARDS, executor="processes")

    def run_comparison() -> dict[str, float]:
        reference = serial.count_candidates(database, candidates)
        # Warm-up: spawns the process lanes and ships each shard once; the
        # threads warm-up primes the database's cached partition views so
        # both executors count identical pre-split shards.
        assert threaded.count_candidates(database, candidates) == reference
        assert processes.count_candidates(database, candidates) == reference
        return {
            "serial": _best_of(3, lambda: serial.count_candidates(database, candidates)),
            "threads": _best_of(3, lambda: threaded.count_candidates(database, candidates)),
            "processes": _best_of(
                3, lambda: processes.count_candidates(database, candidates)
            ),
        }

    try:
        counting = benchmark.pedantic(run_comparison, rounds=1)
    finally:
        processes.close()

    cpus = _usable_cpus()
    speedup_vs_threads = counting["threads"] / max(counting["processes"], 1e-9)
    speedup_vs_serial = counting["serial"] / max(counting["processes"], 1e-9)

    artifact = _artifact_path()
    if artifact is not None:
        payload = {
            "benchmark": "executor_scaling",
            "workload": figure2_workload.name,
            "scale": BENCH_SCALE,
            "transactions": len(database),
            "min_support": COUNT_SUPPORT,
            "candidates_level2": len(candidates),
            "shards": SHARDS,
            "cpus": cpus,
            "counting_seconds": {
                name: round(value, 6) for name, value in counting.items()
            },
            "process_speedup_vs_threads": round(speedup_vs_threads, 3),
            "process_speedup_vs_serial": round(speedup_vs_serial, 3),
            "assertion_active": bool(
                timing_asserts_enabled() and cpus >= MIN_CPUS_FOR_ASSERT
            ),
        }
        artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="ascii")

    print_report(
        f"partitioned executors on {figure2_workload.name} "
        f"(|C2| = {len(candidates)}, D = {len(database)}, "
        f"shards = {SHARDS}, cpus = {cpus})",
        [
            {"executor": name, "count_C2_s": round(counting[name], 5)}
            for name in ("serial", "threads", "processes")
        ],
    )

    if timing_asserts_enabled() and cpus >= MIN_CPUS_FOR_ASSERT:
        assert speedup_vs_threads >= MIN_PROCESS_SPEEDUP, (
            f"process executor only {speedup_vs_threads:.2f}x faster than threads "
            f"on {SHARDS} shards with {cpus} cores (need {MIN_PROCESS_SPEEDUP}x)"
        )


@pytest.mark.benchmark(group="executors")
def test_shard_shipping_is_amortised(benchmark, figure2_workload):
    """Steady-state process counting must not re-pay the shard transfer.

    The first pass ships every shard to its worker; later passes send only
    fingerprints and candidates.  If steady state were re-shipping shards,
    its per-pass time would approach the cold pass — so the benchmark pins
    warm passes to a fraction of the cold one (loose bound: the cold pass
    also pays lane spawn, which is the point — that cost must not recur).
    """
    database = figure2_workload.original
    candidates = _level2_candidates(database)[: max(1, len(database) // 2)]

    processes = PartitionedBackend(shards=SHARDS, executor="processes")
    try:
        start = time.perf_counter()
        first = processes.count_candidates(database, candidates)
        cold_seconds = time.perf_counter() - start

        benchmark.pedantic(
            lambda: processes.count_candidates(database, candidates), rounds=1
        )
        warm_seconds = _best_of(3, lambda: processes.count_candidates(database, candidates))

        assert processes.count_candidates(database, candidates) == first
    finally:
        processes.close()

    print_report(
        f"shard-shipping amortisation on {figure2_workload.name}",
        [
            {
                "pass": "cold (spawn + ship shards)",
                "seconds": round(cold_seconds, 5),
            },
            {"pass": "warm (fingerprints only)", "seconds": round(warm_seconds, 5)},
        ],
    )
    if timing_asserts_enabled():
        assert warm_seconds <= cold_seconds * 1.5, (
            f"warm pass ({warm_seconds:.4f}s) did not stay near or below the cold "
            f"pass ({cold_seconds:.4f}s): shard shipping is not being amortised"
        )

"""E10 — Maintenance throughput of the high-level API (our addition).

The paper's motivation is a database that "allows frequent or occasional
updates".  This benchmark drives the :class:`~repro.core.maintenance.RuleMaintainer`
through a stream of daily insert batches (plus one deletion batch exercising
the FUP2 path) and reports the per-batch maintenance cost, comparing the total
against re-mining from scratch after every batch — the strategy a user without
an incremental algorithm would be forced into.
"""

from __future__ import annotations

import time

import pytest

from repro import AprioriMiner, RuleMaintainer

from .conftest import build_workload, print_report

MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.5
BATCHES = 5


@pytest.mark.benchmark(group="maintenance")
def test_maintenance_stream_vs_remine_every_batch(benchmark):
    """Apply a stream of update batches and compare with re-mining each time."""
    workload = build_workload("T10.I4.D100.d10", seed=33)
    original = workload.original
    increment = workload.increment
    batch_size = max(1, len(increment) // BATCHES)

    def run_stream():
        maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
        maintainer.initialise(original)
        per_batch = []
        for index in range(BATCHES):
            start = index * batch_size
            stop = start + batch_size if index < BATCHES - 1 else len(increment)
            rows = [list(t) for t in increment.transactions()[start:stop]]
            began = time.perf_counter()
            report = maintainer.add_transactions(rows, label=f"batch-{index}")
            per_batch.append((report, time.perf_counter() - began))
        return maintainer, per_batch

    maintainer, per_batch = benchmark.pedantic(run_stream, rounds=1, iterations=1)

    # Reference: the final state must equal a from-scratch mine of everything.
    final = AprioriMiner(MIN_SUPPORT).mine(original.concatenate(increment))
    assert maintainer.result.lattice.supports() == final.lattice.supports()

    # Cost of the naive strategy: re-mine the growing database after each batch.
    naive_seconds = 0.0
    grown = original.copy()
    for index in range(BATCHES):
        start = index * batch_size
        stop = start + batch_size if index < BATCHES - 1 else len(increment)
        grown.extend(increment.transactions()[start:stop])
        began = time.perf_counter()
        AprioriMiner(MIN_SUPPORT).mine(grown)
        naive_seconds += time.perf_counter() - began

    incremental_seconds = sum(seconds for _, seconds in per_batch)
    rows = [
        {
            "batch": report.batch_label,
            "algorithm": report.algorithm,
            "seconds": seconds,
            "itemsets_added": len(report.itemsets_added),
            "itemsets_removed": len(report.itemsets_removed),
            "rules_added": len(report.rules_added),
            "rules_removed": len(report.rules_removed),
        }
        for report, seconds in per_batch
    ]
    rows.append(
        {
            "batch": "TOTAL (incremental)",
            "algorithm": "fup",
            "seconds": incremental_seconds,
            "itemsets_added": "",
            "itemsets_removed": "",
            "rules_added": "",
            "rules_removed": "",
        }
    )
    rows.append(
        {
            "batch": "TOTAL (re-mine each batch)",
            "algorithm": "apriori",
            "seconds": naive_seconds,
            "itemsets_added": "",
            "itemsets_removed": "",
            "rules_added": "",
            "rules_removed": "",
        }
    )
    print_report("Maintenance throughput - incremental vs re-mine-per-batch", rows)

    # Maintaining incrementally must be cheaper than re-mining per batch.
    assert incremental_seconds < naive_seconds

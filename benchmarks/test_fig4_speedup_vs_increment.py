"""E4 — Figure 4: speed-up ratio versus increment size.

The paper fixes the original database (T10.I4.D100) and grows the increment
from 15K up to 350K transactions (i.e. up to 3.5x the original database),
plotting the DHP/FUP time ratio.  The ratio decays as the increment grows but
FUP keeps a gain (> 1) even when the increment is several times the original
database; the curve only levels off around 3.5x.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import compare_update_strategies

from .conftest import BENCH_SCALE, build_workload, print_report

#: Increment sizes of Figure 4 as a fraction of the (100K-transaction)
#: original database: 15K, 25K, 75K, 125K, 175K, 250K, 350K.
INCREMENT_FRACTIONS = [0.15, 0.25, 0.75, 1.25, 1.75, 2.5, 3.5]
MIN_SUPPORT = 0.02


@pytest.mark.benchmark(group="figure4")
def test_figure4_speedup_vs_increment_size(benchmark, initial_results_cache):
    """Reproduce the Figure 4 series: DHP/FUP ratio as the increment grows."""
    base = build_workload("T10.I4.D100.d1")
    original = base.original
    database_size = len(original)
    # One long generation supplies every increment prefix, so larger
    # increments extend smaller ones (the paper regenerates per size; sharing
    # the stream keeps the comparison smooth at bench scale).
    largest = build_workload(
        f"T10.I4.D100.d{int(100 * max(INCREMENT_FRACTIONS))}", seed=4
    )
    increment_pool = largest.increment

    def run_series():
        results = []
        initial = initial_results_cache(original, MIN_SUPPORT)
        for fraction in INCREMENT_FRACTIONS:
            increment = increment_pool.slice(0, int(round(fraction * database_size)))
            comparison = compare_update_strategies(
                original,
                increment,
                MIN_SUPPORT,
                workload=f"{base.name}+{fraction:g}x",
                initial=initial,
            )
            results.append((fraction, comparison))
        return results

    results = benchmark.pedantic(run_series, rounds=1, iterations=1)

    rows = []
    for fraction, comparison in results:
        assert comparison.consistent()
        rows.append(
            {
                "increment/DB": fraction,
                "increment_size": int(round(fraction * database_size)),
                "fup_seconds": comparison.fup.elapsed_seconds,
                "dhp_seconds": comparison.dhp.elapsed_seconds,
                "dhp/fup": comparison.against_dhp.speedup,
            }
        )
    print_report(
        f"Figure 4 - DHP/FUP speed-up vs increment size (DB = {database_size} transactions, "
        f"scale {BENCH_SCALE:g})",
        rows,
    )

    # Shape checks: the gain is largest for the small increments and the small
    # increments keep FUP clearly ahead of re-running DHP.
    small_increment_speedups = [comparison.against_dhp.speedup for _, comparison in results[:2]]
    large_increment_speedups = [comparison.against_dhp.speedup for _, comparison in results[-2:]]
    assert max(small_increment_speedups) > 1.0
    assert max(small_increment_speedups) >= max(large_increment_speedups) * 0.8

"""E7 — Section 4.6: performance in a scaled-up database.

The paper's last experiment runs T10.I4.D1000.d10 — one million transactions —
and observes that the DHP/FUP ratio *grows* with the database size (3x to 16x
at the larger scale versus 2-6x at the 100K scale): the bigger the original
database, the more FUP saves by not re-scanning it per level.

At bench scale we compare the ratio on a database ten times larger than the
Figure-2 database, keeping the same relative increment (1%).
"""

from __future__ import annotations

import pytest

from repro.harness.runner import compare_update_strategies

from .conftest import build_workload, print_report

MIN_SUPPORT = 0.02


@pytest.mark.benchmark(group="section4.6")
def test_section46_scaled_up_database(benchmark, initial_results_cache):
    """Compare the FUP advantage on the base workload and a 10x larger one."""
    small = build_workload("T10.I4.D100.d1")
    large = build_workload("T10.I4.D1000.d10", scale=None, seed=None)

    def run_pair():
        results = []
        for workload in (small, large):
            initial = initial_results_cache(workload.original, MIN_SUPPORT)
            results.append(
                compare_update_strategies(
                    workload.original,
                    workload.increment,
                    MIN_SUPPORT,
                    workload=workload.name,
                    initial=initial,
                )
            )
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = []
    for comparison in results:
        assert comparison.consistent()
        rows.append(
            {
                "workload": comparison.workload,
                "DB_size": comparison.initial.database_size,
                "fup_seconds": comparison.fup.elapsed_seconds,
                "dhp_seconds": comparison.dhp.elapsed_seconds,
                "dhp/fup": comparison.against_dhp.speedup,
                "apriori/fup": comparison.against_apriori.speedup,
            }
        )
    print_report("Section 4.6 - FUP advantage as the database scales up", rows)

    small_ratio = results[0].against_dhp.speedup
    large_ratio = results[1].against_dhp.speedup
    # Shape checks: FUP wins at both scales, and the advantage does not shrink
    # when the database grows (the paper observes it growing).
    assert small_ratio > 1.0
    assert large_ratio > 1.0
    assert large_ratio >= small_ratio * 0.8

"""E6 — Section 4.5: the overhead of maintaining instead of mining once.

The paper defines the overhead of FUP as

    [ t(mine DB) + t(FUP update) ] − t(mine DB ∪ db)

expressed as a fraction of ``t(mine DB ∪ db)`` — i.e. how much extra work the
"mine early, then maintain" path costs compared with waiting and mining the
final database once.  It reports an overhead of roughly 10-15% for increments
much smaller than the database, dropping to about 5% once the increment is
larger than the original database.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import measure_fup_overhead

from .conftest import build_workload, print_report, timing_asserts_enabled

#: Increment sizes (relative to the database) probed for the overhead curve.
INCREMENT_FRACTIONS = [0.05, 0.25, 1.0, 2.0]
MIN_SUPPORT = 0.02


@pytest.mark.benchmark(group="section4.5")
def test_section45_overhead_of_fup(benchmark):
    """Reproduce the Section 4.5 overhead measurements."""
    base = build_workload("T10.I4.D100.d1")
    original = base.original
    database_size = len(original)
    pool = build_workload("T10.I4.D100.d200", seed=21).increment

    def run_series():
        records = []
        for fraction in INCREMENT_FRACTIONS:
            increment = pool.slice(0, max(1, int(round(fraction * database_size))))
            records.append(
                (
                    fraction,
                    measure_fup_overhead(
                        original,
                        increment,
                        MIN_SUPPORT,
                        workload=f"{base.name}+{fraction:g}x",
                    ),
                )
            )
        return records

    records = benchmark.pedantic(run_series, rounds=1, iterations=1)

    rows = []
    for fraction, record in records:
        rows.append(
            {
                "increment/DB": fraction,
                "mine_DB_s": record.mine_original_seconds,
                "fup_update_s": record.fup_update_seconds,
                "mine_updated_s": record.mine_updated_seconds,
                "overhead": f"{record.overhead_fraction:.1%}",
            }
        )
    print_report("Section 4.5 - overhead of the maintain-then-update path", rows)

    # Shape checks.  The paper's band for small increments is 10-15%; we check
    # that the small-increment overhead stays modest and that no point blows
    # past a generous envelope.  The paper's *decreasing* trend for very large
    # increments does not fully reproduce at bench scale (see EXPERIMENTS.md):
    # in pure Python the per-level scans of a multi-thousand-transaction
    # increment grow FUP's own cost faster than re-mining grows, so the trend
    # is only asserted loosely here and the measured curve is recorded instead.
    fractions = {fraction: record.overhead_fraction for fraction, record in records}
    if timing_asserts_enabled():
        assert fractions[INCREMENT_FRACTIONS[0]] < 0.25
        assert all(value < 0.6 for value in fractions.values())

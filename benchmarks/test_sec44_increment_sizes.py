"""E5 — Section 4.4: performance of FUP with moderately large increments.

The paper generates T10.I4.D100.dm with increments of 1K, 5K and 10K
transactions and runs the update at several supports; the speed-up over DHP
decreases as the increment grows (for example from 5.8 to 3.7 at a 2%
support), but stays above 1 throughout.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import compare_update_strategies

from .conftest import build_workload, print_report, timing_asserts_enabled

#: Increment sizes of Section 4.4 relative to the 100K-transaction database.
INCREMENT_FRACTIONS = [0.01, 0.05, 0.10]
SUPPORTS = [0.04, 0.02]

#: FUP runs faster than this are dominated by constant overheads and timer
#: noise (at the smallest increment × highest support the update finishes in
#: single-digit milliseconds), so their speed-up *ratios* scatter by tens of
#: percent run to run; the shape assertion skips rows this fast.
MIN_MEANINGFUL_FUP_SECONDS = 0.02


@pytest.mark.benchmark(group="section4.4")
def test_section44_speedup_decreases_with_increment_size(benchmark, initial_results_cache):
    """Reproduce the Section 4.4 sweep over increment sizes and supports."""
    base = build_workload("T10.I4.D100.d1")
    original = base.original
    database_size = len(original)
    pool = build_workload("T10.I4.D100.d10", seed=11).increment

    def run_grid():
        grid = []
        for min_support in SUPPORTS:
            initial = initial_results_cache(original, min_support)
            for fraction in INCREMENT_FRACTIONS:
                increment = pool.slice(0, max(1, int(round(fraction * database_size))))
                comparison = compare_update_strategies(
                    original,
                    increment,
                    min_support,
                    workload=f"{base.name}+{fraction:g}x",
                    initial=initial,
                )
                grid.append((min_support, fraction, comparison))
        return grid

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for min_support, fraction, comparison in grid:
        assert comparison.consistent()
        rows.append(
            {
                "min_support": f"{min_support:.2%}",
                "increment/DB": fraction,
                "increment_size": int(round(fraction * database_size)),
                "dhp/fup": comparison.against_dhp.speedup,
                "apriori/fup": comparison.against_apriori.speedup,
            }
        )
    print_report("Section 4.4 - speed-up vs moderate increment sizes", rows)

    # Shape check: at each support, the smallest increment enjoys a speed-up at
    # least as large as (or close to) the largest increment's.  Rows whose FUP
    # leg finishes too fast to time reliably are excluded from the shape
    # comparison — their ratios are clock noise, not the paper's trend.
    for min_support in SUPPORTS:
        speedups = [
            comparison.against_dhp.speedup
            for support, _, comparison in grid
            if support == min_support
            and comparison.fup.elapsed_seconds >= MIN_MEANINGFUL_FUP_SECONDS
        ]
        if timing_asserts_enabled() and len(speedups) >= 2:
            assert speedups[0] >= speedups[-1] * 0.8
        all_speedups = [
            comparison.against_dhp.speedup
            for support, _, comparison in grid
            if support == min_support
        ]
        assert max(all_speedups) > 1.0

"""Serving-layer query throughput: inverted-index basket matching vs linear scan.

The serving subsystem answers "which rules apply to this basket?" on every
request, so that lookup is the hot path of the read side.  A
:class:`~repro.serve.snapshot.RuleSnapshot` accelerates it with an inverted
antecedent-item index (each rule posted under its *rarest* antecedent item;
only the basket's posting lists are candidate-checked); this benchmark races
that path against the scan-every-rule baseline on the Figure-2 workload —
the baskets are the workload's own transactions, so the query mix has the
paper's item distribution.

Both modes are run through
:func:`~repro.harness.runner.measure_query_throughput`, which also returns
the total number of rules matched — asserted identical across modes, so the
speedup is measured on provably equal work.

A second test measures end-to-end publication cost (maintainer state →
published snapshot, the price a writer pays per batch to refresh readers).

When ``REPRO_BENCH_ARTIFACT`` is set the measurements land in
``BENCH_serving.json`` (repo root, or the directory the variable names) so
CI uploads them next to the other baselines.
"""

from __future__ import annotations

import time

import pytest

from repro import AprioriMiner, MiningOptions, RuleSnapshot, RuleStore, generate_rules
from repro.harness.runner import measure_query_throughput

from .conftest import (
    build_workload,
    print_report,
    timing_asserts_enabled,
    update_serving_artifact,
)

#: Support/confidence for the served rule set.  The lowest Figure-2 support
#: level gives the richest rule set — the regime where serving performance
#: matters at all.
SERVE_SUPPORT = 0.0075
SERVE_CONFIDENCE = 0.3
#: Baskets per measured pass (the workload's own transactions) and passes.
BASKETS = 200
REPEAT = 3
#: Required advantage of the indexed basket query over the linear rule scan.
MIN_INDEX_SPEEDUP = 1.25


@pytest.fixture(scope="module")
def served_state():
    """The Figure-2 workload mined into a snapshot plus its query baskets."""
    workload = build_workload("T10.I4.D100.d1")
    updated = workload.original.concatenate(workload.increment)
    # Setup is not what is measured: the vertical engine just gets us to the
    # serving state quickly.
    result = AprioriMiner(
        SERVE_SUPPORT, options=MiningOptions(backend="vertical")
    ).mine(updated)
    rules = generate_rules(result.lattice, SERVE_CONFIDENCE)
    snapshot = RuleSnapshot(
        version=0,
        rules=rules,
        lattice=result.lattice,
        min_support=SERVE_SUPPORT,
        min_confidence=SERVE_CONFIDENCE,
    )
    baskets = [set(row) for row in updated.transactions()[:BASKETS]]
    return {
        "workload": workload.name,
        "snapshot": snapshot,
        "baskets": baskets,
        "lattice": result.lattice,
    }


@pytest.mark.benchmark(group="serving")
def test_indexed_basket_query_beats_linear_scan(benchmark, served_state):
    snapshot = served_state["snapshot"]
    baskets = served_state["baskets"]
    assert snapshot.rule_count >= 50, (
        f"only {snapshot.rule_count} rules at support {SERVE_SUPPORT}; "
        f"the throughput comparison needs a real rule set"
    )

    def race() -> dict:
        # Best of two passes per mode, interleaved, so one scheduler hiccup
        # cannot decide the ratio.
        records = {"indexed": [], "linear": []}
        for _ in range(2):
            for mode in ("indexed", "linear"):
                records[mode].append(
                    measure_query_throughput(
                        snapshot,
                        baskets,
                        mode=mode,
                        repeat=REPEAT,
                        workload=served_state["workload"],
                    )
                )
        return {
            mode: min(results, key=lambda record: record.seconds)
            for mode, results in records.items()
        }

    measured = benchmark.pedantic(race, rounds=1)
    indexed, linear = measured["indexed"], measured["linear"]

    # Identical work: every query returned the same rules in both modes.
    assert indexed.queries == linear.queries
    assert indexed.matches == linear.matches
    speedup = indexed.queries_per_second / max(linear.queries_per_second, 1e-9)

    update_serving_artifact(
        "basket_queries",
        {
            "workload": served_state["workload"],
            "rules": snapshot.rule_count,
            "itemsets": snapshot.itemset_count,
            "database_size": snapshot.database_size,
            "baskets": len(baskets),
            "indexed": indexed.as_dict(),
            "linear": linear.as_dict(),
            "speedup_indexed_vs_linear": round(speedup, 3),
        },
    )
    print_report(
        f"basket queries on {served_state['workload']} "
        f"({snapshot.rule_count} rules, speedup {speedup:.2f}x)",
        [indexed.as_dict(), linear.as_dict()],
    )

    if timing_asserts_enabled():
        assert speedup >= MIN_INDEX_SPEEDUP, (
            f"indexed basket matching only {speedup:.2f}x over the linear scan "
            f"(required {MIN_INDEX_SPEEDUP}x) at {snapshot.rule_count} rules"
        )


@pytest.mark.benchmark(group="serving")
def test_snapshot_publication_cost(benchmark, served_state):
    """What a writer pays per batch to refresh readers: build + publish.

    Publication happens once per maintenance batch while queries happen per
    request, so this only needs to be cheap relative to the batch's mining
    work — the measurement is recorded for trajectory, not gated.
    """
    lattice = served_state["lattice"]
    rules = list(served_state["snapshot"].rules)
    store = RuleStore()

    def publish_once() -> float:
        start = time.perf_counter()
        store.publish(
            RuleSnapshot(
                version=store.publications,
                rules=rules,
                lattice=lattice,
                min_support=SERVE_SUPPORT,
                min_confidence=SERVE_CONFIDENCE,
            )
        )
        return time.perf_counter() - start

    seconds = benchmark.pedantic(publish_once, rounds=1)
    update_serving_artifact(
        "publication",
        {
            "workload": served_state["workload"],
            "rules": len(rules),
            "itemsets": served_state["snapshot"].itemset_count,
            "publish_seconds": round(seconds, 6),
        },
    )
    assert store.snapshot().rule_count == len(rules)

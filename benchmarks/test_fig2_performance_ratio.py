"""E2 — Figure 2: execution-time ratio of DHP/FUP and Apriori/FUP.

The paper runs the T10.I4.D100.d1 workload at minimum supports of 6%, 4%, 2%,
1% and 0.75% and plots how many times slower re-running DHP (and Apriori) on
the updated database is than running FUP with the saved mining state.  The
paper reports FUP being 2-7x faster on this workload, with the gap widening
as the support decreases.

Figures 2 and 3 are two views of the same sweep, so the underlying runs are
computed once by the session-scoped ``figure2_sweep`` fixture; this benchmark
times re-running the FUP leg of the sweep and prints / checks the time ratios.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_fup_update

from .conftest import nontrivial, print_report


@pytest.mark.benchmark(group="figure2")
def test_figure2_performance_ratio(
    benchmark, figure2_workload, figure2_sweep, initial_results_cache
):
    """Reproduce the Figure 2 ratio series (one point per support level)."""
    workload = figure2_workload
    comparisons = figure2_sweep

    def rerun_fup_sweep():
        return [
            run_fup_update(
                workload.original,
                initial_results_cache(workload.original, comparison.min_support),
                workload.increment,
                comparison.min_support,
            )
            for comparison in comparisons
        ]

    benchmark.pedantic(rerun_fup_sweep, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        assert comparison.consistent(), "all strategies must find the same itemsets"
        rows.append(
            {
                "min_support": f"{comparison.min_support:.2%}",
                "large_itemsets": len(comparison.apriori.lattice),
                "fup_seconds": comparison.fup.elapsed_seconds,
                "dhp_seconds": comparison.dhp.elapsed_seconds,
                "apriori_seconds": comparison.apriori.elapsed_seconds,
                "dhp/fup": comparison.against_dhp.speedup,
                "apriori/fup": comparison.against_apriori.speedup,
            }
        )
    print_report(f"Figure 2 - performance ratio on {workload.name}", rows)

    # Shape checks (the paper's qualitative claims, not its absolute numbers):
    # wherever the mining problem is non-trivial, FUP beats re-running both
    # baselines, and the advantage at the smallest support is at least as
    # large as at the largest non-trivial support.
    meaningful = [comparison for comparison in comparisons if nontrivial(comparison)]
    assert meaningful, "the sweep must contain non-trivial support levels"
    for comparison in meaningful:
        assert comparison.against_dhp.speedup > 1.0
        assert comparison.against_apriori.speedup > 1.0
    assert (
        meaningful[-1].against_apriori.speedup >= meaningful[0].against_apriori.speedup * 0.8
    )

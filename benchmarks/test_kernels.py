"""Kernel counting race + snapshot-open latency (ROADMAP open item 3).

The vertical engine's hot loop is the support count of a candidate pool over
lane-packed bitmaps, and PR 7 makes the bitmap representation pluggable: the
pure-Python big-int kernel (the zero-regression default) versus the numpy
``uint64``-lane kernel (vectorised AND + popcount, one call per candidate
level).  This module races exactly that seam on the Figure-2 counting phase,
at **10× the default benchmark scale** (``REPRO_BENCH_KERNEL_FACTOR``, so the
default 0.01 suite scale measures D = 10 000 transactions; the paper's full
D = 100 000 is factor 100) — large enough that the per-word vector throughput
dominates the per-call constants being amortised.

The companion benchmark times the snapshot formats the kernels feed from:
opening a v1 record-stream snapshot costs a full O(D) parse, while the v2
memory-mapped format opens in O(1) — a header read plus an ``mmap`` — and
defers the transaction text entirely (the numpy kernel additionally
reconstructs its lanes zero-copy from the mapping).

Honest-measurement discipline: every artifact row stamps ``cpus``,
``numpy_available`` and ``assertion_active``.  The ≥10× kernel target is
asserted only when numpy is installed, timing asserts are enabled (real
scale) and the machine has ≥2 usable cores — a 1-core container measures
scheduler contention, not vector throughput; such runs still record their
numbers (with ``assertion_active: false``) and assert a conservative
sanity floor instead, so a numpy kernel that *lost* to big ints would fail
anywhere.
"""

from __future__ import annotations

import os

import pytest

from repro import VerticalIndex
from repro.db.store import load_database, open_snapshot, save_database, write_snapshot
from repro.kernels import numpy_available

from .check_regression import usable_cpus
from .conftest import build_workload, print_report, timing_asserts_enabled, update_bench_artifact
from .test_backends_comparison import COUNT_SUPPORT, _best_of, _level2_candidates

#: The kernel race runs this many times the suite's base scale (default
#: suite scale 0.01 → D = 10 000; the paper's D100 workload is factor 100).
KERNEL_FACTOR = float(os.environ.get("REPRO_BENCH_KERNEL_FACTOR", "10"))
#: The ROADMAP item-3 target for the numpy kernel over the big-int kernel on
#: the counting phase, asserted when ``assertion_active`` is true.
TARGET_NUMPY_SPEEDUP = 10.0
#: Sanity floor asserted whenever numpy is present at timing-assert scale,
#: even on 1-core machines: the vector kernel must never *lose* the race.
#: Kept deliberately close to parity — at this scale the lane matrix is
#: cache-resident and CPython's big-int AND/popcount runs at memcpy speed,
#: so a 1-core box measures ~1.3x, not the bandwidth-bound vector win.
SAFE_NUMPY_SPEEDUP = 1.05
#: Floor for the v2 mmap open vs the v1 full parse — the gap is architectural
#: (O(1) vs O(D)), so even a noisy machine clears this by a wide margin.
MIN_SNAPSHOT_OPEN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def kernel_workload():
    """The Figure-2 workload at kernel-race scale (built once per module)."""
    from .conftest import BENCH_SCALE

    return build_workload("T10.I4.D100.d1", scale=BENCH_SCALE * KERNEL_FACTOR, seed=96)


def _assertion_active() -> bool:
    """True when the ≥10× target is a promise rather than a trajectory."""
    return numpy_available() and timing_asserts_enabled() and usable_cpus() >= 2


@pytest.mark.benchmark(group="kernels")
def test_kernel_counting_race(benchmark, kernel_workload):
    """Race the bitmap kernels on the C_2 counting phase of Figure 2."""
    database = kernel_workload.original
    transactions = database.transactions()
    candidates = _level2_candidates(database)
    assert candidates, "the workload must produce a non-trivial C_2 pool"
    kernels = ["bigint"] + (["numpy"] if numpy_available() else [])

    def run_race() -> dict:
        counting: dict[str, float] = {}
        reference = None
        for kernel in kernels:
            index = VerticalIndex.build(transactions, kernel=kernel)
            counts = index.count_candidates(candidates)
            if reference is None:
                reference = counts
            assert counts == reference, f"{kernel} kernel disagrees with the reference"
            counting[kernel] = _best_of(
                3, lambda index=index: index.count_candidates(candidates)
            )
        return counting

    counting = benchmark.pedantic(run_race, rounds=1)
    speedup = (
        counting["bigint"] / max(counting["numpy"], 1e-9)
        if "numpy" in counting
        else None
    )

    payload: dict[str, object] = {
        "workload": kernel_workload.name,
        "transactions": len(database),
        "min_support": COUNT_SUPPORT,
        "candidates_level2": len(candidates),
        "kernel_factor": KERNEL_FACTOR,
        "cpus": usable_cpus(),
        "numpy_available": numpy_available(),
        "target_speedup": TARGET_NUMPY_SPEEDUP,
        "assertion_active": _assertion_active(),
        "counting_seconds": {
            kernel: round(value, 6) for kernel, value in counting.items()
        },
    }
    if speedup is not None:
        payload["speedup_numpy_vs_bigint"] = round(speedup, 3)
    update_bench_artifact("BENCH_backends.json", "backends_comparison", "kernels", payload)

    print_report(
        f"bitmap kernels on {kernel_workload.name} "
        f"(|C2| = {len(candidates)}, D = {len(database)})",
        [
            {"kernel": kernel, "count_C2_s": round(counting[kernel], 5)}
            for kernel in kernels
        ],
    )

    if speedup is not None and timing_asserts_enabled():
        assert speedup >= SAFE_NUMPY_SPEEDUP, (
            f"numpy kernel only {speedup:.2f}x the big-int kernel on the "
            f"counting phase (sanity floor {SAFE_NUMPY_SPEEDUP}x)"
        )
        if _assertion_active():
            assert speedup >= TARGET_NUMPY_SPEEDUP, (
                f"numpy kernel only {speedup:.2f}x the big-int kernel on the "
                f"counting phase (ROADMAP target {TARGET_NUMPY_SPEEDUP}x)"
            )


@pytest.mark.benchmark(group="kernels")
def test_snapshot_open_latency(benchmark, kernel_workload, tmp_path):
    """v2 mmap open is O(1); v1 open pays the full record-stream parse."""
    database = kernel_workload.original
    database.vertical()  # prime the index so v2 includes the lane section
    v1_path = tmp_path / "snapshot_v1.bin"
    v2_path = tmp_path / "snapshot_v2.bin"
    save_database(database, v1_path, binary=True)
    write_snapshot(database, v2_path, include_lanes=True)

    def measure() -> dict:
        timings = {
            "v1_parse_open_s": _best_of(3, lambda: load_database(v1_path, binary=True)),
            "v2_mmap_open_s": _best_of(5, lambda: open_snapshot(v2_path)),
        }
        if numpy_available():
            # The zero-copy path: lanes come straight off the mapping via
            # numpy.frombuffer instead of being parsed into big ints.
            timings["v2_numpy_open_s"] = _best_of(
                5, lambda: open_snapshot(v2_path, kernel="numpy")
            )
        return timings

    timings = benchmark.pedantic(measure, rounds=1)

    # Correctness outside the timers: both formats reopen to the same
    # database, and the v2 open really is lazy until transactions are asked
    # for.
    reopened = open_snapshot(v2_path)
    assert not reopened.transactions_loaded
    assert dict(reopened.vertical()) == dict(database.vertical())
    assert reopened.transactions() == database.transactions()
    assert load_database(v1_path, binary=True).transactions() == database.transactions()

    speedup = timings["v1_parse_open_s"] / max(timings["v2_mmap_open_s"], 1e-9)
    payload = {
        "transactions": len(database),
        "v1_bytes": v1_path.stat().st_size,
        "v2_bytes": v2_path.stat().st_size,
        "cpus": usable_cpus(),
        "numpy_available": numpy_available(),
        "assertion_active": timing_asserts_enabled(),
        **{key: round(value, 6) for key, value in timings.items()},
        "speedup_v2_open_vs_v1": round(speedup, 3),
    }
    update_bench_artifact(
        "BENCH_backends.json", "backends_comparison", "snapshot_open", payload
    )

    print_report(
        f"snapshot open latency on {kernel_workload.name} (D = {len(database)})",
        [
            {"format": key.removesuffix("_s"), "open_s": round(value, 6)}
            for key, value in timings.items()
        ],
    )

    if timing_asserts_enabled():
        assert speedup >= MIN_SNAPSHOT_OPEN_SPEEDUP, (
            f"v2 mmap open only {speedup:.2f}x faster than the v1 parse "
            f"(need {MIN_SNAPSHOT_OPEN_SPEEDUP}x — the gap is architectural)"
        )

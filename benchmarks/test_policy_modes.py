"""Policy-mode benchmarks: sliding window vs unbounded, and the skip pre-check.

Two measurements of the PR-10 policy layer, both on provably correct state:

* **window vs unbounded** — the same insert stream driven through an
  unbounded maintainer and a sliding-window maintainer whose window equals
  the original database size.  The window twin pays FUP2 deletion work for
  every batch's evictions; the benchmark records both costs and asserts the
  pinned invariant (window lattice ≡ re-mining the window from scratch) so
  the numbers describe identical-by-construction maintenance.
* **skip work ratio** — a constructed stream of no-op increments driven
  through a maintainer with the DELI-style
  :class:`~repro.core.policy.SkipEstimator` and a plain twin.  Work is
  counted in *transactions read* — the deterministic currency the paper's
  own figures use — so the ratio (plain / skip-checked) is meaningful at
  any scale and on any runner.  The workload is built so plain FUP must
  scan the original database at **two** candidate levels per round while
  the skip path certifies its promotion border in one scan; see
  :func:`test_skip_estimator_work_ratio` for the construction.

When ``REPRO_BENCH_ARTIFACT`` is set the measurements land in the
``policy_modes`` section of ``BENCH_maintenance.json``, which
``benchmarks/check_regression.py`` gates against the committed baseline.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import (
    AprioriMiner,
    RuleMaintainer,
    SkipEstimator,
    SlidingWindowPolicy,
    TransactionDatabase,
    UpdateBatch,
)

from .conftest import (
    bench_artifact_path,
    build_workload,
    print_report,
    update_bench_artifact,
)

BATCHES = 6
POLICY_SUPPORT = 0.02
POLICY_CONFIDENCE = 0.5


def _update_policy_modes(key: str, payload: dict) -> None:
    """Merge one row into the shared ``policy_modes`` section.

    Both tests in this module contribute to a single section, and
    :func:`update_bench_artifact` replaces a section wholesale — so the
    existing sibling row is read back and re-written alongside the new one.
    The section-level ``assertion_active`` mirrors the skip row's flag,
    which is what ``check_regression.py`` consults for the gated
    ``skip_work_ratio`` metric.
    """
    artifact = bench_artifact_path("BENCH_maintenance.json")
    section: dict = {}
    if artifact is not None and artifact.exists():
        try:
            document = json.loads(artifact.read_text(encoding="ascii"))
        except (OSError, ValueError):
            document = {}
        if document.get("benchmark") == "maintenance_session" and isinstance(
            document.get("policy_modes"), dict
        ):
            section = document["policy_modes"]
    section[key] = payload
    skip_row = section.get("skip")
    section["assertion_active"] = bool(
        isinstance(skip_row, dict) and skip_row.get("assertion_active")
    )
    update_bench_artifact(
        "BENCH_maintenance.json", "maintenance_session", "policy_modes", section
    )


def _insert_batches(increment, batches: int):
    rows = increment.transactions()
    size = max(1, len(rows) // batches)
    return [
        rows[index * size : (index + 1) * size if index < batches - 1 else len(rows)]
        for index in range(batches)
    ]


@pytest.mark.benchmark(group="maintenance")
def test_window_policy_vs_unbounded(benchmark):
    """Identical insert stream; the window twin also pays for its evictions."""
    workload = build_workload("T10.I4.D100.d10", seed=73)
    inserts = _insert_batches(workload.increment, BATCHES)
    window = len(workload.original)

    def run_both() -> dict:
        timings: dict[str, float] = {}
        maintainers = {
            "unbounded": RuleMaintainer(POLICY_SUPPORT, POLICY_CONFIDENCE),
            "window": RuleMaintainer(
                POLICY_SUPPORT, POLICY_CONFIDENCE, policy=SlidingWindowPolicy(window)
            ),
        }
        evicted = 0
        for mode, maintainer in maintainers.items():
            maintainer.initialise(workload.original)
            start = time.perf_counter()
            for index, rows in enumerate(inserts):
                report = maintainer.apply(
                    UpdateBatch.from_iterables(insertions=rows, label=f"batch-{index}")
                )
                if mode == "window":
                    evicted += report.evicted_transactions
            timings[mode] = time.perf_counter() - start
        return {"timings": timings, "maintainers": maintainers, "evicted": evicted}

    measured = benchmark.pedantic(run_both, rounds=1)
    windowed = measured["maintainers"]["window"]

    # The pinned invariant: the window twin's lattice is exactly what mining
    # the final window contents from scratch produces.
    assert len(windowed.database) == window
    remined = AprioriMiner(POLICY_SUPPORT).mine(
        TransactionDatabase(windowed.database.transactions())
    )
    assert windowed.result.lattice.supports() == remined.lattice.supports()

    timings = measured["timings"]
    payload = {
        "workload": workload.name,
        "batches": BATCHES,
        "window": window,
        "min_support": POLICY_SUPPORT,
        "evicted": measured["evicted"],
        "unbounded_s": round(timings["unbounded"], 6),
        "window_s": round(timings["window"], 6),
        "window_invariant_checked": True,
    }
    _update_policy_modes("window", payload)
    print_report(
        f"window vs unbounded on {workload.name} ({BATCHES} batches, window {window})",
        [
            {"mode": mode, "seconds": round(seconds, 4)}
            for mode, seconds in timings.items()
        ],
    )
    assert measured["evicted"] == len(workload.increment)


#: Original database for the skip benchmark: 50% {1..5} rows, 25% {1,6},
#: 25% {2,6}.  At min-support 0.2 the tracked lattice is every subset of
#: {1..5} (support 50%) plus {6}, {1,6}, {2,6} — and, crucially, the
#: *untracked* sets {3,6} (level 2) and {1,2,6} (level 3) have their whole
#: subset frontier tracked.  Each increment is D identical {1..6} rows, so
#: every tracked itemset gains the full batch (no demotion is possible)
#: while the untracked sets gain only k·D — small forever while k·D stays
#: under min_support·|DB|/(1−min_support).  Plain FUP therefore generates
#: {x,6} candidates at level 2 and {1,2,6}-style candidates at level 3,
#: both frequent inside the increment, and pays an original-database scan
#: at *each* level; the skip path certifies the whole promotion border in
#: one scan.  Every quantity is a transaction count over identical rows —
#: the outcome is deterministic, not statistical.
SKIP_BLOCK = 250
SKIP_ORIGINAL = (
    [[1, 2, 3, 4, 5]] * (2 * SKIP_BLOCK)
    + [[1, 6]] * SKIP_BLOCK
    + [[2, 6]] * SKIP_BLOCK
)
SKIP_BATCH = [[1, 2, 3, 4, 5, 6]] * 40
SKIP_SUPPORT = 0.2


@pytest.mark.benchmark(group="maintenance")
def test_skip_estimator_work_ratio(benchmark):
    """Transactions read with vs without the skip pre-check on no-op rounds.

    The constructed stream (see ``SKIP_ORIGINAL``) never changes large-
    itemset membership, so a sound estimator skips every round.  The ratio
    is counted in transactions read (deterministic), not seconds, so
    ``assertion_active`` reflects only whether the rounds really skipped —
    never runner speed.
    """

    def run_both() -> dict:
        reads: dict[str, int] = {}
        stats = None
        timings: dict[str, float] = {}
        supports: dict[str, dict] = {}
        for mode in ("plain", "skip-checked"):
            estimator = SkipEstimator() if mode == "skip-checked" else None
            maintainer = RuleMaintainer(
                SKIP_SUPPORT, POLICY_CONFIDENCE, skip_estimator=estimator
            )
            maintainer.initialise(TransactionDatabase(SKIP_ORIGINAL))
            read = 0
            start = time.perf_counter()
            for index in range(BATCHES):
                maintainer.apply(
                    UpdateBatch.from_iterables(insertions=SKIP_BATCH, label=f"noop-{index}")
                )
                read += maintainer.result.transactions_read
            timings[mode] = time.perf_counter() - start
            reads[mode] = read
            supports[mode] = maintainer.result.lattice.supports()
            if estimator is not None:
                stats = estimator.stats
        return {"reads": reads, "stats": stats, "timings": timings, "supports": supports}

    measured = benchmark.pedantic(run_both, rounds=1)

    # Soundness before speed: the skip twin's lattice is byte-identical to
    # the plain twin's AND to a from-scratch mine of the final database.
    supports = measured["supports"]
    assert supports["plain"] == supports["skip-checked"]
    remined = AprioriMiner(SKIP_SUPPORT).mine(
        TransactionDatabase(SKIP_ORIGINAL + SKIP_BATCH * BATCHES)
    )
    assert supports["plain"] == remined.lattice.supports()

    reads = measured["reads"]
    stats = measured["stats"]
    work_ratio = reads["plain"] / max(reads["skip-checked"], 1)
    all_skipped = stats.rounds_skipped == BATCHES

    payload = {
        "workload": "constructed-noop-rounds",
        "batches": BATCHES,
        "min_support": SKIP_SUPPORT,
        "transactions_read_plain": reads["plain"],
        "transactions_read_skip": reads["skip-checked"],
        "skip_work_ratio": round(work_ratio, 3),
        "rounds_skipped": stats.rounds_skipped,
        "rounds_checked": stats.rounds_checked,
        "plain_s": round(measured["timings"]["plain"], 6),
        "skip_s": round(measured["timings"]["skip-checked"], 6),
        # The ratio is deterministic (transaction counts), so the gate is
        # active exactly when the skip rounds actually happened.
        "assertion_active": all_skipped,
    }
    _update_policy_modes("skip", payload)
    print_report(
        f"skip-estimator work ratio ({BATCHES} constructed no-op batches)",
        [
            {
                "mode": mode,
                "transactions_read": reads[key],
                "seconds": round(measured["timings"][key], 4),
            }
            for mode, key in (("plain FUP", "plain"), ("skip-checked", "skip-checked"))
        ],
    )
    assert stats.rounds_checked == BATCHES
    assert all_skipped, "constructed no-op rounds were not skipped"
    assert work_ratio >= 1.0

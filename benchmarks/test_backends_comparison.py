"""Counting-backend comparison on the Figure-2 workload.

Every algorithm in the library funnels through one hot path — the support
count of a candidate pool over a transaction database — so this benchmark
races the three pluggable engines on exactly that path, using the same
``T10.I4.D100.d1`` workload as the paper's Figure 2:

* the **counting phase**: support-count the full ``C_2`` candidate pool (the
  counting-dominated step that dominates Apriori/DHP/FUP runtime), and
* **end-to-end mining**: a complete Apriori run per engine, asserting that
  all engines produce identical large itemsets.

The vertical TID-set engine is expected to beat the horizontal hash-tree
scan by a wide margin on the counting phase; at the default benchmark scale
(or larger) that expectation is asserted (>= 1.5x).  At smaller smoke-test
scales the timings are recorded but not asserted — tiny databases measure
constant overheads, not scan costs.

When the environment variable ``REPRO_BENCH_ARTIFACT`` is set, the measured
timings are written to ``BENCH_backends.json`` at the repo root (or to the
path the variable names) so CI can upload them and future PRs have a perf
trajectory to compare against.  Plain local test runs leave the committed
baseline untouched.
"""

from __future__ import annotations

import time

import pytest

from repro import AprioriMiner, MiningOptions, make_backend
from repro.mining.backends import BACKEND_NAMES
from repro.mining.candidates import apriori_gen
from repro.mining.result import required_support_count

from .conftest import (
    BENCH_SCALE,
    print_report,
    timing_asserts_enabled,
    update_bench_artifact,
)

#: Support level of the counting race — low enough that C_2 is a real pool.
COUNT_SUPPORT = 0.01
#: Minimum speed-up of the vertical engine over the horizontal hash-tree
#: scan on the counting-dominated phase.
MIN_VERTICAL_SPEEDUP = 1.5

#: Shard count used for the partitioned engine in this comparison.
SHARDS = 4


def _level2_candidates(database) -> list[tuple[int, ...]]:
    """The full C_2 pool of *database* at ``COUNT_SUPPORT`` (paper's level 2)."""
    threshold = required_support_count(COUNT_SUPPORT, len(database))
    item_counts = database.item_counts()
    level_one = {(item,) for item, count in item_counts.items() if count >= threshold}
    return sorted(apriori_gen(level_one))


def _best_of(repeats: int, run) -> float:
    """Best-of-N wall time of *run* (minimum filters scheduler noise).

    Runs lasting over a second are measured once — at that duration the
    quantity of interest (an order-of-magnitude engine gap) dwarfs timer
    noise, and repeating them would dominate the suite's wall time.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
        if best > 1.0:
            break
    return best


@pytest.mark.benchmark(group="backends")
def test_backend_comparison(benchmark, figure2_workload):
    """Race the engines on the C_2 counting phase and on end-to-end mining."""
    database = figure2_workload.original
    candidates = _level2_candidates(database)
    assert candidates, "the workload must produce a non-trivial C_2 pool"

    def run_comparison() -> dict:
        counting: dict[str, float] = {}
        reference_counts = None
        for name in BACKEND_NAMES:
            engine = make_backend(name, shards=SHARDS)
            if name == "vertical":
                database.vertical()  # prime the cached index: built once per
                # database and amortised over every scan, it is not part of
                # the per-scan counting cost being raced here.
            counts = engine.count_candidates(database, candidates)
            if reference_counts is None:
                reference_counts = counts
            assert counts == reference_counts, f"{name} disagrees with the reference"
            counting[name] = _best_of(
                3, lambda engine=engine: engine.count_candidates(database, candidates)
            )

        mining: dict[str, float] = {}
        reference_supports = None
        for name in BACKEND_NAMES:
            miner = AprioriMiner(
                COUNT_SUPPORT, options=MiningOptions(backend=name, shards=SHARDS)
            )
            start = time.perf_counter()
            result = miner.mine(database)
            mining[name] = time.perf_counter() - start
            supports = result.lattice.supports()
            if reference_supports is None:
                reference_supports = supports
            assert supports == reference_supports, f"{name} mined different itemsets"
        return {"counting": counting, "mining": mining}

    timings = benchmark.pedantic(run_comparison, rounds=1)
    counting = timings["counting"]
    speedup = counting["horizontal"] / max(counting["vertical"], 1e-9)

    # Merged (not overwritten) at the top level: the kernel race and the
    # snapshot-open benchmark in test_kernels.py contribute sibling sections
    # to the same document.
    update_bench_artifact(
        "BENCH_backends.json",
        "backends_comparison",
        None,
        {
            "workload": figure2_workload.name,
            "scale": BENCH_SCALE,
            "transactions": len(database),
            "min_support": COUNT_SUPPORT,
            "candidates_level2": len(candidates),
            "shards": SHARDS,
            "counting_seconds": {
                name: round(value, 6) for name, value in counting.items()
            },
            "mining_seconds": {
                name: round(value, 6) for name, value in timings["mining"].items()
            },
            "vertical_speedup_vs_horizontal": round(speedup, 3),
        },
    )

    print_report(
        f"counting backends on {figure2_workload.name} "
        f"(|C2| = {len(candidates)}, D = {len(database)})",
        [
            {
                "backend": name,
                "count_C2_s": round(counting[name], 5),
                "mine_s": round(timings["mining"][name], 5),
            }
            for name in BACKEND_NAMES
        ],
    )

    if timing_asserts_enabled():
        assert speedup >= MIN_VERTICAL_SPEEDUP, (
            f"vertical engine only {speedup:.2f}x faster than the horizontal "
            f"hash-tree scan on the counting phase (need {MIN_VERTICAL_SPEEDUP}x)"
        )


@pytest.mark.benchmark(group="backends")
def test_partitioned_backend_merges_exactly(benchmark, figure2_workload):
    """Shard-and-merge equals the single-partition scan on real data."""
    database = figure2_workload.original
    candidates = _level2_candidates(database)

    def count_partitioned():
        return make_backend("partitioned", shards=SHARDS).count_candidates(
            database, candidates
        )

    merged = benchmark.pedantic(count_partitioned, rounds=1)
    assert merged == make_backend("horizontal").count_candidates(database, candidates)

"""Deletion-batch validation is O(d), not O(|DB|).

The maintenance pipeline used to validate every deletion batch by rebuilding
``Counter(database.transactions())`` — a full hash of every stored
transaction, per batch, just to prove the handful of deleted rows exist.
That is exactly the kind of size-proportional re-derivation the paper's FUP
argument forbids: a k-batch deletion session cost k·O(|DB|) before it did any
mining work.

The fix validates against the database's **delta-maintained transaction
multiset** (built once, updated per mutation) — truly O(d) — and removes
small batches through an indexed path whose residual per-victim scan is
C-level tuple comparison instead of a Python-level pass, so per-batch cost
is dominated by the mining update rather than the database size.  This
benchmark pins both halves of that claim on a session of single-row
deletion batches:

* the same session on a database 4× larger must not cost anywhere near 4× as
  much per batch (independence of |DB|), and
* the validation step itself must be far cheaper than the full-database
  ``Counter`` rebuild it replaced (measured side by side on the large
  database).

When ``REPRO_BENCH_ARTIFACT`` is set the measurements land in
``BENCH_maintenance.json`` next to the other maintenance-session numbers.
"""

from __future__ import annotations

import time
from collections import Counter

import pytest

from repro import RuleMaintainer, UpdateBatch

from .conftest import BENCH_SCALE, build_workload, print_report, timing_asserts_enabled
from .test_maintenance_session import _update_artifact

#: Single-row deletion batches per measured session.
BATCHES = 10
MAINT_SUPPORT = 0.02
MAINT_CONFIDENCE = 0.5
#: Size ratio between the two databases; per-batch time must stay far below it.
SIZE_RATIO = 4
#: Maximum allowed per-batch slowdown on the 4×-larger database.
MAX_GROWTH = 2.5
#: Minimum advantage of the O(d) validation over the old Counter rebuild.
MIN_VALIDATION_SPEEDUP = 5.0


def _deletion_session(workload) -> dict:
    """Initialise a maintainer and time BATCHES single-row deletion batches."""
    maintainer = RuleMaintainer(MAINT_SUPPORT, MAINT_CONFIDENCE)
    maintainer.initialise(workload.original)
    database = maintainer.database

    # Warm-up batch: builds the transaction multiset (the one-off cost the
    # session amortises, exactly like the vertical index) before the timers.
    maintainer.apply(
        UpdateBatch.from_iterables(
            deletions=[list(database.transactions()[0])], label="warm-up"
        )
    )

    batch_seconds: list[float] = []
    for number in range(BATCHES):
        rows = database.transactions()
        victim = rows[(number * len(rows)) // (BATCHES + 1)]
        batch = UpdateBatch.from_iterables(deletions=[list(victim)], label=f"del-{number}")
        start = time.perf_counter()
        maintainer.apply(batch)
        batch_seconds.append(time.perf_counter() - start)

    # The replaced pre-check, measured in isolation on the same database: a
    # full-database Counter rebuild per batch vs the maintained multiset.
    start = time.perf_counter()
    for _ in range(BATCHES):
        Counter(database.transactions())
    rebuild_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for number in range(BATCHES):
        rows = database.transactions()
        database.missing_transactions([list(rows[number % len(rows)])])
    multiset_seconds = time.perf_counter() - start

    return {
        "transactions": len(workload.original),
        "per_batch_s": sum(batch_seconds) / len(batch_seconds),
        "batch_seconds": batch_seconds,
        "rebuild_validation_s": rebuild_seconds,
        "multiset_validation_s": multiset_seconds,
    }


@pytest.mark.benchmark(group="maintenance")
def test_deletion_batches_cost_o_of_d(benchmark):
    small_workload = build_workload("T10.I4.D100.d10", scale=BENCH_SCALE / SIZE_RATIO, seed=73)
    large_workload = build_workload("T10.I4.D100.d10", seed=73)

    def run_both() -> dict:
        return {
            "small": _deletion_session(small_workload),
            "large": _deletion_session(large_workload),
        }

    measured = benchmark.pedantic(run_both, rounds=1)
    small, large = measured["small"], measured["large"]
    growth = large["per_batch_s"] / max(small["per_batch_s"], 1e-9)
    validation_speedup = large["rebuild_validation_s"] / max(
        large["multiset_validation_s"], 1e-9
    )

    rows = [
        {
            "database": label,
            "transactions": session["transactions"],
            "per_batch_ms": round(session["per_batch_s"] * 1e3, 4),
            "rebuild_check_ms": round(session["rebuild_validation_s"] * 1e3, 4),
            "multiset_check_ms": round(session["multiset_validation_s"] * 1e3, 4),
        }
        for label, session in (("small", small), ("large", large))
    ]
    _update_artifact(
        "deletion_validation",
        {
            "batches": BATCHES,
            "size_ratio": SIZE_RATIO,
            "per_batch_growth": round(growth, 3),
            "validation_speedup_vs_rebuild": round(validation_speedup, 3),
            "sessions": rows,
        },
    )
    print_report(
        f"single-row deletion batches ({BATCHES} per session, "
        f"growth {growth:.2f}x across a {SIZE_RATIO}x database)",
        rows,
    )

    assert len(large["batch_seconds"]) == BATCHES
    if timing_asserts_enabled():
        assert growth <= MAX_GROWTH, (
            f"per-batch deletion cost grew {growth:.2f}x on a {SIZE_RATIO}x larger "
            f"database (allowed {MAX_GROWTH}x) — deletion validation is scaling "
            f"with |DB| again"
        )
        assert validation_speedup >= MIN_VALIDATION_SPEEDUP, (
            f"multiset validation only {validation_speedup:.1f}x faster than the "
            f"full Counter rebuild it replaced (need {MIN_VALIDATION_SPEEDUP}x)"
        )

"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index and EXPERIMENTS.md
for the recorded results).  The workloads are scaled-down versions of the
paper's ``Tx.Iy.Dm.dn`` databases so that the whole suite runs in minutes of
pure-Python time; set the environment variable ``REPRO_BENCH_SCALE`` (for
example to ``1.0``) to run closer to the paper's sizes.

The benchmarks use ``benchmark.pedantic(..., rounds=1)`` because each "round"
is itself a full multi-algorithm experiment — the quantity of interest is the
*ratio between algorithms inside one run*, not nanosecond-level timing noise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import AprioriMiner, TransactionDatabase
from repro.datagen.workloads import scaled_paper_workload
from repro.harness.reporting import format_table
from repro.mining.result import MiningResult

#: Scale factor applied to the paper's transaction counts (paper: 1.0).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
#: Item-universe and pattern-pool sizes.  These stay at the paper's values
#: (N = 1000, |L| = 2000) even at reduced scale: the Quest model makes an
#: itemset's *relative* support roughly independent of the number of
#: transactions, so keeping the item density fixed and scaling only |D| and
#: |d| preserves the support-level behaviour of the paper's sweeps.
BENCH_ITEM_COUNT = int(os.environ.get("REPRO_BENCH_ITEMS", "1000"))
BENCH_PATTERN_COUNT = int(os.environ.get("REPRO_BENCH_PATTERNS", "2000"))

#: The support levels of Figures 2 and 3.
PAPER_SUPPORTS = [0.06, 0.04, 0.02, 0.01, 0.0075]

#: Scale at which timing/ratio assertions are meaningful.  Below this (the
#: CI smoke job runs at 0.002) the workloads are so small that constant
#: overheads dominate the scan costs the assertions are about, so the
#: benchmarks record their measurements but skip the asserts.
TIMING_ASSERT_SCALE = 0.01


def timing_asserts_enabled() -> bool:
    """True when the current scale is large enough to assert on timings."""
    return BENCH_SCALE >= TIMING_ASSERT_SCALE


@dataclass(frozen=True)
class BenchWorkload:
    """A generated workload plus its label, shared across benchmark modules."""

    name: str
    original: TransactionDatabase
    increment: TransactionDatabase

    @property
    def updated(self) -> TransactionDatabase:
        return self.original.concatenate(self.increment)


def build_workload(name: str, scale: float | None = None, seed: int | None = None) -> BenchWorkload:
    """Build a scaled paper workload for the benchmarks."""
    workload = scaled_paper_workload(
        name,
        scale=BENCH_SCALE if scale is None else scale,
        seed=seed,
        item_count=BENCH_ITEM_COUNT,
        pattern_count=BENCH_PATTERN_COUNT,
    )
    return BenchWorkload(
        name=workload.name, original=workload.original, increment=workload.increment
    )


@pytest.fixture(scope="session")
def figure2_workload() -> BenchWorkload:
    """The T10.I4.D100.d1 workload used by Figures 2 and 3."""
    return BenchWorkload(*_figure2_cached())


_FIGURE2_CACHE: list[tuple[str, TransactionDatabase, TransactionDatabase]] = []


def _figure2_cached() -> tuple[str, TransactionDatabase, TransactionDatabase]:
    if not _FIGURE2_CACHE:
        workload = build_workload("T10.I4.D100.d1")
        _FIGURE2_CACHE.append((workload.name, workload.original, workload.increment))
    return _FIGURE2_CACHE[0]


@pytest.fixture(scope="session")
def figure2_sweep(figure2_workload, initial_results_cache):
    """The Figure 2/3 support sweep, computed once and shared by both modules.

    Figures 2 and 3 of the paper are two views of the same experiment (times
    and candidate counts of one sweep), so the comparisons are computed once
    per session.
    """
    from repro.harness.runner import compare_update_strategies

    comparisons = []
    for min_support in PAPER_SUPPORTS:
        initial = initial_results_cache(figure2_workload.original, min_support)
        comparisons.append(
            compare_update_strategies(
                figure2_workload.original,
                figure2_workload.increment,
                min_support,
                workload=figure2_workload.name,
                initial=initial,
            )
        )
    return comparisons


def nontrivial(comparison) -> bool:
    """True when the updated database has enough large itemsets for the
    comparison to be meaningful.

    At the largest supports of the sweep the scaled-down workload has only a
    handful of large itemsets, so every strategy finishes in fractions of a
    millisecond and the time ratio is dominated by constant overheads rather
    than by the scan/candidate costs the paper's figures are about.  The
    paper's qualitative claims are therefore asserted only where the mining
    problem has real work in it.
    """
    return len(comparison.apriori.lattice) >= 25


@pytest.fixture(scope="session")
def initial_results_cache():
    """Session cache of AprioriMiner results keyed by (workload id, support)."""
    cache: dict[tuple[int, float], MiningResult] = {}

    def get(original: TransactionDatabase, min_support: float) -> MiningResult:
        key = (id(original), min_support)
        if key not in cache:
            cache[key] = AprioriMiner(min_support).mine(original)
        return cache[key]

    return get


def print_report(title: str, rows: list[dict[str, object]], columns: list[str] | None = None) -> None:
    """Print a benchmark report table (captured by pytest, shown with ``-s``)."""
    print()
    print(format_table(rows, columns=columns, title=title))


def bench_artifact_path(filename: str) -> "Path | None":
    """Where the named ``BENCH_*.json`` artifact lands, or None to skip it.

    ``REPRO_BENCH_ARTIFACT=1`` selects the repo root; any other value names
    the *directory* (the env var is shared across benchmark modules, so each
    module keeps its canonical file name and the artifacts never clobber
    each other).
    """
    value = os.environ.get("REPRO_BENCH_ARTIFACT", "")
    if not value:
        return None
    if value == "1":
        return Path(__file__).resolve().parents[1] / filename
    path = Path(value)
    if path.name != filename:
        return path.with_name(filename)
    return path


def update_bench_artifact(
    filename: str, benchmark: str, section: str | None, payload: dict
) -> None:
    """Merge *payload* into the named artifact without clobbering siblings.

    Several benchmark modules contribute sections to one document (the
    backends artifact holds the engine race plus the kernel and snapshot
    rows; the serving artifact holds every serving measurement), so writes
    are read-merge-write: an existing document of the same ``benchmark``
    kind keeps its other sections.  ``section=None`` merges *payload* at the
    top level (the artifact's historical flat shape); a name nests it.
    """
    artifact = bench_artifact_path(filename)
    if artifact is None:
        return
    document: dict = {"benchmark": benchmark, "scale": BENCH_SCALE}
    if artifact.exists():
        try:
            existing = json.loads(artifact.read_text(encoding="ascii"))
        except (OSError, ValueError):
            existing = {}
        if existing.get("benchmark") == benchmark:
            document = existing
    document["scale"] = BENCH_SCALE
    if section is None:
        document.update(payload)
    else:
        document[section] = payload
    artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(json.dumps(document, indent=2) + "\n", encoding="ascii")


def serving_artifact_path() -> "Path | None":
    """Where ``BENCH_serving.json`` lands, or None to skip writing it."""
    return bench_artifact_path("BENCH_serving.json")


def update_serving_artifact(section: str, payload: dict) -> None:
    """Merge *payload* under *section* into ``BENCH_serving.json``."""
    update_bench_artifact("BENCH_serving.json", "serving", section, payload)

"""End-to-end serving load: async vs threaded front end over real sockets.

The in-process serving benchmark (``test_serving_throughput``) measures the
snapshot's query data structures; this module measures the *servers* — both
front ends started over the same :class:`~repro.serve.store.RuleStore` and
driven through :mod:`benchmarks.load_harness` with concurrent keep-alive
HTTP/1.1 clients:

* **closed loop**, 32 clients each keeping one request in flight — the
  capacity number the async front end exists to improve, and the regime of
  the acceptance criterion (async must sustain at least the threaded q/s
  under ≥32 keep-alive clients on a multi-core machine);
* **open loop** at a fixed arrival rate well under capacity — tail latency
  under a load the server is *not* allowed to pace, measured from the
  scheduled arrival time so queueing is never silently omitted.

Every run must finish with zero 5xx responses and zero transport errors —
that part is asserted unconditionally, at any scale and core count.  The
async ≥ threaded throughput comparison is only *asserted* on a multi-core
machine at timing-assert scale (one core serializes the two event models
into an unrepresentative tie-breaker); the measurements themselves are
recorded either way, with ``cpus`` and ``assertion_active`` stamped on the
row so a reader of ``BENCH_serving.json`` knows what the numbers mean.

When ``REPRO_BENCH_ARTIFACT`` is set the rows land in ``BENCH_serving.json``
under ``closed_loop`` and ``open_loop``, next to the in-process numbers.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    AprioriMiner,
    AsyncRuleServer,
    MiningOptions,
    RuleServer,
    RuleSnapshot,
    RuleStore,
    generate_rules,
)

from .conftest import (
    build_workload,
    print_report,
    timing_asserts_enabled,
    update_serving_artifact,
)
from .load_harness import run_load, wait_until_healthy

#: Same serving regime as the in-process benchmark: the lowest Figure-2
#: support gives the richest rule set.
SERVE_SUPPORT = 0.0075
SERVE_CONFIDENCE = 0.3
#: Closed-loop concurrency (the acceptance criterion says ≥32 keep-alive
#: clients) and the open-loop offered rate, chosen well under the capacity
#: either front end sustains even on one core.
CLOSED_CLIENTS = 32
OPEN_CLIENTS = 8
OPEN_RATE = 300.0
#: Measured seconds per run (plus warm-up); kept short because two front
#: ends × two disciplines run per session and capacity stabilises quickly.
RUN_SECONDS = 1.5
WARMUP_SECONDS = 0.3
#: Baskets drawn from the served rules' own antecedents.
BASKET_POOL = 64


def _cpus() -> int:
    return os.cpu_count() or 1


def _throughput_assert_active() -> bool:
    """The async ≥ threaded gate only means something with real parallelism."""
    return _cpus() >= 2 and timing_asserts_enabled()


@pytest.fixture(scope="module")
def frontends():
    """Both front ends serving one published snapshot, plus the query pool."""
    workload = build_workload("T10.I4.D100.d1")
    updated = workload.original.concatenate(workload.increment)
    result = AprioriMiner(
        SERVE_SUPPORT, options=MiningOptions(backend="vertical")
    ).mine(updated)
    rules = generate_rules(result.lattice, SERVE_CONFIDENCE)
    store = RuleStore()
    store.publish(
        RuleSnapshot(
            version=1,
            rules=rules,
            lattice=result.lattice,
            min_support=SERVE_SUPPORT,
            min_confidence=SERVE_CONFIDENCE,
        )
    )
    baskets: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    for rule in rules:
        key = tuple(sorted(rule.antecedent))
        if key not in seen:
            seen.add(key)
            baskets.append(list(key))
        if len(baskets) >= BASKET_POOL:
            break
    with RuleServer(store) as threaded, AsyncRuleServer(store) as asynchronous:
        wait_until_healthy(threaded.url, timeout_seconds=10.0)
        wait_until_healthy(asynchronous.url, timeout_seconds=10.0)
        yield {
            "workload": workload.name,
            "rules": len(rules),
            "baskets": baskets or [[item] for item in range(1, 9)],
            "urls": {"threaded": threaded.url, "async": asynchronous.url},
        }


def _assert_clean(label: str, row) -> None:
    """Zero 5xx and zero transport errors, at any scale and core count."""
    assert row.latency.requests > 0, f"{label}: no request ever completed"
    assert row.statuses["5xx"] == 0, f"{label}: {row.statuses['5xx']} 5xx responses"
    assert row.errors == 0, f"{label}: {row.errors} transport errors"
    assert row.status_429 == 0, f"{label}: rate limiter engaged with no limit set"


def _record(section: str, rows: dict, fixture: dict, **extra) -> None:
    speedup = rows["async"].latency.queries_per_second / max(
        rows["threaded"].latency.queries_per_second, 1e-9
    )
    update_serving_artifact(
        section,
        {
            "workload": fixture["workload"],
            "rules": fixture["rules"],
            "cpus": _cpus(),
            "assertion_active": _throughput_assert_active(),
            **extra,
            "threaded": rows["threaded"].as_dict(),
            "async": rows["async"].as_dict(),
            "speedup_async_vs_threaded": round(speedup, 3),
        },
    )
    print_report(
        f"{section} on {fixture['workload']} (async/threaded {speedup:.2f}x)",
        [
            {"frontend": label, **row.as_dict()}
            for label, row in rows.items()
        ],
        columns=["frontend", "requests", "queries_per_second", "p50_ms", "p99_ms"],
    )


@pytest.mark.benchmark(group="serving-load")
def test_closed_loop_capacity(benchmark, frontends):
    """32 keep-alive clients, one request in flight each: sustained q/s."""

    def drive() -> dict:
        return {
            label: run_load(
                url,
                mode="closed",
                clients=CLOSED_CLIENTS,
                seconds=RUN_SECONDS,
                baskets=frontends["baskets"],
                warmup_seconds=WARMUP_SECONDS,
            )
            for label, url in frontends["urls"].items()
        }

    rows = benchmark.pedantic(drive, rounds=1)
    for label, row in rows.items():
        _assert_clean(f"closed/{label}", row)
    _record("closed_loop", rows, frontends, clients=CLOSED_CLIENTS, seconds=RUN_SECONDS)

    if _throughput_assert_active():
        async_qps = rows["async"].latency.queries_per_second
        threaded_qps = rows["threaded"].latency.queries_per_second
        assert async_qps >= threaded_qps, (
            f"async front end sustained {async_qps:.0f} q/s under "
            f"{CLOSED_CLIENTS} keep-alive clients vs threaded "
            f"{threaded_qps:.0f} q/s on {_cpus()} cores"
        )


@pytest.mark.benchmark(group="serving-load")
def test_open_loop_latency(benchmark, frontends):
    """Fixed arrival rate under capacity: tail latency with no self-pacing."""

    def drive() -> dict:
        return {
            label: run_load(
                url,
                mode="open",
                clients=OPEN_CLIENTS,
                rate=OPEN_RATE,
                seconds=RUN_SECONDS,
                baskets=frontends["baskets"],
                warmup_seconds=WARMUP_SECONDS,
            )
            for label, url in frontends["urls"].items()
        }

    rows = benchmark.pedantic(drive, rounds=1)
    for label, row in rows.items():
        _assert_clean(f"open/{label}", row)
    _record(
        "open_loop",
        rows,
        frontends,
        clients=OPEN_CLIENTS,
        rate_per_second=OPEN_RATE,
        seconds=RUN_SECONDS,
    )

"""Deterministic at-least-once producer for the pipeline smoke test.

Emits a JSONL event stream whose content is a pure function of ``--seed``
and ``--events``: running it twice produces byte-identical streams, which is
what lets the CI job kill it mid-stream (``kill -9``) and then *replay the
whole stream from the beginning* — the textbook at-least-once producer
restart — while still knowing exactly what the converged session must look
like.

``--dup-every N`` makes every Nth line redeliver an earlier event (same key,
same items), so dedup is exercised even within a single clean pass.
``--stop-after K`` emits only the first K lines of the logical stream, and
``--hang`` then parks the process in a sleep loop so the harness can deliver
a genuine SIGKILL to a live producer instead of racing a clean exit.  Output
is appended (``--out``) or written to stdout, flushed per line, so a reader
in follow mode sees every event the moment it is produced and a kill never
leaves a torn line behind.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path


def event_lines(events: int, dup_every: int, seed: int) -> list[str]:
    """The logical stream: *events* JSONL lines, deterministic in *seed*."""
    rng = random.Random(seed)
    fresh: list[dict] = []
    lines: list[str] = []
    for index in range(events):
        if dup_every and fresh and (index + 1) % dup_every == 0:
            payload = fresh[rng.randrange(len(fresh))]
        else:
            size = rng.randint(2, 6)
            payload = {
                "key": f"txn-{len(fresh)}",
                "op": "insert",
                "items": sorted(rng.sample(range(1, 40), size)),
            }
            fresh.append(payload)
        lines.append(json.dumps(payload))
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=600, help="stream length in lines")
    parser.add_argument(
        "--dup-every", type=int, default=0,
        help="every Nth line redelivers an earlier event (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=5, help="stream content seed")
    parser.add_argument(
        "--stop-after", type=int, default=None,
        help="emit only the first K lines (the mid-stream crash prefix)",
    )
    parser.add_argument(
        "--out", default=None,
        help="append to this file instead of writing to stdout",
    )
    parser.add_argument(
        "--delay", type=float, default=0.0, help="seconds to sleep between lines"
    )
    parser.add_argument(
        "--hang", action="store_true",
        help="sleep forever after emitting, awaiting an external kill",
    )
    args = parser.parse_args(argv)

    lines = event_lines(args.events, args.dup_every, args.seed)
    if args.stop_after is not None:
        lines = lines[: args.stop_after]

    sink = Path(args.out).open("a") if args.out else sys.stdout
    try:
        for line in lines:
            sink.write(line + "\n")
            sink.flush()
            if args.delay:
                time.sleep(args.delay)
    finally:
        if args.out:
            sink.close()

    print(f"produced {len(lines)} event line(s)", file=sys.stderr, flush=True)
    while args.hang:
        time.sleep(1)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Setuptools entry point.

The pyproject.toml carries all project metadata; this file exists so that
``pip install -e .`` works in fully offline environments whose setuptools
predates PEP 660 editable-wheel support (older toolchains fall back to the
legacy ``setup.py develop`` path, which needs this stub).
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Retail market-basket maintenance: watching rules drift as sales change.

The paper's motivating scenario is a retailer whose transaction database keeps
growing: new sales "may not only invalidate some existing strong rules but
also turn some weak rules into strong ones".  This example builds a small
named product catalogue, simulates a season of ordinary sales, mines the
initial rule set, then applies a promotional-period increment whose buying
pattern differs (a new bundle is promoted) and reports exactly which rules the
promotion created and which it invalidated.

Run it with::

    python examples/retail_basket.py
"""

from __future__ import annotations

import random

from repro import RuleMaintainer
from repro.harness.reporting import format_table
from repro.itemsets import format_itemset

# --------------------------------------------------------------------- #
# A tiny named product catalogue.
# --------------------------------------------------------------------- #
PRODUCTS = {
    0: "bread",
    1: "butter",
    2: "milk",
    3: "coffee",
    4: "sugar",
    5: "beer",
    6: "crisps",
    7: "nappies",
    8: "barbecue-charcoal",
    9: "sausages",
}

MIN_SUPPORT = 0.08
MIN_CONFIDENCE = 0.6


def ordinary_basket(rng: random.Random) -> list[int]:
    """A regular-season shopping basket."""
    basket = set()
    if rng.random() < 0.7:
        basket.update([0, 1])              # bread + butter go together
    if rng.random() < 0.5:
        basket.add(2)                      # milk is common
    if rng.random() < 0.35:
        basket.update([3, 4])              # coffee + sugar
    if rng.random() < 0.25:
        basket.update([5, 6])              # beer + crisps
    if rng.random() < 0.15:
        basket.add(7)
    if not basket:
        basket.add(rng.choice(list(PRODUCTS)))
    return sorted(basket)


def promotional_basket(rng: random.Random) -> list[int]:
    """A basket during the summer barbecue promotion."""
    basket = set()
    if rng.random() < 0.8:
        basket.update([8, 9])              # the promoted bundle
    if rng.random() < 0.5:
        basket.update([5, 9])              # beer + sausages
    if rng.random() < 0.3:
        basket.update([0, 1])              # the old staples still sell a bit
    if rng.random() < 0.2:
        basket.add(2)
    if not basket:
        basket.add(rng.choice(list(PRODUCTS)))
    return sorted(basket)


def describe_rules(rules, heading: str) -> None:
    print(f"\n{heading}")
    if not rules:
        print("  (none)")
        return
    rows = [
        {
            "rule": f"{format_itemset(rule.antecedent, PRODUCTS)} => "
                    f"{format_itemset(rule.consequent, PRODUCTS)}",
            "support": rule.support,
            "confidence": rule.confidence,
            "lift": rule.lift,
        }
        for rule in rules
    ]
    print(format_table(rows))


def main() -> None:
    rng = random.Random(7)

    # A season of 4,000 ordinary sales.
    season = [ordinary_basket(rng) for _ in range(4_000)]
    maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
    maintainer.initialise(season)
    print(f"initial database: {maintainer.database.size} baskets")
    describe_rules(maintainer.rules[:8], "strongest rules before the promotion:")

    # The two-week barbecue promotion: 1,200 new sales with a different pattern.
    promotion = [promotional_basket(rng) for _ in range(1_200)]
    report = maintainer.add_transactions(promotion, label="barbecue-promotion")

    print(
        f"\napplied increment of {report.inserted_transactions} baskets with "
        f"{report.algorithm.upper()} — database is now {report.database_size} baskets"
    )
    describe_rules(report.rules_added, "rules the promotion created:")
    describe_rules(report.rules_removed, "rules the promotion invalidated:")
    describe_rules(maintainer.rules[:8], "strongest rules after the promotion:")


if __name__ == "__main__":
    main()

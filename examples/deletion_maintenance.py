#!/usr/bin/env python3
"""Sliding-window maintenance with deletions (the Section 5 extension).

Section 5 of the paper notes that deletion and modification of transactions
were also investigated.  A common reason to delete is a *sliding window*: only
the most recent period should influence the rules, so each maintenance step
removes the oldest transactions while inserting the newest ones.  This example
keeps a fixed-size window over a changing stream — the buying pattern shifts
half-way through — and shows the rule set tracking the shift, using the
FUP2-style updater underneath.

Run it with::

    python examples/deletion_maintenance.py
"""

from __future__ import annotations

import random

from repro import AprioriMiner, RuleMaintainer, TransactionDatabase, UpdateBatch
from repro.harness.reporting import format_table
from repro.itemsets import format_itemset

MIN_SUPPORT = 0.1
MIN_CONFIDENCE = 0.6
WINDOW = 2_000
STEP = 500
STEPS = 8

ITEMS = {
    0: "umbrella", 1: "raincoat", 2: "wellies",
    3: "sunscreen", 4: "sunhat", 5: "sandals",
    6: "newspaper", 7: "coffee",
}


def rainy_season_basket(rng: random.Random) -> list[int]:
    basket = {6} if rng.random() < 0.4 else set()
    if rng.random() < 0.7:
        basket.update([0, 1])
    if rng.random() < 0.4:
        basket.add(2)
    if rng.random() < 0.3:
        basket.add(7)
    if not basket:
        basket.add(rng.choice(list(ITEMS)))
    return sorted(basket)


def sunny_season_basket(rng: random.Random) -> list[int]:
    basket = {6} if rng.random() < 0.4 else set()
    if rng.random() < 0.7:
        basket.update([3, 4])
    if rng.random() < 0.4:
        basket.add(5)
    if rng.random() < 0.3:
        basket.add(7)
    if not basket:
        basket.add(rng.choice(list(ITEMS)))
    return sorted(basket)


def main() -> None:
    rng = random.Random(42)
    # The stream: the first half is rainy season, the second half sunny.
    stream = [rainy_season_basket(rng) for _ in range(WINDOW + STEPS * STEP // 2)]
    stream += [sunny_season_basket(rng) for _ in range(STEPS * STEP)]

    window = TransactionDatabase(stream[:WINDOW], name="window")
    maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
    maintainer.initialise(window)

    def named_rules(rules, limit=3):
        return "; ".join(
            f"{format_itemset(rule.antecedent, ITEMS)}=>{format_itemset(rule.consequent, ITEMS)}"
            for rule in rules[:limit]
        )

    print(f"window of {WINDOW} baskets, sliding by {STEP} per step")
    print(f"initial rules: {named_rules(maintainer.rules)}")
    rows = []
    cursor = WINDOW
    for step in range(STEPS):
        incoming = stream[cursor: cursor + STEP]
        window_contents = maintainer.database.transactions()
        outgoing = [list(t) for t in window_contents[:STEP]]
        batch = UpdateBatch.from_iterables(
            insertions=incoming, deletions=outgoing, label=f"slide-{step + 1}"
        )
        report = maintainer.apply(batch)
        cursor += STEP
        rows.append(
            {
                "step": report.batch_label,
                "algorithm": report.algorithm,
                "window_size": report.database_size,
                "rules": len(maintainer.rules),
                "added": named_rules(report.rules_added) or "-",
                "removed": named_rules(report.rules_removed) or "-",
            }
        )

    print()
    print(format_table(rows, title="sliding-window maintenance log"))

    # The maintained window must equal a from-scratch mine of its contents.
    reference = AprioriMiner(MIN_SUPPORT).mine(maintainer.database)
    assert maintainer.result.lattice.supports() == reference.lattice.supports()
    assert maintainer.database.size == WINDOW

    print()
    print(f"final rules (sunny season): {named_rules(maintainer.rules, limit=5)}")


if __name__ == "__main__":
    main()

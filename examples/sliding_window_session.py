#!/usr/bin/env python3
"""Durable sliding-window maintenance with a mid-stream crash.

A production rule service keeps the rules of the *last N transactions*
current: every night the new day's transactions arrive and the policy layer
evicts the oldest to keep the window bound.  The eviction arithmetic lives in
:class:`~repro.core.policy.SlidingWindowPolicy` — the session is created with
the policy and every applied batch is planned through it, so this example
only feeds insertions and lets the policy synthesise the matching deletions.

Halfway through the stream the example simulates a crash: it abandons the
session object without closing or checkpointing, reopens the directory as a
fresh "process" and keeps going.  Recovery restores the policy (type,
parameters and state are part of the manifest) and replays the journal tail
— the journal records the *original* batches, and the restored policy
re-plans the same evictions deterministically.  At the end it verifies that
the recovered session's supports are bit-for-bit identical to a from-scratch
mine of the final window — nothing was lost and nothing was double-applied.

Run it with::

    python examples/sliding_window_session.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    AprioriMiner,
    MaintenanceSession,
    SlidingWindowPolicy,
    SyntheticConfig,
    SyntheticDataGenerator,
    UpdateBatch,
)
from repro.harness.reporting import format_table

MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.5
DAYS = 12
CRASH_AFTER_DAY = 6
WINDOW = 3_000


def main() -> None:
    config = SyntheticConfig(
        database_size=WINDOW,
        increment_size=WINDOW,
        mean_transaction_size=8,
        mean_pattern_size=3,
        pattern_count=250,
        item_count=250,
        seed=1996,
    )
    window, stream = SyntheticDataGenerator(config).generate()
    daily = max(1, len(stream) // DAYS)

    directory = Path(tempfile.mkdtemp(prefix="repro-session-")) / "window"
    began = time.perf_counter()
    session = MaintenanceSession.create(
        directory,
        window,
        min_support=MIN_SUPPORT,
        min_confidence=MIN_CONFIDENCE,
        checkpoint_interval=4,
        policy=SlidingWindowPolicy(WINDOW),
    )
    print(
        f"session initialised in {directory} ({len(window)} transactions, "
        f"{len(session.result.lattice)} itemsets) in {time.perf_counter() - began:.2f}s"
    )

    rows = []
    for day in range(DAYS):
        if day == CRASH_AFTER_DAY:
            # Simulate a crash and recover the way a restarted process would.
            # close() is write-free — no checkpoint, no journal truncation —
            # so from the disk's point of view this is exactly a kill; it just
            # releases the fds/flock deterministically instead of leaving
            # that to garbage collection.
            session.close()
            began = time.perf_counter()
            session = MaintenanceSession.open(directory)
            print(
                f"-- crash! reopened session at batch {session.applied_seq} "
                f"(checkpoint {session.checkpoint_seq}, replayed "
                f"{session.applied_seq - session.checkpoint_seq} journaled batches) "
                f"in {time.perf_counter() - began:.2f}s"
            )

        arriving = stream.transactions()[day * daily : (day + 1) * daily]
        batch = UpdateBatch.from_iterables(insertions=arriving, label=f"day-{day}")
        began = time.perf_counter()
        report = session.apply(batch)
        rows.append(
            {
                "day": report.batch_label,
                "seconds": round(time.perf_counter() - began, 4),
                "window": report.database_size,
                "evicted": report.evicted_transactions,
                "itemsets +/-": f"+{len(report.itemsets_added)}/-{len(report.itemsets_removed)}",
                "rules +/-/~": f"+{len(report.rules_added)}/-{len(report.rules_removed)}/~{len(report.rules_updated)}",
                "checkpoint": session.checkpoint_seq,
            }
        )

    print(format_table(rows, title=f"sliding window of {len(session.database)} transactions"))

    remined = AprioriMiner(MIN_SUPPORT).mine(session.database)
    matches = session.result.lattice.supports() == remined.lattice.supports()
    print(
        f"recovered session vs from-scratch mine of the final window: "
        f"{'identical' if matches else 'DIVERGED'} "
        f"({len(session.result.lattice)} itemsets, {len(session.rules)} rules)"
    )
    session.close()
    if not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

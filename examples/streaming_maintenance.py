#!/usr/bin/env python3
"""Streaming maintenance: nightly increments over a month of activity.

The paper argues that mined rules only become stable when "a large volume of
data [is] collected over a substantial period of time", which means the
database — and the rules — must be maintained as new data keeps arriving.
This example simulates a month of nightly batch loads: each night a new chunk
of transactions lands and the RuleMaintainer brings the rule set up to date
with FUP.  At the end it verifies the maintained state against a from-scratch
mine of the whole month and compares the cumulative cost of the two policies.

Run it with::

    python examples/streaming_maintenance.py
"""

from __future__ import annotations

import time

from repro import (
    AprioriMiner,
    RuleMaintainer,
    SkipEstimator,
    SyntheticConfig,
    SyntheticDataGenerator,
)
from repro.harness.reporting import format_table

MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.5
DAYS = 10


def main() -> None:
    # One generation run supplies the initial month plus every nightly load,
    # so the whole stream follows one statistical pattern (as in the paper).
    config = SyntheticConfig(
        database_size=4_000,
        increment_size=2_000,
        mean_transaction_size=8,
        mean_pattern_size=3,
        pattern_count=250,
        item_count=250,
        seed=314,
    )
    original, stream = SyntheticDataGenerator(config).generate()
    nightly = max(1, len(stream) // DAYS)

    # The DELI-style pre-check skips FUP rounds that provably cannot change
    # the large-itemset collection; the final assert shows it is lossless.
    maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE, skip_estimator=SkipEstimator())
    began = time.perf_counter()
    maintainer.initialise(original)
    initial_seconds = time.perf_counter() - began
    print(
        f"initial mine of {len(original)} transactions: "
        f"{len(maintainer.large_itemsets)} large itemsets, "
        f"{len(maintainer.rules)} rules in {initial_seconds:.2f}s"
    )

    rows = []
    incremental_seconds = 0.0
    naive_seconds = 0.0
    grown = original.copy()
    for day in range(DAYS):
        start = day * nightly
        stop = start + nightly if day < DAYS - 1 else len(stream)
        batch = [list(t) for t in stream.transactions()[start:stop]]

        began = time.perf_counter()
        report = maintainer.add_transactions(batch, label=f"night-{day + 1:02d}")
        fup_seconds = time.perf_counter() - began
        incremental_seconds += fup_seconds

        # The policy the paper compares against: re-mine everything nightly.
        grown.extend(batch)
        began = time.perf_counter()
        AprioriMiner(MIN_SUPPORT).mine(grown)
        naive_seconds += time.perf_counter() - began

        rows.append(
            {
                "night": report.batch_label,
                "loaded": report.inserted_transactions,
                "db_size": report.database_size,
                "fup_seconds": fup_seconds,
                "skipped": "yes" if report.skipped else "",
                "rules": len(maintainer.rules),
                "rules_added": len(report.rules_added),
                "rules_removed": len(report.rules_removed),
            }
        )

    print()
    print(format_table(rows, title="nightly maintenance log"))

    # Verify the maintained state is exactly what a from-scratch mine finds.
    final = AprioriMiner(MIN_SUPPORT).mine(original.concatenate(stream))
    assert maintainer.result.lattice.supports() == final.lattice.supports()

    print()
    stats = maintainer.skip_estimator.stats
    print(
        f"skip pre-check: {stats.rounds_skipped}/{stats.rounds_checked} "
        f"round(s) skipped without touching the lattice"
    )
    print(f"cumulative maintenance cost with FUP:        {incremental_seconds:.2f}s")
    print(f"cumulative cost of re-mining every night:    {naive_seconds:.2f}s")
    print(f"saving from incremental maintenance:         {naive_seconds / max(incremental_seconds, 1e-9):.1f}x")


if __name__ == "__main__":
    main()

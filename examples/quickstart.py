#!/usr/bin/env python3
"""Quickstart: mine a database once, then maintain its rules with FUP.

This walks through the paper's core workflow on a small synthetic dataset:

1. generate a transaction database,
2. mine its large itemsets and association rules (Apriori),
3. receive an increment of new transactions,
4. update the large itemsets with FUP — without re-mining from scratch —
   and compare the cost against re-running Apriori on the updated database.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AprioriMiner,
    FupUpdater,
    SyntheticConfig,
    SyntheticDataGenerator,
    generate_rules,
)
from repro.harness.reporting import format_table

MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.6


def main() -> None:
    # 1. A small Quest-style synthetic workload: 5,000 transactions plus a
    #    500-transaction increment over 300 items.
    config = SyntheticConfig(
        database_size=5_000,
        increment_size=500,
        mean_transaction_size=8,
        mean_pattern_size=3,
        pattern_count=300,
        item_count=300,
        seed=2026,
    )
    original, increment = SyntheticDataGenerator(config).generate()
    print(f"workload {config.name}: |DB| = {len(original)}, |db| = {len(increment)}")

    # 2. Initial mining run (this state is what FUP will reuse later).
    initial = AprioriMiner(MIN_SUPPORT).mine(original)
    initial_rules = generate_rules(initial.lattice, MIN_CONFIDENCE)
    print(
        f"initial mine: {len(initial.lattice)} large itemsets, "
        f"{len(initial_rules)} strong rules, {initial.elapsed_seconds:.3f}s"
    )

    # 3-4. The increment arrives; update with FUP and compare with re-mining.
    fup = FupUpdater(MIN_SUPPORT).update(original, initial, increment)
    remined = AprioriMiner(MIN_SUPPORT).mine(original.concatenate(increment))
    assert fup.lattice.supports() == remined.lattice.supports(), "FUP must match re-mining"

    updated_rules = generate_rules(fup.lattice, MIN_CONFIDENCE)
    new_itemsets = set(fup.lattice.itemsets()) - set(initial.lattice.itemsets())
    lost_itemsets = set(initial.lattice.itemsets()) - set(fup.lattice.itemsets())

    print()
    print(
        format_table(
            [
                {
                    "strategy": "FUP update",
                    "seconds": fup.elapsed_seconds,
                    "candidates": fup.candidates_generated,
                    "db_scans": fup.database_scans,
                },
                {
                    "strategy": "re-run Apriori",
                    "seconds": remined.elapsed_seconds,
                    "candidates": remined.candidates_generated,
                    "db_scans": remined.database_scans,
                },
            ],
            title="updating the mined state after the increment",
        )
    )
    print()
    print(f"speed-up of FUP over re-mining: {remined.elapsed_seconds / max(fup.elapsed_seconds, 1e-9):.1f}x")
    print(f"large itemsets now: {len(fup.lattice)} ({len(new_itemsets)} new, {len(lost_itemsets)} lost)")
    print(f"strong rules now:   {len(updated_rules)}")
    if updated_rules:
        print("\nfive highest-confidence rules after the update:")
        for rule in updated_rules[:5]:
            print(f"  {rule}")


if __name__ == "__main__":
    main()

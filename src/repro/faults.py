"""Fault-injection seam for the crash-recovery test tier.

A :func:`crash_point` call marks a spot in a durability protocol where a
process death would be interesting — between the journal append and the
ledger commit, between the ledger commit and the checkpoint, mid-append.
In production the call is a no-op (one environment lookup); under test the
``REPRO_CRASH_POINT`` environment variable arms exactly one named point and
the process dies there, either by raising :class:`InjectedCrash` or by
SIGKILLing itself — the latter being the only honest simulation of a power
loss, since no ``finally`` blocks run.

The variable's format is ``name[:action[:skip]]``:

``name``
    The crash point to arm; every other point stays a no-op.
``action``
    ``raise`` (default) raises :class:`InjectedCrash`; ``kill`` sends the
    process SIGKILL.
``skip``
    Let the first *skip* traversals of the point pass before crashing, so a
    test can die on the Nth batch instead of the first.

A point that owns an append-style write may pass ``torn_write``: a callable
that writes a *torn* record (a half line, never terminated, never fsynced)
just before the crash fires — the exact bytes a power loss mid-append can
leave on disk.  It runs only when the crash is actually about to happen.
"""

from __future__ import annotations

import os
import signal
from typing import Callable

__all__ = ["CRASH_POINT_ENV", "InjectedCrash", "crash_point"]

#: Environment variable arming a crash point (``name[:action[:skip]]``).
CRASH_POINT_ENV = "REPRO_CRASH_POINT"

#: Traversal counters per crash point, so ``skip`` can count across calls.
#: Module-level mutable state is normally banned (RPR002: it leaks between
#: threads and test runs), but a fault seam is *about* observing process
#: lifetime — the counter must survive across call sites, is only touched
#: when REPRO_CRASH_POINT is set (i.e. inside a test subprocess that is
#: about to die), and is reset with the process.
_HITS: dict[str, int] = {}


class InjectedCrash(RuntimeError):
    """Raised by an armed crash point in ``raise`` mode.

    Deliberately *not* a :class:`~repro.errors.ReproError`: library code
    catching its own error hierarchy must never swallow an injected crash,
    exactly as it could never swallow a SIGKILL.
    """


def _parse(spec: str) -> tuple[str, str, int]:
    name, _, rest = spec.partition(":")
    action, _, skip_text = rest.partition(":")
    action = action or "raise"
    if action not in ("raise", "kill"):
        raise ValueError(
            f"{CRASH_POINT_ENV}={spec!r}: action must be 'raise' or 'kill'"
        )
    skip = int(skip_text) if skip_text else 0
    return name, action, skip


def crash_point(name: str, *, torn_write: Callable[[], None] | None = None) -> None:
    """Die here iff the environment arms the crash point called *name*."""
    spec = os.environ.get(CRASH_POINT_ENV)
    if not spec:
        return
    armed, action, skip = _parse(spec)
    if armed != name:
        return
    count = _HITS.get(name, 0) + 1
    _HITS[name] = count  # repro: ignore[RPR002] - armed-only test seam; see _HITS note
    if count <= skip:
        return
    if torn_write is not None:
        torn_write()
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise InjectedCrash(f"injected crash at {name!r} (traversal {count})")

"""FUP — the Fast UPdate algorithm (Section 3 of the paper).

Given the original database ``DB`` (size ``D``), the large itemsets ``L``
previously mined from it *with their support counts*, and an increment ``db``
of ``d`` new transactions, FUP computes the large itemsets ``L'`` of the
updated database ``DB ∪ db`` under the same minimum support ``s`` while
scanning the big original database as little as possible:

* Old large k-itemsets only need their counts refreshed against the small
  increment to decide whether they stay large (Lemmas 1 and 4); itemsets that
  contain a (k−1)-level loser are discarded without any counting (Lemma 3).
* Potential *new* large itemsets are extracted from the increment, and a
  candidate is kept only if it is large **inside the increment itself**
  (``support_db ≥ s × d``, Lemmas 2 and 5) — only this heavily pruned pool is
  counted against ``DB``.
* The databases shrink as the iterations proceed (Section 3.4): hopeless
  items collected in ``P`` are dropped from ``DB`` during its first scan, the
  DHP-style ``Reduce-db`` / ``Reduce-DB`` trimming removes items and
  transactions that can no longer contribute, and the direct-hashing filter
  further prunes the size-2 candidates.

The updater returns a normal :class:`~repro.mining.result.MiningResult`; its
lattice carries the exact support counts in ``DB ∪ db`` for every new large
itemset, so the output can be fed straight back in as the "previous" state of
the next update — that is what :class:`~repro.core.maintenance.RuleMaintainer`
does.
"""

from __future__ import annotations

import time
from collections import Counter
from itertools import combinations
from typing import Sequence

from ..db.transaction_db import Transaction, TransactionDatabase
from ..errors import StaleStateError
from ..itemsets import Item, Itemset
from ..mining.backends import CountingBackend, make_backend
from ..mining.candidates import apriori_gen
from ..mining.hash_tree import HashTree
from ..mining.result import (
    ItemsetLattice,
    MiningResult,
    required_support_count,
    validate_min_support,
)
from .options import FupOptions

__all__ = ["FupUpdater", "update_with_fup"]


def _hash_pair(pair: Itemset, buckets: int) -> int:
    """Bucket index of a size-2 itemset in the direct-hashing table."""
    return (pair[0] * 10 + pair[1]) % buckets


def _as_lattice(previous: MiningResult | ItemsetLattice) -> ItemsetLattice:
    """Accept either a full mining result or a bare lattice as the prior state."""
    if isinstance(previous, MiningResult):
        return previous.lattice
    return previous


class FupUpdater:
    """Incremental updater implementing the FUP algorithm.

    Parameters
    ----------
    min_support:
        Relative minimum support ``s`` in ``(0, 1]``.  It must be the same
        threshold the previous mining run used — FUP's lemmas assume the
        thresholds do not change between the original run and the update.
    options:
        Feature switches (all optimisations enabled by default).
    max_itemset_size:
        Optional cap on the itemset size explored.
    """

    algorithm_name = "fup"

    def __init__(
        self,
        min_support: float,
        options: FupOptions | None = None,
        max_itemset_size: int | None = None,
        backend: CountingBackend | None = None,
    ) -> None:
        self.min_support = validate_min_support(min_support)
        self.options = options or FupOptions()
        if max_itemset_size is not None and max_itemset_size < 1:
            raise ValueError(f"max_itemset_size must be positive, got {max_itemset_size}")
        self.max_itemset_size = max_itemset_size
        # An explicit *backend* instance wins over the options-described
        # engine — callers sharing one (stateful) engine across several
        # updaters/miners inject it here.
        self.backend = backend if backend is not None else make_backend(
            self.options.backend,
            shards=self.options.shards,
            executor=self.options.executor,
            workers=self.options.workers,
            kernel=self.options.kernel,
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def update(
        self,
        original: TransactionDatabase,
        previous: MiningResult | ItemsetLattice,
        increment: TransactionDatabase,
    ) -> MiningResult:
        """Compute the large itemsets of ``original ∪ increment``.

        Raises
        ------
        StaleStateError
            If the previous result's recorded database size (or minimum
            support, when a full :class:`MiningResult` is supplied) does not
            match this update — the supplied state would yield wrong counts.
        """
        self._validate_previous(original, previous)
        old = _as_lattice(previous)
        start = time.perf_counter()

        state = _FupRun(
            min_support=self.min_support,
            options=self.options,
            max_itemset_size=self.max_itemset_size,
            original=original,
            old=old,
            increment=increment,
            backend=self.backend,
        )
        lattice = state.run()

        elapsed = time.perf_counter() - start
        return MiningResult(
            lattice=lattice,
            min_support=self.min_support,
            algorithm=self.algorithm_name,
            candidates_generated=sum(state.candidates_per_level.values()),
            candidates_per_level=dict(state.candidates_per_level),
            database_scans=state.database_scans,
            increment_scans=state.increment_scans,
            transactions_read=state.transactions_read,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    def _validate_previous(
        self,
        original: TransactionDatabase,
        previous: MiningResult | ItemsetLattice,
    ) -> None:
        old = _as_lattice(previous)
        if old.database_size != len(original):
            raise StaleStateError(
                f"previous result was mined from {old.database_size} transactions but the "
                f"original database now holds {len(original)}; re-mine or supply the "
                f"matching state"
            )
        if isinstance(previous, MiningResult) and previous.min_support != self.min_support:
            raise StaleStateError(
                f"previous result used min_support={previous.min_support} but this update "
                f"uses {self.min_support}; FUP requires an unchanged threshold"
            )


class _FupRun:
    """One execution of the FUP iterations (internal work object).

    Splitting the run state out of :class:`FupUpdater` keeps the updater
    itself stateless/reusable and the per-level bookkeeping readable.
    """

    def __init__(
        self,
        min_support: float,
        options: FupOptions,
        max_itemset_size: int | None,
        original: TransactionDatabase,
        old: ItemsetLattice,
        increment: TransactionDatabase,
        backend: CountingBackend | None = None,
    ) -> None:
        self.min_support = min_support
        self.options = options
        self.max_itemset_size = max_itemset_size
        self.old = old
        self.original_size = len(original)
        self.increment_size = len(increment)
        self.total_size = self.original_size + self.increment_size
        self.required_total = required_support_count(min_support, self.total_size)
        self.required_increment = required_support_count(min_support, self.increment_size)

        # Counting engine.  The Section 3.4 database reductions and the DHP
        # hash filter are interleaved into the horizontal per-transaction
        # scan; engines without such a loop run every counting pass
        # themselves and those two (lossless) prunes are skipped, keeping the
        # databases intact so index-caching engines can reuse their
        # per-database representation across iterations — and, because the
        # database's vertical index is delta-maintained through mutations,
        # across every batch of a maintenance session.
        self.backend = backend if backend is not None else make_backend(
            options.backend,
            shards=options.shards,
            executor=options.executor,
            workers=options.workers,
            kernel=options.kernel,
        )
        self.interleaved_scans = self.backend.supports_transaction_pruning
        self.original_db = original
        self.increment_db = increment

        # Working copies of the two databases; the Section 3.4 reductions
        # shrink these as the iterations proceed.  Only the interleaved
        # (horizontal) mode reduces — and therefore needs — the copies; the
        # engine modes scan the database objects directly, so copying the
        # potentially huge original database would be pure waste.
        if self.interleaved_scans:
            self.working_increment: list[Transaction] = list(increment)
            self.working_original: list[Transaction] = list(original)
        else:
            self.working_increment = []
            self.working_original = []

        # Direct-hashing buckets over size-2 subsets (Section 3.4, DHP
        # integration); the original-database buckets are only available when
        # the first iteration actually had to scan the original database.
        self.increment_buckets: list[int] | None = (
            [0] * options.hash_table_size
            if options.use_hash_filter and self.interleaved_scans
            else None
        )
        self.original_buckets: list[int] | None = None

        # Instrumentation.
        self.candidates_per_level: dict[int, int] = {}
        self.database_scans = 0
        self.increment_scans = 0
        self.transactions_read = 0

    # ------------------------------------------------------------------ #
    def run(self) -> ItemsetLattice:
        """Execute every iteration and return the new lattice ``L'``."""
        lattice = ItemsetLattice(database_size=self.total_size)
        if self.increment_size == 0:
            # Nothing was added: the old large itemsets are still exact.
            for candidate, count in self.old.supports().items():
                lattice.add(candidate, count)
            return lattice

        new_level, losers = self._first_iteration(lattice)
        size = 2
        while new_level and (self.max_itemset_size is None or size <= self.max_itemset_size):
            new_level, losers = self._later_iteration(lattice, size, new_level, losers)
            size += 1
        return lattice

    # ------------------------------------------------------------------ #
    # Iteration 1 (Section 3.1)
    # ------------------------------------------------------------------ #
    def _first_iteration(self, lattice: ItemsetLattice) -> tuple[set[Itemset], set[Itemset]]:
        options = self.options
        old_level = self.old.level(1)

        # Single scan of the increment: counts every item (both for updating
        # the old winners and for harvesting new candidates) and, when the
        # hash filter is on, the size-2 subset buckets.
        if self.interleaved_scans:
            increment_counts: Counter[Item] = Counter()
            for transaction in self.working_increment:
                increment_counts.update(transaction)
                if self.increment_buckets is not None:
                    for pair in combinations(transaction, 2):
                        self.increment_buckets[_hash_pair(pair, options.hash_table_size)] += 1
        else:
            increment_counts = self.backend.count_items(self.increment_db)
        self.increment_scans += 1
        # The first scan always reads the whole increment (no reduction has
        # happened yet in either mode).
        self.transactions_read += self.increment_size

        # Winners and losers among the old large 1-itemsets (Lemma 1).
        new_level: set[Itemset] = set()
        losers: set[Itemset] = set()
        for candidate in old_level:
            count = self.old.support_count(candidate) + increment_counts.get(candidate[0], 0)
            if count >= self.required_total:
                lattice.add(candidate, count)
                new_level.add(candidate)
            else:
                losers.add(candidate)

        # New candidates are the items seen in the increment that were not
        # large before; Lemma 2 prunes those that are small even inside the
        # increment.  The pruned items form the set P used to shrink DB.
        candidate_counts: dict[Itemset, int] = {
            (item,): count
            for item, count in increment_counts.items()
            if (item,) not in old_level
        }
        hopeless_items: set[Item] = set()
        if options.prune_candidates_by_increment:
            for candidate in list(candidate_counts):
                if candidate_counts[candidate] < self.required_increment:
                    hopeless_items.add(candidate[0])
                    del candidate_counts[candidate]
        self.candidates_per_level[1] = len(candidate_counts)

        if candidate_counts:
            self._scan_original_first_iteration(
                lattice, candidate_counts, hopeless_items, new_level
            )
        return new_level, losers

    def _scan_original_first_iteration(
        self,
        lattice: ItemsetLattice,
        candidate_counts: dict[Itemset, int],
        hopeless_items: set[Item],
        new_level: set[Itemset],
    ) -> None:
        """Scan ``DB`` once: count the surviving 1-candidates, drop ``P`` items."""
        options = self.options
        if not self.interleaved_scans:
            counted = self.backend.count_candidates(self.original_db, list(candidate_counts))
            original_counts = {candidate[0]: count for candidate, count in counted.items()}
            self.database_scans += 1
            self.transactions_read += self.original_size
        else:
            original_counts = {candidate[0]: 0 for candidate in candidate_counts}
            remove_hopeless = options.reduce_databases and bool(hopeless_items)
            if options.use_hash_filter:
                self.original_buckets = [0] * options.hash_table_size

            reduced: list[Transaction] = []
            for transaction in self.working_original:
                if remove_hopeless:
                    transaction = tuple(
                        item for item in transaction if item not in hopeless_items
                    )
                for item in transaction:
                    if item in original_counts:
                        original_counts[item] += 1
                if self.original_buckets is not None:
                    for pair in combinations(transaction, 2):
                        self.original_buckets[_hash_pair(pair, options.hash_table_size)] += 1
                reduced.append(transaction)
            self.database_scans += 1
            self.transactions_read += len(self.working_original)
            if options.reduce_databases:
                self.working_original = reduced

        for candidate, increment_count in candidate_counts.items():
            count = original_counts[candidate[0]] + increment_count
            if count >= self.required_total:
                lattice.add(candidate, count)
                new_level.add(candidate)

    # ------------------------------------------------------------------ #
    # Iterations 2.. (Section 3.2)
    # ------------------------------------------------------------------ #
    def _later_iteration(
        self,
        lattice: ItemsetLattice,
        size: int,
        previous_new_level: set[Itemset],
        previous_losers: set[Itemset],
    ) -> tuple[set[Itemset], set[Itemset]]:
        options = self.options
        old_level = self.old.level(size)

        # W starts as the old large k-itemsets; Lemma 3 removes the ones that
        # contain a known (k−1)-level loser without counting anything.
        winners_pool = set(old_level)
        if options.filter_losers_by_subsets and previous_losers:
            winners_pool = {
                candidate
                for candidate in winners_pool
                if not self._contains_loser(candidate, previous_losers)
            }

        # C = apriori_gen(L'_{k-1}) − L_k; at size 2 the direct-hashing filter
        # can discard candidates whose bucket count already proves them small.
        candidates = apriori_gen(previous_new_level) - old_level
        if (
            size == 2
            and options.use_hash_filter
            and self.increment_buckets is not None
            and self.original_buckets is not None
        ):
            candidates = {
                candidate
                for candidate in candidates
                if (
                    self.increment_buckets[_hash_pair(candidate, options.hash_table_size)]
                    + self.original_buckets[_hash_pair(candidate, options.hash_table_size)]
                )
                >= self.required_total
            }

        if not winners_pool and not candidates:
            self.candidates_per_level[size] = 0
            return set(), set(old_level)

        # Scan the increment once: update the supports of W and C, trim the
        # increment's transactions (Reduce-db).
        winner_counts, candidate_counts = self._scan_increment(winners_pool, candidates, size)

        new_level: set[Itemset] = set()
        for candidate in winners_pool:
            count = self.old.support_count(candidate) + winner_counts[candidate]
            if count >= self.required_total:
                lattice.add(candidate, count)
                new_level.add(candidate)

        # Lemma 5: a brand-new itemset must be large within the increment.
        if options.prune_candidates_by_increment:
            candidates = {
                candidate
                for candidate in candidates
                if candidate_counts[candidate] >= self.required_increment
            }
        self.candidates_per_level[size] = len(candidates)

        if candidates:
            self._scan_original_later_iteration(
                lattice, size, old_level, candidates, candidate_counts, new_level
            )

        losers = set(old_level) - new_level
        return new_level, losers

    def _scan_increment(
        self,
        winners_pool: set[Itemset],
        candidates: set[Itemset],
        size: int,
    ) -> tuple[dict[Itemset, int], dict[Itemset, int]]:
        """One pass over the increment counting both pools, with Reduce-db trimming."""
        options = self.options
        if not self.interleaved_scans:
            # The engine counts both pools in one pass; Reduce-db is skipped
            # (the increment was never reduced in this mode, so the cached
            # per-database index stays valid).
            winner_counts, candidate_counts = self.backend.count_pools(
                self.increment_db, [winners_pool, candidates]
            )
            self.increment_scans += 1
            self.transactions_read += self.increment_size
            return winner_counts, candidate_counts

        winner_tree = HashTree(winners_pool) if winners_pool else None
        candidate_tree = HashTree(candidates) if candidates else None
        winner_counts: dict[Itemset, int] = {candidate: 0 for candidate in winners_pool}
        candidate_counts: dict[Itemset, int] = {candidate: 0 for candidate in candidates}

        reduced: list[Transaction] = []
        for transaction in self.working_increment:
            matches: list[Itemset] = []
            if winner_tree is not None:
                for match in winner_tree.subsets_in(transaction):
                    winner_counts[match] += 1
                    matches.append(match)
            if candidate_tree is not None:
                for match in candidate_tree.subsets_in(transaction):
                    candidate_counts[match] += 1
                    matches.append(match)
            if options.reduce_databases:
                trimmed = _reduce_transaction(transaction, matches, size)
                if trimmed:
                    reduced.append(trimmed)
            else:
                reduced.append(transaction)
        self.increment_scans += 1
        self.transactions_read += len(self.working_increment)
        self.working_increment = reduced
        return winner_counts, candidate_counts

    def _scan_original_later_iteration(
        self,
        lattice: ItemsetLattice,
        size: int,
        old_level: set[Itemset],
        candidates: set[Itemset],
        candidate_counts: dict[Itemset, int],
        new_level: set[Itemset],
    ) -> None:
        """Scan ``DB`` counting the pruned candidates, with Reduce-DB trimming."""
        options = self.options
        if not self.interleaved_scans:
            original_counts = self.backend.count_candidates(self.original_db, candidates)
            self.database_scans += 1
            self.transactions_read += self.original_size
            for candidate in candidates:
                count = original_counts[candidate] + candidate_counts[candidate]
                if count >= self.required_total:
                    lattice.add(candidate, count)
                    new_level.add(candidate)
            return

        candidate_tree = HashTree(candidates)
        original_counts: dict[Itemset, int] = {candidate: 0 for candidate in candidates}

        allowed_items: set[Item] | None = None
        if options.reduce_databases:
            allowed_items = set()
            for candidate in old_level:
                allowed_items.update(candidate)
            for candidate in candidates:
                allowed_items.update(candidate)

        reduced: list[Transaction] = []
        for transaction in self.working_original:
            for match in candidate_tree.subsets_in(transaction):
                original_counts[match] += 1
            if allowed_items is not None:
                trimmed = tuple(item for item in transaction if item in allowed_items)
                if len(trimmed) > size:
                    reduced.append(trimmed)
            else:
                reduced.append(transaction)
        self.database_scans += 1
        self.transactions_read += len(self.working_original)
        if options.reduce_databases:
            self.working_original = reduced

        for candidate in candidates:
            count = original_counts[candidate] + candidate_counts[candidate]
            if count >= self.required_total:
                lattice.add(candidate, count)
                new_level.add(candidate)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _contains_loser(candidate: Itemset, losers: set[Itemset]) -> bool:
        """True when some (k−1)-subset of *candidate* is a known loser (Lemma 3)."""
        for index in range(len(candidate)):
            if candidate[:index] + candidate[index + 1 :] in losers:
                return True
        return False


def _reduce_transaction(
    transaction: Transaction, matches: Sequence[Itemset], size: int
) -> Transaction:
    """``Reduce-db``: drop items that cannot reach any large (size+1)-itemset.

    An item can only be part of a large (size+1)-itemset contained in this
    transaction if it occurs in at least *size* of the size-*size* candidate
    itemsets matched inside the transaction.  Transactions left with fewer
    than ``size + 1`` items cannot contain any larger itemset and are dropped.
    """
    if not matches:
        return ()
    occurrence: dict[Item, int] = {}
    for match in matches:
        for item in match:
            occurrence[item] = occurrence.get(item, 0) + 1
    kept = tuple(item for item in transaction if occurrence.get(item, 0) >= size)
    if len(kept) <= size:
        return ()
    return kept


def update_with_fup(
    original: TransactionDatabase,
    previous: MiningResult | ItemsetLattice,
    increment: TransactionDatabase,
    min_support: float,
    options: FupOptions | None = None,
) -> MiningResult:
    """Convenience wrapper around :class:`FupUpdater`."""
    return FupUpdater(min_support, options=options).update(original, previous, increment)

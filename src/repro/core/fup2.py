"""Generalised incremental update with deletions (the Section 5 extension).

The 1996 paper evaluates insert-only increments but notes that "the cases of
deletion and modification of a transaction database" were also investigated —
work that later became the FUP2 algorithm (Cheung, Lee & Kao, 1997).  This
module provides that generalisation so the maintenance API is complete:
an update may simultaneously **insert** a batch ``db+`` (size ``d+``) and
**delete** a batch ``db−`` (size ``d−``) of existing transactions, and a
*modification* is simply a delete of the old version plus an insert of the
new one.

The same two ideas as FUP carry over:

* **Old large itemsets** keep their recorded count from ``DB``; only the two
  small delta batches need to be scanned to refresh the count:
  ``count' = count − count_db− + count_db+``.
* **New candidates** can be pruned before touching the big database.  Because
  an itemset ``X ∉ L_k`` had ``count_DB(X) ≤ req(D) − 1`` and deletions can
  only lower that, ``X`` can be large in the updated database only if
  ``count_db+(X) ≥ req(D') − (req(D) − 1)``.  When the database shrinks enough
  that this bound becomes non-positive the prune has no power and the updater
  falls back to counting the apriori-gen candidates directly (still correct,
  just less of a shortcut) — for level 1 that means enumerating the item
  universe from the original database scan that is needed anyway.

The updater's output is a :class:`~repro.mining.result.MiningResult` whose
lattice holds exact counts over ``(DB − db−) ∪ db+`` and can seed the next
update, exactly like FUP's.
"""

from __future__ import annotations

import time
from collections import Counter

from ..db.transaction_db import Transaction, TransactionDatabase
from ..errors import StaleStateError
from ..itemsets import Item, Itemset
from ..mining.backends import CountingBackend, MiningOptions, make_backend
from ..mining.candidates import apriori_gen
from ..mining.result import (
    ItemsetLattice,
    MiningResult,
    required_support_count,
    validate_min_support,
)

__all__ = ["Fup2Updater", "update_with_fup2"]


class Fup2Updater:
    """Incremental updater handling simultaneous insertions and deletions.

    Parameters
    ----------
    min_support:
        Relative minimum support ``s`` in ``(0, 1]``; must match the threshold
        used by the previous mining run.
    max_itemset_size:
        Optional cap on the itemset size explored.
    options:
        Counting-engine configuration (:class:`MiningOptions`); a ready
        :class:`~repro.mining.backends.CountingBackend` instance or a
        registry name is also accepted.  Default: the horizontal hash-tree
        scan.
    """

    algorithm_name = "fup2"

    def __init__(
        self,
        min_support: float,
        max_itemset_size: int | None = None,
        options: MiningOptions | CountingBackend | str | None = None,
    ) -> None:
        self.min_support = validate_min_support(min_support)
        if max_itemset_size is not None and max_itemset_size < 1:
            raise ValueError(f"max_itemset_size must be positive, got {max_itemset_size}")
        self.max_itemset_size = max_itemset_size
        if options is None:
            self.backend: CountingBackend = make_backend()
        elif isinstance(options, MiningOptions):
            self.backend = options.make_backend()
        else:
            self.backend = make_backend(options)

    # ------------------------------------------------------------------ #
    def update(
        self,
        original: TransactionDatabase,
        previous: MiningResult | ItemsetLattice,
        insertions: TransactionDatabase,
        deletions: TransactionDatabase,
    ) -> MiningResult:
        """Compute the large itemsets of ``(original − deletions) ∪ insertions``.

        ``deletions`` must be a sub-multiset of ``original``; every deleted
        transaction is assumed to actually exist in the original database
        (the :class:`~repro.core.maintenance.RuleMaintainer` guarantees this
        by removing them from its copy of the database).

        Raises
        ------
        StaleStateError
            If the previous result does not match the original database or the
            deletion batch is larger than the database it deletes from.
        """
        old = previous.lattice if isinstance(previous, MiningResult) else previous
        if old.database_size != len(original):
            raise StaleStateError(
                f"previous result was mined from {old.database_size} transactions but the "
                f"original database now holds {len(original)}"
            )
        if isinstance(previous, MiningResult) and previous.min_support != self.min_support:
            raise StaleStateError(
                f"previous result used min_support={previous.min_support} but this update "
                f"uses {self.min_support}"
            )
        if len(deletions) > len(original):
            raise StaleStateError(
                f"cannot delete {len(deletions)} transactions from a database of "
                f"{len(original)}"
            )

        start = time.perf_counter()
        run = _Fup2Run(
            min_support=self.min_support,
            max_itemset_size=self.max_itemset_size,
            original=original,
            old=old,
            insertions=insertions,
            deletions=deletions,
            backend=self.backend,
        )
        lattice = run.run()
        elapsed = time.perf_counter() - start
        return MiningResult(
            lattice=lattice,
            min_support=self.min_support,
            algorithm=self.algorithm_name,
            candidates_generated=sum(run.candidates_per_level.values()),
            candidates_per_level=dict(run.candidates_per_level),
            database_scans=run.database_scans,
            increment_scans=run.increment_scans,
            transactions_read=run.transactions_read,
            elapsed_seconds=elapsed,
        )


class _Fup2Run:
    """One execution of the generalised update (internal work object)."""

    def __init__(
        self,
        min_support: float,
        max_itemset_size: int | None,
        original: TransactionDatabase,
        old: ItemsetLattice,
        insertions: TransactionDatabase,
        deletions: TransactionDatabase,
        backend: CountingBackend | None = None,
    ) -> None:
        self.min_support = min_support
        self.max_itemset_size = max_itemset_size
        self.old = old
        self.original = original
        self.backend = backend if backend is not None else make_backend()
        # The delta batches stay database objects: every level's counting
        # pass hands the same object to the engine, so an index-caching
        # engine (vertical) builds each batch's index once and reuses it
        # across all levels of this update.
        self.insertions = insertions
        self.deletions = deletions
        self.original_size = len(original)
        self.new_size = self.original_size - len(self.deletions) + len(self.insertions)
        self.required_old = required_support_count(min_support, self.original_size)
        self.required_new = required_support_count(min_support, self.new_size)
        # Minimum count inside db+ a previously-small itemset needs before it
        # can possibly be large in the updated database (see module docstring).
        self.new_candidate_floor = self.required_new - max(self.required_old - 1, 0)

        self.candidates_per_level: dict[int, int] = {}
        self.database_scans = 0
        self.increment_scans = 0
        self.transactions_read = 0

    # ------------------------------------------------------------------ #
    def run(self) -> ItemsetLattice:
        lattice = ItemsetLattice(database_size=self.new_size)
        if self.new_size == 0:
            # Every transaction was deleted: nothing can be large.
            return lattice
        if not self.insertions and not self.deletions:
            for candidate, count in self.old.supports().items():
                lattice.add(candidate, count)
            return lattice

        new_level = self._level_one(lattice)
        size = 2
        while new_level and (self.max_itemset_size is None or size <= self.max_itemset_size):
            new_level = self._level_k(lattice, size, new_level)
            size += 1
        return lattice

    # ------------------------------------------------------------------ #
    def _delta_item_counts(self) -> tuple[Counter[Item], Counter[Item]]:
        """Count every item in db+ and db− (one scan of each delta batch).

        Counting through the engine primes an index-caching engine's
        per-batch index for the later per-level candidate passes.
        """
        inserted = self.backend.count_items(self.insertions) if len(self.insertions) else Counter()
        deleted = self.backend.count_items(self.deletions) if len(self.deletions) else Counter()
        self.increment_scans += 1 if len(self.insertions) else 0
        self.increment_scans += 1 if len(self.deletions) else 0
        self.transactions_read += len(self.insertions) + len(self.deletions)
        return inserted, deleted

    def _level_one(self, lattice: ItemsetLattice) -> set[Itemset]:
        inserted, deleted = self._delta_item_counts()
        old_level = self.old.level(1)

        new_level: set[Itemset] = set()
        for candidate in old_level:
            item = candidate[0]
            count = self.old.support_count(candidate) + inserted.get(item, 0) - deleted.get(item, 0)
            if count >= self.required_new:
                lattice.add(candidate, count)
                new_level.add(candidate)

        # Candidate items that were not large before.
        if self.new_candidate_floor >= 1:
            candidate_items = {
                item
                for item, count in inserted.items()
                if (item,) not in old_level and count >= self.new_candidate_floor
            }
        else:
            # The database shrank enough that items absent from db+ could have
            # become large; the original database must be consulted for the
            # full item universe, so no pre-pruning is possible.  The universe
            # comes from the database's delta-maintained cache — only a cold
            # cache costs (and accounts) a real full pass.
            universe_was_cold = not self.original.has_item_universe
            universe = self.original.items()
            if universe_was_cold:
                self.database_scans += 1
                self.transactions_read += self.original_size
            candidate_items = {
                item for item in universe | set(inserted) if (item,) not in old_level
            }
        self.candidates_per_level[1] = len(candidate_items)
        if not candidate_items:
            return new_level

        counted = self.backend.count_candidates(
            self.original, [(item,) for item in candidate_items]
        )
        original_counts: dict[Item, int] = {
            candidate[0]: count for candidate, count in counted.items()
        }
        self.database_scans += 1
        self.transactions_read += self.original_size

        for item in candidate_items:
            count = original_counts[item] + inserted.get(item, 0) - deleted.get(item, 0)
            if count >= self.required_new:
                candidate = (item,)
                lattice.add(candidate, count)
                new_level.add(candidate)
        return new_level

    # ------------------------------------------------------------------ #
    def _count_pool(
        self, transactions: "TransactionDatabase | list[Transaction]", pool: set[Itemset]
    ) -> dict[Itemset, int]:
        """Count every itemset of *pool* over *transactions* with the engine."""
        if not pool:
            return {}
        return self.backend.count_candidates(transactions, pool)

    def _level_k(
        self, lattice: ItemsetLattice, size: int, previous_new_level: set[Itemset]
    ) -> set[Itemset]:
        old_level = self.old.level(size)
        candidates = apriori_gen(previous_new_level) - old_level
        pool = old_level | candidates
        if not pool:
            self.candidates_per_level[size] = 0
            return set()

        inserted_counts = self._count_pool(self.insertions, pool)
        deleted_counts = self._count_pool(self.deletions, pool)
        if self.insertions:
            self.increment_scans += 1
            self.transactions_read += len(self.insertions)
        if self.deletions:
            self.increment_scans += 1
            self.transactions_read += len(self.deletions)

        new_level: set[Itemset] = set()
        for candidate in old_level:
            count = (
                self.old.support_count(candidate)
                + inserted_counts[candidate]
                - deleted_counts[candidate]
            )
            if count >= self.required_new:
                lattice.add(candidate, count)
                new_level.add(candidate)

        # Prune the brand-new candidates before the original-database scan.
        if self.new_candidate_floor >= 1:
            candidates = {
                candidate
                for candidate in candidates
                if inserted_counts[candidate] >= self.new_candidate_floor
            }
        self.candidates_per_level[size] = len(candidates)
        if not candidates:
            return new_level

        original_counts = self._count_pool(self.original, candidates)
        self.database_scans += 1
        self.transactions_read += self.original_size

        for candidate in candidates:
            count = (
                original_counts[candidate]
                + inserted_counts[candidate]
                - deleted_counts[candidate]
            )
            if count >= self.required_new:
                lattice.add(candidate, count)
                new_level.add(candidate)
        return new_level


def update_with_fup2(
    original: TransactionDatabase,
    previous: MiningResult | ItemsetLattice,
    insertions: TransactionDatabase,
    deletions: TransactionDatabase,
    min_support: float,
) -> MiningResult:
    """Convenience wrapper around :class:`Fup2Updater`."""
    return Fup2Updater(min_support).update(original, previous, insertions, deletions)

"""Durable, resumable maintenance sessions.

The paper's economics — O(d) per update batch instead of a re-mine — only pay
off if the maintained state *survives between batches*.  A
:class:`MaintenanceSession` makes a :class:`~repro.core.maintenance.RuleMaintainer`
durable: it owns an on-disk session directory and guarantees that a process
crash at any point loses at most the batch that was mid-flight, recovering by
strict replay of a journal tail over the last snapshot.

Directory layout
----------------

``session.json``
    The manifest: session configuration (thresholds, miner, counting
    backend) plus the current checkpoint sequence number.  Updated
    atomically (write-to-temp + rename) only at checkpoint time.
``snapshot-<seq>.bin``
    Binary database snapshot (the :mod:`repro.db.store` format) as of
    checkpoint ``seq`` — the number of batches folded into it.
``state-<seq>.json``
    The itemset state (lattice + support counts) at the same checkpoint, in
    the same JSON format the CLI's ``mine --state`` writes.  Rules are not
    persisted: they regenerate deterministically from the lattice.
``journal.jsonl``
    The append-only update-log journal: one JSON record per batch
    (``{"seq": n, "label": ..., "insertions": [...], "deletions": [...]}``),
    written **and fsynced before the batch is applied** in memory.  Batches
    arriving through the streaming intake additionally carry their event
    ``"keys"``, so the journal doubles as the recovery source for the
    intake ledger.
``ledger.jsonl``
    Present when an :class:`~repro.ingest.ledger.IntakeLedger` is attached
    (``repro ingest`` / ``repro pipeline``): the durable seen-set of
    client-supplied event keys that makes at-least-once delivery
    effectively-once.  Appended and fsynced *after* the batch commits,
    compacted alongside every checkpoint.

Crash-recovery protocol
-----------------------

* ``apply`` validates the batch (phantom deletions are refused in O(d),
  before anything touches disk), journals it, then applies it.  If the
  process dies between journal and apply, :meth:`MaintenanceSession.open`
  replays the journaled batch — maintenance is deterministic, so the
  recovered state is bit-for-bit what an uninterrupted run would have
  produced.  Should the updater still refuse a journaled batch, its record
  is truncated away so recovery never replays a batch that was never
  applied.
* Replay is **strict**: every journaled deletion must name a transaction
  present at that point of the replay
  (:meth:`~repro.db.transaction_db.TransactionDatabase.remove_batch` with
  ``strict=True``), so a journal replayed over the wrong snapshot fails
  loudly instead of silently desyncing.
* A torn trailing journal line (the crash happened mid-append) is discarded
  on open — by the write-ahead ordering that batch was never applied.
* ``checkpoint`` writes ``snapshot-<seq>``/``state-<seq>`` beside the old
  pair, atomically swings the manifest's ``checkpoint_seq`` to the new pair,
  and only then truncates the journal and deletes the old pair.  A crash
  anywhere in that sequence leaves either the old checkpoint plus a full
  journal or the new checkpoint plus an ignorable journal prefix — never a
  half-updated state.

* With a ledger attached the commit order is journal → apply → ledger: a
  crash between journal and ledger loses only *dedup information* for a
  batch that **was** applied, never an applied batch's data.  Intake
  recovery reconciles the two on open — journaled keys missing from the
  ledger are re-committed — so a producer replaying its whole stream after
  any crash converges to exactly the clean run's state
  (``docs/ingestion.md`` has the full crash matrix).

Checkpoints also run automatically every ``checkpoint_interval`` applied
batches, compacting the journal so recovery time stays bounded.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from ..db.store import load_database, write_snapshot
from ..db.transaction_db import Transaction, TransactionDatabase
from ..db.update import UpdateBatch
from ..errors import ReproError, StorageError
from ..faults import crash_point
from ..itemsets import Item
from ..mining.result import ItemsetLattice, MiningResult
from ..mining.rules import AssociationRule
from .maintenance import MaintenanceReport, MinerName, RuleMaintainer
from .options import FupOptions
from .policy import MaintenancePolicy, SkipEstimator, SkipStats, policy_from_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from ..ingest.ledger import IntakeLedger

__all__ = [
    "MaintenanceSession",
    "SessionStatus",
    "read_session_state",
    "save_state",
    "load_state",
    "DEFAULT_CHECKPOINT_INTERVAL",
]

MANIFEST_NAME = "session.json"
JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = "session.lock"
_MANIFEST_FORMAT = "repro-maintenance-session"
#: Batches applied between automatic journal compactions.
DEFAULT_CHECKPOINT_INTERVAL = 16


# --------------------------------------------------------------------- #
# Itemset-state (JSON) persistence
# --------------------------------------------------------------------- #
def save_state(result: MiningResult, path: str | Path) -> None:
    """Write a mining result's lattice to a JSON state file."""
    payload = {
        "format": "repro-itemset-state",
        "version": 1,
        "algorithm": result.algorithm,
        "min_support": result.min_support,
        "database_size": result.database_size,
        "itemsets": [
            {"items": list(candidate), "count": count}
            for candidate, count in sorted(result.lattice.supports().items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="ascii")


def load_state(path: str | Path) -> tuple[ItemsetLattice, float]:
    """Read a JSON state file back into a lattice plus its minimum support."""
    payload = json.loads(Path(path).read_text(encoding="ascii"))
    if payload.get("format") != "repro-itemset-state":
        raise ReproError(f"{path} is not a repro itemset state file")
    lattice = ItemsetLattice(database_size=int(payload["database_size"]))
    for entry in payload["itemsets"]:
        lattice.add(tuple(entry["items"]), int(entry["count"]))
    return lattice, float(payload["min_support"])


# --------------------------------------------------------------------- #
# Low-level durable-write helpers
# --------------------------------------------------------------------- #
def _fsync_file(path: Path) -> None:
    descriptor = os.open(path, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def _fsync_directory(path: Path) -> None:
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - filesystem without dir fsync
        pass
    finally:
        os.close(descriptor)


def _atomic_replace(temporary: Path, final: Path) -> None:
    """Publish *temporary* at *final* so readers see old-or-new, never half."""
    _fsync_file(temporary)
    os.replace(temporary, final)
    _fsync_directory(final.parent)


def _acquire_lock(directory: Path) -> IO[str] | None:
    """Take the session directory's exclusive advisory lock.

    Two live writers would interleave journal sequence numbers and sweep each
    other's snapshots, so a second ``create``/``open`` of the same directory
    is refused while the first session object is alive.  ``flock`` locks die
    with the process, which is exactly the crash semantics the journal
    expects: a killed process leaves no stale lock to clean up.  Read-only
    access (:meth:`MaintenanceSession.peek`) does not lock.
    """
    handle = (directory / LOCK_NAME).open("a")
    if fcntl is None:  # pragma: no cover - non-POSIX platform
        return handle
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise StorageError(
            f"session {directory} is already in use by another process "
            f"(close it or wait for it to exit)"
        ) from None
    return handle


class _Journal:
    """The append-only batch journal (write-ahead log of the session)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        try:
            self._handle = path.open("a", encoding="ascii")
        except OSError as exc:
            raise StorageError(f"cannot open journal {path}: {exc}") from exc

    def append(self, record: dict) -> int:
        """Durably append one record; return the offset it was written at."""
        handle = self._handle
        offset = handle.tell()
        try:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError(f"cannot append to journal {self.path}: {exc}") from exc
        return offset

    def truncate_to(self, offset: int) -> None:
        """Drop everything at or after *offset* (scrubs a refused batch)."""
        handle = self._handle
        handle.flush()
        handle.truncate(offset)
        handle.seek(offset)
        os.fsync(handle.fileno())

    def clear(self) -> None:
        self.truncate_to(0)

    def tear(self, record: dict) -> None:
        """Write a *torn* record: half the line, no newline, no fsync.

        Fault-injection seam only (the crash tests simulate a power loss
        mid-append); production code never calls this.  The bytes are
        flushed so the crash that follows actually leaves them on disk,
        but never fsynced — exactly what an interrupted :meth:`append`
        can leave behind.
        """
        line = json.dumps(record, separators=(",", ":"))
        self._handle.write(line[: max(1, len(line) // 2)])
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def _sweep_stale_files(directory: Path, keep_seq: int) -> None:
    """Delete checkpoint leftovers other than the ``keep_seq`` pair.

    A crash inside a checkpoint can leave ``*.tmp`` partials or a fully
    written snapshot/state pair the manifest never came to reference; both
    are garbage once a manifest commit (or a recovery reading one) has
    decided which pair is live.
    """
    for stale in directory.glob("*.tmp"):
        stale.unlink(missing_ok=True)
    for stale in directory.glob("snapshot-*.bin"):
        if stale.name != f"snapshot-{keep_seq}.bin":
            stale.unlink(missing_ok=True)
    for stale in directory.glob("state-*.json"):
        if stale.name != f"state-{keep_seq}.json":
            stale.unlink(missing_ok=True)


def _read_journal(path: Path) -> tuple[list[dict], int]:
    """Parse the journal; return (records, byte length of the valid prefix).

    A corrupt or torn **final** line is excluded from the valid prefix (the
    crash happened mid-append, so by the write-ahead ordering that batch was
    never applied); corruption anywhere before the final line means the file
    itself is damaged and raises :class:`StorageError`.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    except OSError as exc:
        raise StorageError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict] = []
    offset = 0
    total = len(data)
    while offset < total:
        newline = data.find(b"\n", offset)
        if newline == -1:
            break  # torn trailing line: no newline ever made it to disk
        line = data[offset:newline]
        record: dict | None = None
        try:
            parsed = json.loads(line.decode("ascii"))
            if isinstance(parsed, dict) and "seq" in parsed:
                record = parsed
        except (ValueError, UnicodeDecodeError):
            record = None
        if record is None:
            if newline + 1 < total:
                raise StorageError(
                    f"{path}: corrupted journal record at byte {offset} "
                    f"followed by further records; refusing to guess"
                )
            break  # corrupt final line: treat as torn
        records.append(record)
        offset = newline + 1
    return records, offset


#: Leading bytes of a journal record — every record is written with ``seq``
#: as its first key, so the pending count never needs the full payload.
_SEQ_PREFIX = re.compile(rb'^\{"seq":\s*(\d+)')


def _count_pending_batches(path: Path, checkpoint_seq: int) -> int:
    """Count journal records past *checkpoint_seq* without parsing payloads.

    The read-only status path: only the leading ``"seq"`` field of each
    complete line is examined (falling back to a full parse for hand-edited
    records), so ``session status`` stays cheap however large the journaled
    batches are.  The corruption rules mirror :func:`_read_journal`: a torn
    or corrupt **final** line is ignored, damage before the final line
    raises, so ``status`` never reports a healthy count for a journal that
    recovery will refuse.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return 0
    except OSError as exc:
        raise StorageError(f"cannot read journal {path}: {exc}") from exc
    lines = data.split(b"\n")
    complete = lines[:-1]  # the final element is b"" or a torn trailing line
    pending = 0
    for index, line in enumerate(complete):
        match = _SEQ_PREFIX.match(line)
        if match is not None:
            seq = int(match.group(1))
        else:
            try:
                seq = int(json.loads(line.decode("ascii"))["seq"])
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                if index + 1 < len(complete):
                    raise StorageError(
                        f"{path}: corrupted journal record on line {index + 1} "
                        f"followed by further records; refusing to guess"
                    ) from None
                break  # corrupt final line: treat as torn
        if seq > checkpoint_seq:
            pending += 1
    return pending


# --------------------------------------------------------------------- #
# Status
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SessionStatus:
    """A point-in-time description of a session (live or read from disk)."""

    directory: str
    checkpoint_seq: int
    applied_seq: int
    database_size: int
    itemsets: int
    rules: int
    min_support: float
    min_confidence: float
    miner: str
    backend: str
    shards: int
    executor: str
    workers: int | None
    kernel: str | None
    checkpoint_interval: int
    policy: str = "unbounded"
    #: Cumulative skip-estimator counters; ``None`` when ``--skip-check`` is off.
    skip: dict[str, int] | None = None

    @property
    def pending_batches(self) -> int:
        """Journaled batches not yet folded into a snapshot."""
        return self.applied_seq - self.checkpoint_seq

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary form used by the CLI and the harness reports."""
        payload: dict[str, object] = {
            "directory": self.directory,
            "checkpoint_seq": self.checkpoint_seq,
            "applied_seq": self.applied_seq,
            "pending_batches": self.pending_batches,
            "database_size": self.database_size,
            "itemsets": self.itemsets,
            "rules": self.rules,
            "min_support": self.min_support,
            "min_confidence": self.min_confidence,
            "miner": self.miner,
            "backend": self.backend,
            "shards": self.shards,
            "executor": self.executor,
            "workers": self.workers,
            "kernel": self.kernel,
            "checkpoint_interval": self.checkpoint_interval,
            "policy": self.policy,
        }
        if self.skip is not None:
            for key, value in self.skip.items():
                payload[f"skip_{key}"] = value
        return payload


# --------------------------------------------------------------------- #
# The session
# --------------------------------------------------------------------- #
class MaintenanceSession:
    """A :class:`RuleMaintainer` bound to a durable on-disk session directory.

    Construct through :meth:`create` (mine a fresh session) or :meth:`open`
    (recover an existing one); the constructor itself is internal.  The
    session is also a context manager — leaving the ``with`` block closes the
    journal handle (state is already durable at every point, so there is no
    flush-on-close step).
    """

    def __init__(
        self,
        directory: Path,
        maintainer: RuleMaintainer,
        journal: _Journal,
        checkpoint_seq: int,
        applied_seq: int,
        checkpoint_interval: int,
        lock: IO[str] | None = None,
    ) -> None:
        self._directory = directory
        self._maintainer = maintainer
        self._journal = journal
        self._checkpoint_seq = checkpoint_seq
        self._applied_seq = applied_seq
        self._checkpoint_interval = checkpoint_interval
        self._lock = lock
        self._ledger: "IntakeLedger | None" = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        directory: str | Path,
        database: TransactionDatabase | Iterable[Iterable[Item]],
        *,
        min_support: float,
        min_confidence: float,
        miner: MinerName = "apriori",
        fup_options: FupOptions | None = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        policy: MaintenancePolicy | None = None,
        skip_check: bool = False,
    ) -> "MaintenanceSession":
        """Mine *database* and persist the result as a new session.

        The directory is created if needed; it must not already hold a
        session manifest.  *policy* selects the maintenance policy every
        batch is planned through (persisted in the manifest, restored on
        recovery; default unbounded); *skip_check* enables the DELI-style
        skip estimator for insert-only batches.
        """
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        lock = _acquire_lock(directory)
        session = None
        try:
            # Checked under the lock, so two racing creates cannot both pass
            # and overwrite each other's freshly written session.
            if (directory / MANIFEST_NAME).exists():
                raise StorageError(f"{directory} already holds a maintenance session")
            maintainer = RuleMaintainer(
                min_support,
                min_confidence,
                miner=miner,
                fup_options=fup_options,
                policy=policy,
                skip_estimator=SkipEstimator() if skip_check else None,
            )
            maintainer.initialise(database)
            journal_path = directory / JOURNAL_NAME
            journal_path.touch()
            session = cls(
                directory=directory,
                maintainer=maintainer,
                journal=_Journal(journal_path),
                checkpoint_seq=0,
                applied_seq=0,
                checkpoint_interval=checkpoint_interval,
                lock=lock,
            )
            session._write_checkpoint(0)
            return session
        except BaseException:
            # Release the handles (and the flock) so a caller that handles
            # the failure can retry against the same directory.
            if session is not None:
                session.close()
            elif lock is not None:
                lock.close()
            raise

    @classmethod
    def open(cls, directory: str | Path) -> "MaintenanceSession":
        """Recover a session: load the last snapshot, strictly replay the journal tail.

        Raises
        ------
        StorageError
            If the directory holds no session, or its files are corrupted.
        StaleStateError
            If the journal does not match the snapshot it is replayed over
            (e.g. a journaled deletion names a transaction the snapshot does
            not contain) — the loud-failure guarantee.
        """
        directory = Path(directory)
        # The lock comes first: reading the manifest outside it would race a
        # live writer's checkpoint and could sweep the snapshot pair its
        # manifest rename just committed.
        try:
            lock = _acquire_lock(directory)
        except FileNotFoundError:
            raise StorageError(f"{directory} holds no maintenance session") from None
        try:
            manifest = cls._read_manifest(directory)
            return cls._open_locked(directory, manifest, lock)
        except BaseException:
            if lock is not None:
                lock.close()
            raise

    @classmethod
    def _recover_maintainer(
        cls, directory: Path, manifest: dict
    ) -> tuple[RuleMaintainer, int, int]:
        """Rebuild the in-memory state a session's files describe (read-only).

        Loads the checkpoint snapshot pair, restores a maintainer from it and
        replays the journal tail over it — without writing anything, so both
        :meth:`open` (which holds the lock and then truncates any torn tail)
        and :func:`read_session_state` (which deliberately takes no lock)
        share one recovery semantics.  Returns ``(maintainer, applied_seq,
        valid_journal_length)``.
        """
        checkpoint_seq = int(manifest["checkpoint_seq"])
        snapshot_path = directory / f"snapshot-{checkpoint_seq}.bin"
        state_path = directory / f"state-{checkpoint_seq}.json"
        # Sessions checkpointed before format v2 hold a v1 snapshot here;
        # load_database sniffs the magic, so both open transparently — a v2
        # file memory-maps in O(1) with its vertical index wrapped under the
        # session's configured kernel.
        kernel = manifest.get("kernel") or None
        database = load_database(snapshot_path, binary=True, kernel=kernel)
        # Set the name explicitly: load_database's filename-stem fallback
        # would otherwise rename an unnamed database to "snapshot-<seq>".
        database.name = str(manifest.get("name", ""))
        lattice, state_min_support = load_state(state_path)
        if state_min_support != float(manifest["min_support"]):
            raise StorageError(
                f"{state_path} was written at min_support={state_min_support} but the "
                f"manifest records {manifest['min_support']}"
            )
        # Pre-policy manifests carry no "policy" entry: policy_from_dict
        # restores the unbounded default, which is what those sessions were
        # running all along.
        skip_estimator = None
        if manifest.get("skip_check"):
            skip_estimator = SkipEstimator()
            stats_payload = manifest.get("skip_stats")
            if stats_payload:
                skip_estimator.stats = SkipStats.from_dict(stats_payload)
        maintainer = RuleMaintainer(
            float(manifest["min_support"]),
            float(manifest["min_confidence"]),
            miner=manifest["miner"],
            policy=policy_from_dict(manifest.get("policy")),
            skip_estimator=skip_estimator,
            fup_options=FupOptions(
                backend=str(manifest["backend"]),
                shards=int(manifest["shards"]),
                # Sessions written before the executor landed default to the
                # thread path, which is what they were running all along.
                executor=str(manifest.get("executor", "threads")),
                workers=(
                    int(manifest["workers"]) if manifest.get("workers") else None
                ),
                # Pre-kernel manifests carry no entry: default kernel.
                kernel=kernel,
            ),
        )
        # Seeding the sequence with the checkpoint seq makes the maintainer's
        # batch counter equal the journal sequence number at every point of
        # the replay — serving snapshots are stamped with it.
        maintainer.restore(database, lattice, sequence=checkpoint_seq)

        journal_path = directory / JOURNAL_NAME
        records, valid_length = _read_journal(journal_path)
        applied_seq = checkpoint_seq
        for record in records:
            seq = int(record["seq"])
            if seq <= checkpoint_seq:
                # Leftover from a checkpoint whose journal truncation was
                # interrupted: already folded into the snapshot, skip.
                continue
            if seq != applied_seq + 1:
                raise StorageError(
                    f"{journal_path}: journal jumps from batch {applied_seq} to "
                    f"{seq}; the file is damaged"
                )
            maintainer.apply(UpdateBatch.from_dict(record))
            applied_seq = seq
        maintainer.sequence = applied_seq
        return maintainer, applied_seq, valid_length

    @classmethod
    def _open_locked(cls, directory: Path, manifest: dict, lock: IO[str] | None):
        checkpoint_seq = int(manifest["checkpoint_seq"])
        # The manifest names the live snapshot pair; anything else in the
        # directory is debris from a checkpoint that crashed mid-write.
        _sweep_stale_files(directory, keep_seq=checkpoint_seq)
        maintainer, applied_seq, valid_length = cls._recover_maintainer(
            directory, manifest
        )
        journal_path = directory / JOURNAL_NAME
        torn_tail = (
            journal_path.exists() and journal_path.stat().st_size > valid_length
        )
        journal = _Journal(journal_path)
        if torn_tail:
            # Drop the torn trailing line before appending new records —
            # through the journal's own audited truncate, which also fsyncs
            # so a crash right here cannot resurrect the torn bytes.
            journal.truncate_to(valid_length)
        return cls(
            directory=directory,
            maintainer=maintainer,
            journal=journal,
            checkpoint_seq=checkpoint_seq,
            applied_seq=applied_seq,
            checkpoint_interval=int(manifest["checkpoint_interval"]),
            lock=lock,
        )

    def close(self) -> None:
        """Release the directory lock and close the journal handle.

        All state is already durable at every point, so there is no
        flush-on-close step.
        """
        if not self._closed:
            self._journal.close()
            if self._ledger is not None:
                self._ledger.close()
            if self._lock is not None:
                self._lock.close()  # closing the fd releases the flock
            self._maintainer.close()  # release any engine worker processes
            self._closed = True

    def __enter__(self) -> "MaintenanceSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def maintainer(self) -> RuleMaintainer:
        return self._maintainer

    @property
    def database(self) -> TransactionDatabase:
        return self._maintainer.database

    @property
    def result(self) -> MiningResult:
        return self._maintainer.result

    @property
    def rules(self) -> list[AssociationRule]:
        return self._maintainer.rules

    @property
    def applied_seq(self) -> int:
        """Total batches applied over the session's lifetime."""
        return self._applied_seq

    @property
    def checkpoint_seq(self) -> int:
        """Batches folded into the current on-disk snapshot."""
        return self._checkpoint_seq

    @property
    def pending_batches(self) -> int:
        """Journaled batches a recovery would replay."""
        return self._applied_seq - self._checkpoint_seq

    def status(self) -> SessionStatus:
        """Status of the live session."""
        maintainer = self._maintainer
        return SessionStatus(
            directory=str(self._directory),
            checkpoint_seq=self._checkpoint_seq,
            applied_seq=self._applied_seq,
            database_size=len(maintainer.database),
            itemsets=len(maintainer.result.lattice),
            rules=len(maintainer.rules),
            min_support=maintainer.min_support,
            min_confidence=maintainer.min_confidence,
            miner=maintainer.miner_name,
            backend=maintainer.fup_options.backend,
            shards=maintainer.fup_options.shards,
            executor=maintainer.fup_options.executor,
            workers=maintainer.fup_options.workers,
            kernel=maintainer.fup_options.kernel,
            checkpoint_interval=self._checkpoint_interval,
            policy=maintainer.policy.describe(),
            skip=(
                maintainer.skip_estimator.stats.as_dict()
                if maintainer.skip_estimator is not None
                else None
            ),
        )

    @classmethod
    def peek(cls, directory: str | Path) -> SessionStatus:
        """Read a session's status from disk without replaying its journal.

        ``database_size``/``itemsets``/``rules`` describe the last
        *checkpoint* (the journal tail has not been applied); ``applied_seq``
        counts checkpointed plus journaled batches.
        """
        directory = Path(directory)
        manifest = cls._read_manifest(directory)
        checkpoint_seq = int(manifest["checkpoint_seq"])
        pending = _count_pending_batches(directory / JOURNAL_NAME, checkpoint_seq)
        return SessionStatus(
            directory=str(directory),
            checkpoint_seq=checkpoint_seq,
            applied_seq=checkpoint_seq + pending,
            database_size=int(manifest["database_size"]),
            itemsets=int(manifest["itemsets"]),
            rules=int(manifest["rules"]),
            min_support=float(manifest["min_support"]),
            min_confidence=float(manifest["min_confidence"]),
            miner=str(manifest["miner"]),
            backend=str(manifest["backend"]),
            shards=int(manifest["shards"]),
            executor=str(manifest.get("executor", "threads")),
            workers=(int(manifest["workers"]) if manifest.get("workers") else None),
            kernel=manifest.get("kernel") or None,
            checkpoint_interval=int(manifest["checkpoint_interval"]),
            policy=policy_from_dict(manifest.get("policy")).describe(),
            skip=(
                SkipStats.from_dict(manifest.get("skip_stats") or {}).as_dict()
                if manifest.get("skip_check")
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    # Applying updates
    # ------------------------------------------------------------------ #
    def attach_ledger(self, ledger: "IntakeLedger") -> None:
        """Bind an intake ledger so :meth:`apply` commits it with each batch.

        The ingest hook: once attached, every applied batch's event keys are
        recorded in the journal record (``"keys"``) *and* committed to the
        ledger immediately after the in-memory apply — so a crash between
        the two is recovered by the ledger's journal reconciliation, never
        by double-counting.  The session takes over the ledger's lifetime
        (:meth:`close` closes it, :meth:`checkpoint` compacts it).
        """
        if self._ledger is not None and self._ledger is not ledger:
            raise StorageError(
                f"session {self._directory} already has an intake ledger attached"
            )
        self._ledger = ledger

    def apply(
        self,
        batch: UpdateBatch,
        *,
        keys: Iterable[str] = (),
        events: int = 0,
    ) -> MaintenanceReport:
        """Journal *batch*, apply it, auto-checkpoint on the configured cadence.

        The journal record is durable before the in-memory state changes, so
        a crash at any point during this call is recovered by replay.  If the
        maintainer refuses the batch the record is scrubbed from the journal
        and the exception propagates with the session unchanged.  Empty
        batches are never journaled: they change nothing, so recording them
        would only grow the journal and burn sequence numbers on no-ops.

        *keys* and *events* are the intake protocol (see
        :mod:`repro.ingest`): the event keys this batch consumed and the raw
        event count behind them (duplicates included).  With a ledger
        attached they are journaled alongside the batch and committed to the
        ledger right after the apply.  An *empty* batch with keys/events — a
        micro-batch that deduplicated down to nothing — still advances the
        ledger's high-water mark, without journaling and without burning a
        sequence number; skipping that commit would make a replaying
        producer re-offer the same duplicates forever.
        """
        if self._closed:
            raise StorageError(f"session {self._directory} is closed")
        keys = tuple(keys)
        if batch.is_empty:
            report = self._maintainer.apply(batch)
            if self._ledger is not None and (keys or events):
                self._ledger.commit(self._applied_seq, keys, events)
            return report
        # Refuse an unapplyable batch BEFORE journaling it: a crash between
        # the fsynced append and the refusal would otherwise leave a record
        # recovery can never replay, bricking the session.
        self._maintainer.validate_batch(batch)
        seq = self._applied_seq + 1
        record = {"seq": seq, **batch.as_dict()}
        if keys:
            record["keys"] = list(keys)
        offset = self._journal.append(record)
        # Eviction-time crash seam: the journal holds the *original* batch,
        # the policy has not yet planned or applied it.  Recovery must replay
        # the record through the restored policy and re-synthesise the exact
        # same evictions — the crash tests pin that.
        crash_point("after-journal-before-apply")
        sequence_before = self._maintainer.sequence
        try:
            report = self._maintainer.apply(batch)
        except Exception:
            if self._maintainer.sequence != sequence_before:
                # The state change committed — the failure came from a
                # post-commit publication subscriber.  The journal record
                # matches the in-memory state, so keep both in step and let
                # the subscriber's error propagate; scrubbing here would
                # desync the journal from a database that DID change.
                self._applied_seq = seq
                raise
            self._journal.truncate_to(offset)
            raise
        self._applied_seq = seq
        crash_point("after-journal-before-ledger")
        if self._ledger is not None and (keys or events):
            self._ledger.commit(seq, keys, events)
            crash_point("after-ledger-before-checkpoint")
        if self._applied_seq - self._checkpoint_seq >= self._checkpoint_interval:
            self.checkpoint()
        return report

    def add_transactions(
        self, transactions: Iterable[Iterable[Item]], label: str = ""
    ) -> MaintenanceReport:
        """Convenience wrapper: apply an insert-only batch."""
        return self.apply(UpdateBatch.from_iterables(insertions=transactions, label=label))

    def remove_transactions(
        self, transactions: Iterable[Iterable[Item]], label: str = ""
    ) -> MaintenanceReport:
        """Convenience wrapper: apply a delete-only batch."""
        return self.apply(UpdateBatch.from_iterables(deletions=transactions, label=label))

    # ------------------------------------------------------------------ #
    # Policy management
    # ------------------------------------------------------------------ #
    def set_policy(
        self,
        policy: MaintenancePolicy | None = None,
        *,
        skip_check: bool | None = None,
    ) -> MaintenanceReport | None:
        """Durably switch the maintenance policy and/or the skip pre-check.

        Arguments left at ``None`` keep their current setting.  The switch
        checkpoints first (so every journaled record was planned under one
        policy), persists the new policy in the manifest, then applies the
        policy's admission trim — a bounded policy adopting an oversized
        database evicts down to its bound through a normal journaled batch
        (label ``"policy-switch"``), whose report is returned.  A crash
        between the manifest commit and the trim leaves the new policy
        active with the trim outstanding; the next applied batch's plan
        re-evicts to the bound, so the session self-heals.
        """
        if self._closed:
            raise StorageError(f"session {self._directory} is closed")
        if policy is None and skip_check is None:
            return None
        maintainer = self._maintainer
        self.checkpoint()
        if skip_check is not None:
            if skip_check:
                if maintainer.skip_estimator is None:
                    maintainer.skip_estimator = SkipEstimator()
            else:
                maintainer.skip_estimator = None
        trim: tuple[Transaction, ...] = ()
        if policy is not None:
            maintainer.policy = policy
            plan = policy.admit(maintainer.database)
            # Install the admission bookkeeping (e.g. decay age segments)
            # before the manifest write persists the policy's state.
            policy.commit(plan)
            trim = plan.batch.deletions
        self._write_manifest(self._checkpoint_seq)
        if trim:
            return self.apply(UpdateBatch(deletions=trim, label="policy-switch"))
        return None

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> int:
        """Compact the journal into a fresh snapshot; return the new checkpoint seq."""
        if self._closed:
            raise StorageError(f"session {self._directory} is closed")
        if self._applied_seq == self._checkpoint_seq:
            return self._checkpoint_seq
        self._write_checkpoint(self._applied_seq)
        return self._checkpoint_seq

    def _write_checkpoint(self, seq: int) -> None:
        directory = self._directory
        snapshot_path = directory / f"snapshot-{seq}.bin"
        state_path = directory / f"state-{seq}.json"

        snapshot_tmp = snapshot_path.with_suffix(".bin.tmp")
        # Format v2 with the lane section always present: recovery and the
        # serving tier then reopen the snapshot via mmap in O(1) instead of
        # parsing it, whatever backend the session counts with.
        write_snapshot(self._maintainer.database, snapshot_tmp, include_lanes=True)
        _atomic_replace(snapshot_tmp, snapshot_path)

        state_tmp = state_path.with_suffix(".json.tmp")
        save_state(self._maintainer.result, state_tmp)
        _atomic_replace(state_tmp, state_path)

        # The manifest rename is the commit point: once it lands, recovery
        # reads the new snapshot pair and ignores journal records <= seq.
        self._write_manifest(seq)
        self._checkpoint_seq = seq
        self._journal.clear()
        # The maintainer's in-memory update log mirrors the journal tail;
        # compact it too, or a long-lived session retains every batch ever
        # applied.
        self._maintainer.update_log.clear()
        _sweep_stale_files(directory, keep_seq=seq)
        if self._ledger is not None:
            # The checkpoint bounded the journal; bound the ledger with it.
            # Compaction is an optimisation (the ledger's records are
            # idempotent), so a crash before this point costs nothing.
            self._ledger.compact()

    def _write_manifest(self, checkpoint_seq: int) -> None:
        maintainer = self._maintainer
        payload = {
            "format": _MANIFEST_FORMAT,
            "version": 1,
            "name": maintainer.database.name,
            "min_support": maintainer.min_support,
            "min_confidence": maintainer.min_confidence,
            "miner": maintainer.miner_name,
            "backend": maintainer.fup_options.backend,
            "shards": maintainer.fup_options.shards,
            "executor": maintainer.fup_options.executor,
            "workers": maintainer.fup_options.workers,
            "kernel": maintainer.fup_options.kernel,
            "checkpoint_interval": self._checkpoint_interval,
            "checkpoint_seq": checkpoint_seq,
            "database_size": len(maintainer.database),
            "itemsets": len(maintainer.result.lattice),
            "rules": len(maintainer.rules),
            # Policy type + params + mutable state (e.g. decay age segments):
            # recovery restores it and replays the journal tail through it,
            # re-planning each record's evictions deterministically.
            "policy": maintainer.policy.as_dict(),
            "skip_check": maintainer.skip_estimator is not None,
        }
        if maintainer.skip_estimator is not None:
            payload["skip_stats"] = maintainer.skip_estimator.stats.as_dict()
        manifest_path = self._directory / MANIFEST_NAME
        manifest_tmp = manifest_path.with_suffix(".json.tmp")
        manifest_tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="ascii")
        _atomic_replace(manifest_tmp, manifest_path)

    @staticmethod
    def _read_manifest(directory: Path) -> dict:
        manifest_path = directory / MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text(encoding="ascii"))
        except FileNotFoundError:
            raise StorageError(f"{directory} holds no maintenance session") from None
        except OSError as exc:
            raise StorageError(f"cannot read {manifest_path}: {exc}") from exc
        except ValueError as exc:
            raise StorageError(f"{manifest_path} is not valid JSON: {exc}") from exc
        if payload.get("format") != _MANIFEST_FORMAT:
            raise StorageError(f"{manifest_path} is not a maintenance-session manifest")
        return payload


def read_session_state(directory: str | Path) -> RuleMaintainer:
    """Rebuild a session's current state **without taking the session lock**.

    The serving path: load the checkpoint snapshot, replay the journal tail
    in memory, and return the resulting :class:`RuleMaintainer` — the files
    are only read, never truncated, swept or locked, so a live writer is
    never blocked (and never blocks the reader).  The returned maintainer's
    :attr:`~RuleMaintainer.sequence` equals the session's ``applied_seq``.

    Because no lock is taken, a checkpoint that commits *while the files are
    being read* can delete the snapshot pair mid-read; that surfaces as a
    :class:`~repro.errors.StorageError` (or ``StaleStateError`` if a swept
    journal is replayed over the newer snapshot).  Callers poll — catch the
    error, keep the previous state, and retry on the next tick; the files on
    disk are untouched either way.
    """
    directory = Path(directory)
    manifest = MaintenanceSession._read_manifest(directory)
    maintainer, _, _ = MaintenanceSession._recover_maintainer(directory, manifest)
    return maintainer

"""Feature switches for the FUP algorithm.

Every optimisation the paper describes can be toggled independently so that
the ablation benchmark (``benchmarks/test_ablation_fup_features.py``) can
quantify what each one contributes.  The defaults enable everything, which is
the configuration the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mining.backends import (
    BACKEND_NAMES,
    DEFAULT_EXECUTOR,
    DEFAULT_SHARDS,
    EXECUTOR_NAMES,
    KERNEL_NAMES,
    HorizontalBackend,
    MiningOptions,
)

__all__ = ["FupOptions"]


@dataclass(frozen=True)
class FupOptions:
    """Configuration of the FUP updater.

    Attributes
    ----------
    prune_candidates_by_increment:
        Apply Lemmas 2 and 5: drop a candidate whose support inside the
        increment is below ``s × d`` before scanning the original database.
        This is FUP's central optimisation.
    filter_losers_by_subsets:
        Apply Lemma 3: remove an old large k-itemset from consideration as
        soon as one of its (k−1)-subsets is known to be a loser, without
        counting it against the increment.
    reduce_databases:
        Apply the Section 3.4 size reductions: the ``P``-set item removal
        during the first original-database scan, ``Reduce-db`` trimming of the
        increment and ``Reduce-DB`` trimming of the original database at later
        iterations.
    use_hash_filter:
        Integrate DHP's direct-hashing technique to further prune the size-2
        candidate set (Section 3.4, last paragraph).
    hash_table_size:
        Bucket count of the direct-hashing table (the paper's DHP runs use
        100 buckets).
    backend:
        Counting engine running the support scans (see
        :data:`repro.mining.backends.BACKEND_NAMES`).  The database
        reductions and the hash filter are woven into the horizontal
        per-transaction scan loop; when a non-horizontal engine is selected
        the scans run through the engine instead and those two interleaved
        optimisations are skipped (they are lossless prunes, so the resulting
        large itemsets and support counts are identical — only
        instrumentation like candidate counts can differ).
    shards:
        Partition count used by the ``"partitioned"`` engine.
    executor:
        Shard executor used by the ``"partitioned"`` engine
        (:data:`repro.mining.backends.EXECUTOR_NAMES`): ``"threads"`` or the
        process-parallel ``"processes"``.
    workers:
        Cap on the ``"partitioned"`` engine's concurrent lanes (``None``:
        one per shard).
    kernel:
        Bitmap kernel for the vertical counting core (see
        :data:`repro.mining.backends.KERNEL_NAMES`): ``"bigint"``,
        ``"numpy"``, ``"auto"``, or ``None`` for the default.
    """

    prune_candidates_by_increment: bool = True
    filter_losers_by_subsets: bool = True
    reduce_databases: bool = True
    use_hash_filter: bool = True
    hash_table_size: int = 100
    backend: str = HorizontalBackend.name
    shards: int = DEFAULT_SHARDS
    executor: str = DEFAULT_EXECUTOR
    workers: int | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.hash_table_size < 1:
            raise ValueError(f"hash_table_size must be positive, got {self.hash_table_size}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown counting backend {self.backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {', '.join(KERNEL_NAMES)}"
            )

    def mining_options(self) -> "MiningOptions":
        """The engine-selection slice of these options as a MiningOptions."""
        return MiningOptions(
            backend=self.backend,
            shards=self.shards,
            executor=self.executor,
            workers=self.workers,
            kernel=self.kernel,
        )

    @classmethod
    def from_mining(cls, mining: MiningOptions, **overrides) -> "FupOptions":
        """FUP options carrying a MiningOptions engine selection.

        Together with :meth:`mining_options` this is the only projection
        between the two shapes — new engine knobs are threaded here once.
        """
        return cls(
            backend=mining.backend,
            shards=mining.shards,
            executor=mining.executor,
            workers=mining.workers,
            kernel=mining.kernel,
            **overrides,
        )

    @classmethod
    def all_disabled(cls) -> "FupOptions":
        """Return options with every optimisation switched off (ablation baseline)."""
        return cls(
            prune_candidates_by_increment=False,
            filter_losers_by_subsets=False,
            reduce_databases=False,
            use_hash_filter=False,
        )

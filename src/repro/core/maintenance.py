"""High-level rule maintenance: the API a downstream application uses.

:class:`RuleMaintainer` owns a transaction database together with its mined
state (large itemsets + association rules) and keeps that state current as
update batches arrive:

* the initial state is mined with Apriori or DHP (caller's choice),
* insert-only batches are applied with **FUP** (the paper's algorithm),
* batches containing deletions are applied with the **FUP2**-style updater,
* optionally, when an increment is much larger than the maintained database,
  the maintainer falls back to a full re-mine (the paper shows FUP keeps its
  edge up to increments ~3.5× the database, so the default threshold is
  generous).

Every applied batch produces a :class:`MaintenanceReport` describing what
changed — which itemsets and rules appeared or disappeared — which is the
piece of information the paper's motivation (updates "may not only invalidate
some existing strong rules but also turn some weak rules into strong ones")
says users care about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal

from ..db.transaction_db import TransactionDatabase
from ..db.update import UpdateBatch, UpdateLog
from ..errors import EmptyDatabaseError, StaleStateError
from ..itemsets import Item, Itemset
from ..mining.apriori import AprioriMiner
from ..mining.dhp import DhpMiner, DhpOptions
from ..mining.result import ItemsetLattice, MiningResult, validate_min_support
from ..mining.rules import (
    AssociationRule,
    diff_rules,
    generate_rules,
    validate_min_confidence,
)
from .fup import FupUpdater
from .fup2 import Fup2Updater
from .options import FupOptions
from .policy import MaintenancePolicy, SkipEstimator, UnboundedPolicy

__all__ = ["MaintenanceReport", "RuleMaintainer"]

MinerName = Literal["apriori", "dhp"]


@dataclass
class MaintenanceReport:
    """What one update batch changed in the maintained state."""

    batch_label: str
    algorithm: str
    inserted_transactions: int
    deleted_transactions: int
    database_size: int
    itemsets_added: list[Itemset] = field(default_factory=list)
    itemsets_removed: list[Itemset] = field(default_factory=list)
    rules_added: list[AssociationRule] = field(default_factory=list)
    rules_removed: list[AssociationRule] = field(default_factory=list)
    #: Rules whose antecedent/consequent pair survived the batch but whose
    #: statistics (confidence, support, support count, derived measures)
    #: changed, as ``(before, after)`` pairs.  Without this field a rule whose
    #: numbers drifted would be reported as unchanged and any consumer caching
    #: rule statistics would silently serve stale values.
    rules_updated: list[tuple[AssociationRule, AssociationRule]] = field(default_factory=list)
    result: MiningResult | None = None
    #: Which maintenance policy planned this batch (``--policy`` spec form).
    policy: str = "unbounded"
    #: Transactions the policy evicted beyond the caller's own deletions.
    evicted_transactions: int = 0
    #: Caller insertions the policy dropped before counting (window overflow).
    trimmed_insertions: int = 0
    #: True when the skip estimator certified the round and FUP never ran.
    skipped: bool = False
    #: Cumulative :class:`~repro.core.policy.SkipStats` counters (None when
    #: the maintainer runs without a skip estimator).
    skip_stats: dict[str, int] | None = None

    @property
    def itemsets_changed(self) -> bool:
        """True when the set of large itemsets changed at all."""
        return bool(self.itemsets_added or self.itemsets_removed)

    @property
    def rules_changed(self) -> bool:
        """True when the strong rules changed at all — membership *or* statistics."""
        return bool(self.rules_added or self.rules_removed or self.rules_updated)

    def summary(self) -> dict[str, int | str]:
        """Compact description used by the examples and the harness."""
        return {
            "batch": self.batch_label,
            "algorithm": self.algorithm,
            "inserted": self.inserted_transactions,
            "deleted": self.deleted_transactions,
            "database_size": self.database_size,
            "itemsets_added": len(self.itemsets_added),
            "itemsets_removed": len(self.itemsets_removed),
            "rules_added": len(self.rules_added),
            "rules_removed": len(self.rules_removed),
            "rules_updated": len(self.rules_updated),
            "policy": self.policy,
            "evicted": self.evicted_transactions,
            "skipped": self.skipped,
        }


class RuleMaintainer:
    """Owns a database plus its mined rules and keeps them current under updates.

    Parameters
    ----------
    min_support:
        Relative minimum support for large itemsets.
    min_confidence:
        Minimum confidence for strong rules.
    miner:
        Which algorithm mines the initial state (and performs any full
        re-mine): ``"apriori"`` or ``"dhp"``.
    fup_options:
        Feature switches forwarded to the FUP updater; its ``backend`` /
        ``shards`` selection also drives the FUP2 updater and any full
        re-mine, so a single counting engine serves the whole maintenance
        session (and its per-database index is reused across batches).
    remine_increment_factor:
        If an insert-only batch is larger than this multiple of the currently
        maintained database, fall back to a full re-mine instead of FUP.
        ``None`` (the default) never falls back — the paper's measurements
        show FUP stays ahead even for increments several times the database.
    policy:
        The :class:`~repro.core.policy.MaintenancePolicy` every batch is
        planned through (default: unbounded, the pre-policy behaviour).
        The planner may synthesise evictions (sliding window, time decay)
        or bound the served rule list (top-k); the maintained lattice is
        always exact for whatever the policy retains.
    skip_estimator:
        Optional :class:`~repro.core.policy.SkipEstimator`.  When set,
        insert-only batches run its DELI-style pre-check first and the FUP
        round is skipped whenever the check certifies the large-itemset
        collection cannot change.
    """

    def __init__(
        self,
        min_support: float,
        min_confidence: float,
        miner: MinerName = "apriori",
        fup_options: FupOptions | None = None,
        remine_increment_factor: float | None = None,
        policy: MaintenancePolicy | None = None,
        skip_estimator: SkipEstimator | None = None,
    ) -> None:
        self.min_support = validate_min_support(min_support)
        # The same validator generate_rules uses, so the two entry points
        # cannot drift (it also rejects booleans, which the hand-rolled check
        # this replaced happily accepted).
        self.min_confidence = validate_min_confidence(min_confidence)
        if miner not in ("apriori", "dhp"):
            raise ValueError(f"miner must be 'apriori' or 'dhp', got {miner!r}")
        self.miner_name: MinerName = miner
        self.fup_options = fup_options or FupOptions()
        if remine_increment_factor is not None and remine_increment_factor <= 0:
            raise ValueError(
                f"remine_increment_factor must be positive, got {remine_increment_factor}"
            )
        self.remine_increment_factor = remine_increment_factor
        self.policy: MaintenancePolicy = policy or UnboundedPolicy()
        self.skip_estimator = skip_estimator

        self._database: TransactionDatabase | None = None
        self._result: MiningResult | None = None
        self._rules: list[AssociationRule] = []
        self.update_log = UpdateLog()
        #: Monotonic count of update batches folded into the current state
        #: (the durable session seeds it with its checkpoint sequence, so for
        #: a restored session it equals the journal sequence number).  Serving
        #: snapshots are stamped with it.
        self.sequence = 0
        self._subscribers: list[Callable[["RuleMaintainer"], None]] = []
        # One updater of each kind serves every batch of the session, so a
        # single counting engine — with whatever state it owns: worker
        # processes, shipped shard caches, per-database indexes — is built
        # once and amortised over the whole session instead of being
        # respawned per batch.
        self._fup_updater = FupUpdater(self.min_support, options=self.fup_options)
        self._fup2_updater = Fup2Updater(
            self.min_support, options=self.fup_options.mining_options()
        )

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> TransactionDatabase:
        """The currently maintained database (raises until initialised)."""
        if self._database is None:
            raise EmptyDatabaseError("RuleMaintainer has not been initialised with a database")
        return self._database

    @property
    def result(self) -> MiningResult:
        """The current mining result (large itemsets + counters)."""
        if self._result is None:
            raise EmptyDatabaseError("RuleMaintainer has not been initialised with a database")
        return self._result

    @property
    def large_itemsets(self) -> list[Itemset]:
        """The currently large itemsets."""
        return self.result.large_itemsets

    @property
    def rules(self) -> list[AssociationRule]:
        """The currently strong association rules."""
        if self._result is None:
            raise EmptyDatabaseError("RuleMaintainer has not been initialised with a database")
        return list(self._rules)

    @property
    def is_initialised(self) -> bool:
        """True once :meth:`initialise` has mined an initial state."""
        return self._result is not None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def subscribe(self, callback: Callable[["RuleMaintainer"], None]) -> None:
        """Register *callback* to run after every state change (the serving hook).

        The callback receives this maintainer after ``initialise``,
        ``restore`` and every state-changing ``apply`` — at a point where the
        database, mining result, rules and :attr:`sequence` are mutually
        consistent, which is what lets a subscriber build an atomic snapshot.
        If the maintainer is already initialised the callback fires
        immediately, so late subscribers never miss the current state.

        A callback that raises does so *after* the state change has
        committed: the exception propagates to the ``apply`` caller, but the
        batch is applied, the sequence has advanced, and (in a durable
        session) the journal record is kept — snapshots are complete states,
        so the next successful publication self-heals whatever the failed
        callback missed.
        """
        self._subscribers.append(callback)
        if self.is_initialised:
            callback(self)

    def _publish(self) -> None:
        for callback in self._subscribers:
            callback(self)

    def initialise(self, database: TransactionDatabase | Iterable[Iterable[Item]]) -> MiningResult:
        """Mine the initial state from *database* with the configured miner."""
        if not isinstance(database, TransactionDatabase):
            database = TransactionDatabase(database)
        self._database = database.copy()
        # Admit the database through the policy first: a bounded policy trims
        # it to within bounds *before* the initial mine, so the mined state
        # matches what the policy retains (e.g. the last W transactions).
        plan = self.policy.admit(self._database)
        if plan.batch.deletions:
            self._database.remove_batch(plan.batch.deletions, strict=True)
        self.policy.commit(plan)
        self._result = self._full_mine(self._database)
        self._rules = self.policy.bound_rules(
            generate_rules(self._result.lattice, self.min_confidence)
        )
        self.sequence = 0
        self._publish()
        return self._result

    def restore(
        self,
        database: TransactionDatabase,
        lattice: ItemsetLattice,
        algorithm: str = "restored",
        sequence: int = 0,
    ) -> MiningResult:
        """Adopt previously-mined state instead of mining it (the session hook).

        *database* is taken over as the maintained database (no copy — the
        caller hands over ownership, typically a database just loaded from a
        snapshot) and *lattice* as the current large-itemset state; rules are
        regenerated from the lattice, which is deterministic, so a restored
        maintainer is bit-for-bit equivalent to the one that saved the state.
        *sequence* seeds :attr:`sequence` (the durable session passes its
        checkpoint sequence so snapshot versions keep counting from there).

        Raises
        ------
        StaleStateError
            If the lattice's recorded database size disagrees with *database*.
        """
        if lattice.database_size != len(database):
            raise StaleStateError(
                f"itemset state was measured against {lattice.database_size} "
                f"transactions but the snapshot database holds {len(database)}"
            )
        self._database = database
        self._result = MiningResult(
            lattice=lattice,
            min_support=self.min_support,
            algorithm=algorithm,
        )
        self._rules = self.policy.bound_rules(generate_rules(lattice, self.min_confidence))
        self.sequence = int(sequence)
        self._publish()
        return self._result

    def _full_mine(self, database: TransactionDatabase) -> MiningResult:
        mining = self.fup_options.mining_options()
        if self.miner_name == "dhp":
            return DhpMiner(
                self.min_support, options=DhpOptions.from_mining(mining)
            ).mine(database)
        return AprioriMiner(self.min_support, options=mining).mine(database)

    # ------------------------------------------------------------------ #
    # Applying updates
    # ------------------------------------------------------------------ #
    def validate_batch(self, batch: UpdateBatch) -> None:
        """Refuse *batch* up front if it cannot be applied to the current state.

        FUP2 subtracts the deletion batch's counts from the maintained
        supports, assuming every listed transaction actually exists; deleting
        a phantom row would silently corrupt the supports (and desynchronise
        the recorded database size).  The check runs in O(d) against the
        database's delta-maintained transaction multiset — never a
        full-database rebuild — so a k-batch deletion session costs O(Σ dᵢ),
        not k·O(|DB|).  The durable session runs this *before* journaling a
        batch, so a crash can never leave an unapplyable record in the
        journal.
        """
        if not batch.deletions:
            return
        missing = self.database.missing_transactions(batch.deletions)
        if missing:
            raise StaleStateError(
                f"deletion batch {batch.label or '?'!r} lists "
                f"{sum(missing.values())} transaction(s) not present in the "
                f"maintained database (e.g. {next(iter(missing))!r}); "
                f"deletions must name existing transactions"
            )

    def apply(self, batch: UpdateBatch) -> MaintenanceReport:
        """Apply one update batch and return a report of what changed.

        Every non-empty batch is first routed through the configured
        :class:`~repro.core.policy.MaintenancePolicy` planner, which may
        trim insertions and synthesise evictions (handled as deletions by
        FUP2).  Insert-only batches use FUP — unless a skip estimator is
        configured and certifies the round cannot change the large-itemset
        collection, in which case the updated counts are installed without
        running it.  Batches with deletions use the FUP2-style updater.
        Empty batches short-circuit to a no-op report *before* planning:
        the unchanged lattice is not re-derived into rules, nothing is
        recorded in the update log (so durable-session journals stay free
        of empty records), no policy clock advances, and :attr:`sequence`
        does not advance.
        """
        database = self.database
        previous = self.result

        if batch.is_empty:
            return MaintenanceReport(
                batch_label=batch.label,
                algorithm="noop",
                inserted_transactions=0,
                deleted_transactions=0,
                database_size=len(database),
                result=previous,
                policy=self.policy.describe(),
                skip_stats=self._skip_stats(),
            )

        plan = self.policy.plan(batch, database)
        effective = plan.batch

        previous_rules = list(self._rules)
        previous_itemsets = set(previous.lattice.itemsets())

        skipped = False
        skip_checked = False
        if effective.deletions:
            self.validate_batch(effective)
            new_result = self._fup2_updater.update(
                database,
                previous,
                effective.insertions_database(),
                effective.deletions_database(),
            )
            algorithm = new_result.algorithm
        else:
            increment = effective.insertions_database()
            if self._should_remine(increment):
                updated = database.concatenate(increment)
                new_result = self._full_mine(updated)
                algorithm = f"remine-{self.miner_name}"
            else:
                new_result = None
                if self.skip_estimator is not None:
                    skip_checked = True
                    new_result = self.skip_estimator.evaluate(
                        database,
                        previous,
                        increment,
                        self.min_support,
                        self._fup_updater.backend,
                    )
                    skipped = new_result is not None
                if new_result is None:
                    new_result = self._fup_updater.update(database, previous, increment)
                algorithm = new_result.algorithm

        # Mutate the maintained database only after the updater succeeded, so a
        # failed update leaves the maintainer consistent.  The strict removal
        # re-validates and removes in one pass (raising with the database
        # untouched if it somehow disagrees with the pre-check above).
        if effective.deletions:
            database.remove_batch(effective.deletions, strict=True)
        if effective.insertions:
            database.extend(effective.insertions)
        self._result = new_result
        self._rules = self.policy.bound_rules(
            generate_rules(new_result.lattice, self.min_confidence)
        )
        self.update_log.record(effective)
        self.policy.commit(plan)
        self.sequence += 1

        new_itemsets = set(new_result.lattice.itemsets())
        if skip_checked and not skipped and new_itemsets != previous_itemsets:
            # A checked-but-forced round whose collection really changed —
            # the denominator for auditing the estimator's predictions.
            self.skip_estimator.stats.actual_change += 1  # type: ignore[union-attr]
        rules_diff = diff_rules(previous_rules, self._rules)
        report = MaintenanceReport(
            batch_label=batch.label,
            algorithm=algorithm,
            inserted_transactions=len(effective.insertions),
            deleted_transactions=len(effective.deletions),
            database_size=len(database),
            itemsets_added=sorted(new_itemsets - previous_itemsets),
            itemsets_removed=sorted(previous_itemsets - new_itemsets),
            rules_added=rules_diff.added,
            rules_removed=rules_diff.removed,
            rules_updated=rules_diff.updated,
            result=new_result,
            policy=self.policy.describe(),
            evicted_transactions=plan.evicted,
            trimmed_insertions=plan.trimmed_insertions,
            skipped=skipped,
            skip_stats=self._skip_stats(),
        )
        self._publish()
        return report

    def _skip_stats(self) -> dict[str, int] | None:
        return self.skip_estimator.stats.as_dict() if self.skip_estimator else None

    def policy_info(self) -> dict[str, object]:
        """JSON-safe policy + skip description for status lines and ``/health``."""
        info: dict[str, object] = dict(self.policy.info())
        if self.skip_estimator is not None:
            info["skip"] = self.skip_estimator.stats.as_dict()
        return info

    def add_transactions(
        self, transactions: Iterable[Iterable[Item]], label: str = ""
    ) -> MaintenanceReport:
        """Convenience wrapper: apply an insert-only batch."""
        return self.apply(UpdateBatch.from_iterables(insertions=transactions, label=label))

    def remove_transactions(
        self, transactions: Iterable[Iterable[Item]], label: str = ""
    ) -> MaintenanceReport:
        """Convenience wrapper: apply a delete-only batch."""
        return self.apply(UpdateBatch.from_iterables(deletions=transactions, label=label))

    def close(self) -> None:
        """Release the counting engines' owned resources (worker processes).

        Only the process-mode partitioned engine holds any; for every other
        configuration this is a no-op.  Safe to call more than once, and the
        maintainer keeps working afterwards (the engine respawns its pool on
        the next use).
        """
        for updater in (self._fup_updater, self._fup2_updater):
            release = getattr(updater.backend, "close", None)
            if release is not None:
                release()

    # ------------------------------------------------------------------ #
    def _should_remine(self, increment: TransactionDatabase) -> bool:
        if self.remine_increment_factor is None:
            return False
        database_size = len(self.database)
        if database_size == 0:
            return True
        return len(increment) > self.remine_increment_factor * database_size

"""Maintenance policies: deciding which updates matter and which data still counts.

The paper's algorithms (FUP, FUP2) answer *how* to maintain large itemsets
cheaply when the database changes.  This module answers the question one
level up — *what work a batch should actually cause* — and keeps that
decision out of the updaters, the session, and the CLI:

* :class:`UnboundedPolicy` — every transaction counts forever (the
  behaviour every earlier PR shipped; still the default).
* :class:`SlidingWindowPolicy` — retain only the last ``W`` transactions.
  Overflowing rows are synthesised as *deletion deltas* and ride the
  existing FUP2 path, so the maintained lattice is at every step exactly
  what re-mining the window contents from scratch would produce.
* :class:`TimeDecayPolicy` — age-weighted support.  Transactions age by
  one batch per update; once a row's decayed weight ``2^(-age/half_life)``
  falls below a floor it is evicted (again through FUP2), and the policy
  reports the decayed effective support threshold alongside the exact one.
* :class:`TopKPolicy` — bound the *served* rule set to the ``k`` best by
  (confidence, support) so snapshots stay fixed-size as the database grows.

Orthogonally, :class:`SkipEstimator` implements a DELI-style sampling
pre-check for insert-only batches: estimate from a sample whether the
increment can change the large-itemset collection at all, certify the
estimate with one exact increment-only counting pass, and skip the FUP
round entirely when the collection provably cannot change.

Policies are **pure planners**: :meth:`MaintenancePolicy.plan` turns an
incoming batch plus the current database into a :class:`MaintenancePlan`
(the effective batch to run, including synthesised evictions) without
touching any state, and :meth:`MaintenancePolicy.commit` installs the
plan's bookkeeping only after the maintainer has applied it.  Nothing in
this module writes to disk — durability (journal, ledger, manifest) stays
in :mod:`repro.core.session`, which persists policies via
:meth:`MaintenancePolicy.as_dict` / :func:`policy_from_dict`.  Lint rule
RPR050 enforces the purity contract.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping, Sequence

from ..db.transaction_db import Transaction, TransactionDatabase
from ..db.update import UpdateBatch
from ..errors import PolicyError
from ..mining.result import ItemsetLattice, MiningResult, required_support_count

if TYPE_CHECKING:
    from ..mining.backends.base import CountingBackend
    from ..mining.rules import AssociationRule

__all__ = [
    "MaintenancePlan",
    "MaintenancePolicy",
    "UnboundedPolicy",
    "SlidingWindowPolicy",
    "TimeDecayPolicy",
    "TopKPolicy",
    "SkipStats",
    "SkipEstimator",
    "parse_policy",
    "policy_from_dict",
]


@dataclass(frozen=True)
class MaintenancePlan:
    """What one incoming batch should actually cause.

    ``batch`` is the *effective* batch the maintainer runs: the caller's
    insertions (possibly trimmed) plus the caller's deletions followed by
    any policy-synthesised evictions.  ``evictions`` lists just the
    synthesised part, oldest first.  ``state`` carries policy-private
    bookkeeping (e.g. decay age segments) from the pure planning step to
    :meth:`MaintenancePolicy.commit`.
    """

    batch: UpdateBatch
    evictions: tuple[Transaction, ...] = ()
    trimmed_insertions: int = 0
    state: object | None = None

    @property
    def evicted(self) -> int:
        """Number of transactions this plan evicts beyond the caller's deletions."""
        return len(self.evictions)


def _synthesise_evictions(
    database: TransactionDatabase,
    user_deletions: Sequence[Transaction],
    count: int,
) -> tuple[Transaction, ...]:
    """Pick *count* eviction victims: the oldest stored rows not already deleted.

    ``TransactionDatabase.remove_batch`` removes the *earliest* occurrence
    of each listed value (both the indexed and the scan path), so claiming
    the user's own deletions against the oldest matching rows first keeps
    the synthesised batch aligned with what the deletion pass will really
    remove — the residual database is exactly the positional window.
    """
    if count <= 0:
        return ()
    claimed: Counter[Transaction] = Counter(user_deletions)
    evictions: list[Transaction] = []
    for transaction in database.transactions():
        if len(evictions) == count:
            break
        if claimed[transaction] > 0:
            claimed[transaction] -= 1
            continue
        evictions.append(transaction)
    return tuple(evictions)


class MaintenancePolicy:
    """Base contract (and the unbounded default behaviour).

    Subclasses override :meth:`plan` (and optionally :meth:`admit`,
    :meth:`commit`, :meth:`bound_rules`) but must stay pure planners:
    no filesystem, journal, or ledger access — RPR050 audits this module.
    """

    name = "unbounded"

    def plan(self, batch: UpdateBatch, database: TransactionDatabase) -> MaintenancePlan:
        """Plan the effective work for *batch* against the current *database*."""
        return MaintenancePlan(batch=batch)

    def admit(self, database: TransactionDatabase) -> MaintenancePlan:
        """Plan the trim that brings a freshly adopted database within bounds.

        Called once when a policy first takes over an existing database
        (session creation or a live policy switch) — unlike :meth:`plan`
        it must not advance any per-batch clock.
        """
        return MaintenancePlan(batch=UpdateBatch(label="policy-admit"))

    def commit(self, plan: MaintenancePlan) -> None:
        """Install *plan*'s bookkeeping after the maintainer applied it."""

    def bound_rules(self, rules: list["AssociationRule"]) -> list["AssociationRule"]:
        """Bound the served rule list (identity for every size-unbounded policy)."""
        return rules

    def params(self) -> dict[str, object]:
        """JSON-safe constructor parameters (manifest persistence)."""
        return {}

    def state(self) -> dict[str, object]:
        """JSON-safe mutable state (manifest persistence); empty when stateless."""
        return {}

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`state` output after recovery."""

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "MaintenancePolicy":
        """Rebuild a policy from its persisted :meth:`params`."""
        return cls()

    def as_dict(self) -> dict[str, object]:
        """Full persistable form: type + params + state."""
        return {"type": self.name, "params": self.params(), "state": self.state()}

    def describe(self) -> str:
        """Short ``--policy``-style spec string (``window:500``, ``unbounded``…)."""
        return self.name

    def info(self) -> dict[str, object]:
        """JSON-safe live description for reports, ``session status`` and ``/health``."""
        return {"policy": self.describe(), **self.params()}


class UnboundedPolicy(MaintenancePolicy):
    """Every transaction counts forever — the pre-policy behaviour."""


class SlidingWindowPolicy(MaintenancePolicy):
    """Retain only the last *window* transactions.

    Insertions beyond the window are trimmed to the newest ``W`` before
    they are ever counted; stored rows that overflow are synthesised as
    deletions and handled by FUP2, so the maintained lattice is identical
    to re-mining the window contents from scratch (the pinned invariant).
    """

    name = "window"

    def __init__(self, window: int) -> None:
        window = int(window)
        if window < 1:
            raise PolicyError(f"window size must be positive, got {window}")
        self.window = window

    def params(self) -> dict[str, object]:
        return {"window": self.window}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "SlidingWindowPolicy":
        return cls(int(params["window"]))  # type: ignore[call-overload]

    def describe(self) -> str:
        return f"window:{self.window}"

    def _windowed(self, batch: UpdateBatch, database: TransactionDatabase) -> MaintenancePlan:
        insertions = batch.insertions
        trimmed = 0
        if len(insertions) > self.window:
            trimmed = len(insertions) - self.window
            insertions = insertions[trimmed:]
        survivors = len(database) - len(batch.deletions)
        overflow = survivors + len(insertions) - self.window
        evictions = _synthesise_evictions(database, batch.deletions, overflow)
        if not evictions and not trimmed:
            return MaintenancePlan(batch=batch)
        effective = UpdateBatch(
            insertions=insertions,
            deletions=batch.deletions + evictions,
            label=batch.label,
        )
        return MaintenancePlan(batch=effective, evictions=evictions, trimmed_insertions=trimmed)

    def plan(self, batch: UpdateBatch, database: TransactionDatabase) -> MaintenancePlan:
        return self._windowed(batch, database)

    def admit(self, database: TransactionDatabase) -> MaintenancePlan:
        return self._windowed(UpdateBatch(label="policy-admit"), database)


class TimeDecayPolicy(MaintenancePolicy):
    """Age-weighted support: old transactions fade, negligible ones leave.

    Each applied batch ages every stored transaction by one step; a row of
    age ``a`` contributes weight ``2^(-a / half_life)``.  Rows whose weight
    would drop below *weight_floor* are evicted (synthesised deletions
    through FUP2, like the window policy), so exact counts stay exact over
    the retained horizon.  The *decayed* database size — the sum of all
    retained weights — yields :meth:`effective_threshold`, the periodic
    re-threshold the policy surfaces next to the exact one: under pure
    aging it is monotonically non-increasing, so rules never get *harder*
    to keep merely because time passed.

    Ages are tracked as contiguous segments ``[age, count]`` (oldest
    first), an O(horizon) structure that persists in the manifest and
    replays deterministically.  When deletions interleave they are
    attributed to the oldest segments — consistent with eviction order and
    with ``remove_batch``'s earliest-occurrence semantics.
    """

    name = "decay"

    DEFAULT_WEIGHT_FLOOR = 1.0 / 1024.0

    def __init__(self, half_life: float, weight_floor: float = DEFAULT_WEIGHT_FLOOR) -> None:
        half_life = float(half_life)
        weight_floor = float(weight_floor)
        if not half_life > 0:
            raise PolicyError(f"decay half-life must be positive, got {half_life}")
        if not 0 < weight_floor < 1:
            raise PolicyError(f"weight floor must be in (0, 1), got {weight_floor}")
        self.half_life = half_life
        self.weight_floor = weight_floor
        # Age (in batches) past which 2^(-age/half_life) < weight_floor.
        self.horizon = max(1, math.ceil(half_life * math.log2(1.0 / weight_floor)))
        self._segments: list[list[int]] = []

    def params(self) -> dict[str, object]:
        return {"half_life": self.half_life, "weight_floor": self.weight_floor}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "TimeDecayPolicy":
        return cls(
            float(params["half_life"]),  # type: ignore[arg-type]
            float(params.get("weight_floor", cls.DEFAULT_WEIGHT_FLOOR)),  # type: ignore[arg-type]
        )

    def state(self) -> dict[str, object]:
        return {"segments": [[age, count] for age, count in self._segments]}

    def restore_state(self, state: Mapping[str, object]) -> None:
        segments = state.get("segments", [])
        self._segments = [[int(age), int(count)] for age, count in segments]  # type: ignore[union-attr]

    def describe(self) -> str:
        return f"decay:{self.half_life:g}"

    def decayed_size(self) -> float:
        """Sum of retained transaction weights (the decayed database size)."""
        return sum(count * 2.0 ** (-age / self.half_life) for age, count in self._segments)

    def effective_threshold(self, min_support: float) -> int:
        """Support count needed against the *decayed* size (the re-threshold)."""
        return required_support_count(min_support, math.ceil(self.decayed_size()))

    def info(self) -> dict[str, object]:
        return {
            "policy": self.describe(),
            "half_life": self.half_life,
            "horizon": self.horizon,
            "decayed_size": round(self.decayed_size(), 2),
        }

    def _current_segments(self, database: TransactionDatabase) -> list[list[int]]:
        """Segments consistent with the database (fresh adoption → all age 0)."""
        segments = [[age, count] for age, count in self._segments]
        if sum(count for _, count in segments) != len(database):
            return [[0, len(database)]] if len(database) else []
        return segments

    def plan(self, batch: UpdateBatch, database: TransactionDatabase) -> MaintenancePlan:
        segments = self._current_segments(database)
        # The caller's deletions remove the earliest occurrences → attribute
        # them to the oldest segments (keeps the count invariant exact even
        # when the attributed rows are approximate).
        remaining = len(batch.deletions)
        survivors: list[list[int]] = []
        for age, count in segments:
            if remaining >= count:
                remaining -= count
                continue
            survivors.append([age, count - remaining])
            remaining = 0
        # Everything surviving ages by one batch; rows past the horizon leave.
        aged = [[age + 1, count] for age, count in survivors]
        expired = sum(count for age, count in aged if age >= self.horizon)
        kept = [[age, count] for age, count in aged if age < self.horizon]
        evictions = _synthesise_evictions(database, batch.deletions, expired)
        if batch.insertions:
            kept.append([0, len(batch.insertions)])
        if evictions:
            effective = UpdateBatch(
                insertions=batch.insertions,
                deletions=batch.deletions + evictions,
                label=batch.label,
            )
        else:
            effective = batch
        return MaintenancePlan(batch=effective, evictions=evictions, state=kept)

    def admit(self, database: TransactionDatabase) -> MaintenancePlan:
        # Freshly adopted rows all start at age 0 — nothing can be expired yet.
        return MaintenancePlan(
            batch=UpdateBatch(label="policy-admit"),
            state=self._current_segments(database),
        )

    def commit(self, plan: MaintenancePlan) -> None:
        if plan.state is not None:
            self._segments = [[int(age), int(count)] for age, count in plan.state]  # type: ignore[union-attr]


class TopKPolicy(MaintenancePolicy):
    """Serve only the *k* best rules (by confidence, then support).

    The lattice and counts stay exact and unbounded — only the published
    rule list is cut, so snapshots stay fixed-size as the database grows.
    ``generate_rules`` already sorts best-first, making the bound a slice.
    """

    name = "topk"

    def __init__(self, k: int) -> None:
        k = int(k)
        if k < 1:
            raise PolicyError(f"top-k bound must be positive, got {k}")
        self.k = k

    def params(self) -> dict[str, object]:
        return {"k": self.k}

    @classmethod
    def from_params(cls, params: Mapping[str, object]) -> "TopKPolicy":
        return cls(int(params["k"]))  # type: ignore[call-overload]

    def describe(self) -> str:
        return f"topk:{self.k}"

    def bound_rules(self, rules: list["AssociationRule"]) -> list["AssociationRule"]:
        return rules[: self.k] if len(rules) > self.k else rules


_POLICY_TYPES: dict[str, type[MaintenancePolicy]] = {
    UnboundedPolicy.name: UnboundedPolicy,
    SlidingWindowPolicy.name: SlidingWindowPolicy,
    TimeDecayPolicy.name: TimeDecayPolicy,
    TopKPolicy.name: TopKPolicy,
}


def policy_from_dict(payload: Mapping[str, object] | None) -> MaintenancePolicy:
    """Rebuild a policy from its :meth:`MaintenancePolicy.as_dict` form.

    ``None`` (manifests written before the policy layer existed) restores
    the unbounded default.
    """
    if not payload:
        return UnboundedPolicy()
    kind = str(payload.get("type", "unbounded"))
    cls = _POLICY_TYPES.get(kind)
    if cls is None:
        raise PolicyError(f"unknown maintenance policy type {kind!r} in manifest")
    params = payload.get("params") or {}
    policy = cls.from_params(params)  # type: ignore[arg-type]
    state = payload.get("state") or {}
    policy.restore_state(state)  # type: ignore[arg-type]
    return policy


def parse_policy(spec: str | None) -> MaintenancePolicy:
    """Parse a ``--policy`` spec: ``unbounded``, ``window:W``, ``decay:H``, ``topk:K``."""
    if spec is None:
        return UnboundedPolicy()
    text = spec.strip()
    if not text or text == "unbounded":
        return UnboundedPolicy()
    kind, _, argument = text.partition(":")
    try:
        if kind == "window":
            return SlidingWindowPolicy(int(argument))
        if kind == "decay":
            return TimeDecayPolicy(float(argument))
        if kind == "topk":
            return TopKPolicy(int(argument))
    except ValueError as error:
        raise PolicyError(f"bad {kind} policy argument {argument!r}: {error}") from None
    raise PolicyError(
        f"unknown policy {spec!r}; expected unbounded, window:W, decay:HALFLIFE or topk:K"
    )


@dataclass
class SkipStats:
    """Counters the skip estimator accumulates across a session's lifetime.

    ``estimated_change`` counts rounds where the *sample* predicted the
    collection would change; ``actual_change`` counts checked-but-forced
    rounds whose applied result really did change it.  Comparing the two
    is how a deployment audits the estimator's precision.
    """

    rounds_checked: int = 0
    rounds_skipped: int = 0
    rounds_forced: int = 0
    forced_by_gap: int = 0
    forced_by_border: int = 0
    forced_by_estimate: int = 0
    forced_by_certification: int = 0
    estimated_change: int = 0
    actual_change: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat JSON-safe form (manifest persistence, reports, ``/health``)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SkipStats":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: int(value) for key, value in payload.items() if key in known})  # type: ignore[arg-type]


class SkipEstimator:
    """DELI-style pre-check: skip FUP rounds that provably change nothing.

    For an insert-only batch of ``d`` transactions over a database of size
    ``n`` the required support count rises from ``T = ⌈s·n⌉`` to
    ``T' = ⌈s·(n+d)⌉``.  The round can be skipped when neither a
    *promotion* (a small itemset becoming large) nor a *demotion* (a large
    itemset falling under the new threshold) is possible:

    **Promotions** — FUP's pruning lemma: an itemset small in ``DB`` can
    only be large in ``DB ∪ db`` if it is large *within the increment*.
    When ``d ≤ T' − T`` the threshold gap alone closes the door (an
    untracked itemset holds ≤ ``T − 1`` and can gain at most ``d``).
    Otherwise the increment — ``d`` rows, not ``n`` — is mined and the
    untracked increment-large itemsets form the *promotion border*, which
    by the lemma contains every possible promotion; an empty border means
    no promotion exists, and a small one is certified with one exact
    counting pass over the original database.

    **Demotions** — a deterministic stride *sample* of the increment first
    estimates each tracked itemset's gain (the DELI move: cheap evidence
    before exact work); if the scaled estimate already predicts a demotion
    the round is forced immediately.  Otherwise one exact counting pass
    over the increment certifies ``old + gain ≥ T'`` for every tracked
    itemset.

    When every gate passes, the exact post-update lattice is the old one
    with refreshed counts — installed directly, byte-identical to what the
    forced FUP round would have produced.  The sample never decides to
    *skip* on its own, only to force early, so soundness never rests on it.
    """

    DEFAULT_SAMPLE_SIZE = 64
    #: Largest promotion border certified exactly; a wider border means the
    #: increment is introducing genuinely new patterns, so running the real
    #: FUP round is both safer and barely slower than certifying.
    DEFAULT_BORDER_CAP = 256

    def __init__(
        self,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        border_cap: int = DEFAULT_BORDER_CAP,
    ) -> None:
        sample_size = int(sample_size)
        if sample_size < 1:
            raise PolicyError(f"sample size must be positive, got {sample_size}")
        border_cap = int(border_cap)
        if border_cap < 0:
            raise PolicyError(f"border cap must be non-negative, got {border_cap}")
        self.sample_size = sample_size
        self.border_cap = border_cap
        self.stats = SkipStats()

    def evaluate(
        self,
        database: TransactionDatabase,
        previous: MiningResult,
        increment: TransactionDatabase,
        min_support: float,
        backend: "CountingBackend",
    ) -> MiningResult | None:
        """Return the exact post-update result when the round can be skipped.

        ``None`` means "run the full FUP round"; a result means the update
        provably leaves the large-itemset collection's membership unchanged
        and the returned lattice already carries the exact updated counts.
        """
        began = time.perf_counter()
        stats = self.stats
        stats.rounds_checked += 1
        original_size = len(database)
        increment_size = len(increment)
        if previous.lattice.database_size != original_size:
            # Stale state is the updater's problem, not ours — force.
            stats.rounds_forced += 1
            stats.forced_by_gap += 1
            return None
        threshold_before = required_support_count(min_support, original_size)
        threshold_after = required_support_count(min_support, original_size + increment_size)
        gap_closed = increment_size <= threshold_after - threshold_before
        tracked = previous.lattice.supports()
        transactions_read = 0

        # ---- demotion gates (cheap sample first, then exact) ---------- #
        counts: dict = {}
        if tracked:
            rows = increment.transactions()
            stride = max(1, -(-increment_size // self.sample_size))
            sample = rows[::stride]
            if 0 < len(sample) < increment_size:
                sampled = backend.count_candidates(list(sample), list(tracked))
                transactions_read += len(sample)
                scale = increment_size / len(sample)
                if any(
                    old + sampled[candidate] * scale < threshold_after
                    for candidate, old in tracked.items()
                ):
                    stats.estimated_change += 1
                    stats.rounds_forced += 1
                    stats.forced_by_estimate += 1
                    return None
            counts = backend.count_candidates(increment, list(tracked))
            transactions_read += increment_size
            if any(old + counts[candidate] < threshold_after for candidate, old in tracked.items()):
                # The sample missed a demotion; the exact pass caught it.
                stats.rounds_forced += 1
                stats.forced_by_certification += 1
                return None

        # ---- promotion gates (lemma gap, then the increment's border) -- #
        if not gap_closed:
            from ..mining.apriori import AprioriMiner

            increment_result = AprioriMiner(min_support).mine(increment)
            transactions_read += increment_result.transactions_read
            border = [
                candidate
                for candidate in increment_result.lattice.itemsets()
                if candidate not in tracked
            ]
            if len(border) > self.border_cap:
                stats.rounds_forced += 1
                stats.forced_by_border += 1
                return None
            if border:
                original_counts = backend.count_candidates(database, border)
                transactions_read += original_size
                if any(
                    original_counts[candidate]
                    + increment_result.lattice.support_count(candidate)
                    >= threshold_after
                    for candidate in border
                ):
                    # A genuinely new large itemset: the collection changes.
                    stats.rounds_forced += 1
                    stats.forced_by_border += 1
                    return None

        lattice = ItemsetLattice(database_size=original_size + increment_size)
        for candidate, old in tracked.items():
            lattice.add(candidate, old + counts[candidate])
        level_counts = Counter(len(candidate) for candidate in tracked)
        stats.rounds_skipped += 1
        return MiningResult(
            lattice=lattice,
            min_support=min_support,
            algorithm="fup-skip",
            candidates_generated=len(tracked),
            candidates_per_level={level: level_counts[level] for level in sorted(level_counts)},
            database_scans=0,
            increment_scans=1,
            transactions_read=transactions_read,
            elapsed_seconds=time.perf_counter() - began,
        )

"""The paper's primary contribution: incremental maintenance of large itemsets.

* :class:`~repro.core.fup.FupUpdater` — the FUP algorithm of Section 3
  (insert-only increments).
* :class:`~repro.core.fup2.Fup2Updater` — the generalised updater handling
  deletions and modifications, the extension Section 5 alludes to.
* :class:`~repro.core.maintenance.RuleMaintainer` — the high-level API that
  owns a database plus its mined state and applies successive update batches.
* :class:`~repro.core.session.MaintenanceSession` — a durable, resumable
  maintenance session: a :class:`RuleMaintainer` persisted to a session
  directory with crash recovery by strict journal replay.
* :class:`~repro.core.options.FupOptions` — feature switches used by the
  ablation benchmarks.
* :mod:`repro.core.policy` — maintenance policies (sliding window, time
  decay, top-k) plus the DELI-style :class:`~repro.core.policy.SkipEstimator`
  pre-check; every batch a maintainer applies is planned through one.
"""

from .options import FupOptions
from .fup import FupUpdater, update_with_fup
from .fup2 import Fup2Updater, update_with_fup2
from .maintenance import MaintenanceReport, RuleMaintainer
from .policy import (
    MaintenancePlan,
    MaintenancePolicy,
    SkipEstimator,
    SkipStats,
    SlidingWindowPolicy,
    TimeDecayPolicy,
    TopKPolicy,
    UnboundedPolicy,
    parse_policy,
    policy_from_dict,
)
from .session import (
    MaintenanceSession,
    SessionStatus,
    load_state,
    read_session_state,
    save_state,
)

__all__ = [
    "FupOptions",
    "FupUpdater",
    "update_with_fup",
    "Fup2Updater",
    "update_with_fup2",
    "MaintenanceReport",
    "RuleMaintainer",
    "MaintenancePlan",
    "MaintenancePolicy",
    "UnboundedPolicy",
    "SlidingWindowPolicy",
    "TimeDecayPolicy",
    "TopKPolicy",
    "SkipEstimator",
    "SkipStats",
    "parse_policy",
    "policy_from_dict",
    "MaintenanceSession",
    "SessionStatus",
    "read_session_state",
    "save_state",
    "load_state",
]

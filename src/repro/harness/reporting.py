"""Plain-text report rendering for the benchmark harness.

The benchmark modules print the same rows/series the paper's figures plot;
these helpers render lists of flat dictionaries as aligned fixed-width tables
so the output is readable both on a terminal and inside the pytest-benchmark
capture.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "render_records"]

Row = Mapping[str, object]


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Row], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render *rows* (dictionaries) as an aligned fixed-width table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[index].ljust(widths[index]) for index in range(len(columns))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Iterable[tuple[object, object]],
    title: str = "",
) -> str:
    """Render an (x, y) series — one figure line of the paper — as two columns."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title)


def render_records(records: Iterable[object], title: str = "") -> str:
    """Render objects exposing ``as_dict()`` (run/comparison/overhead records)."""
    rows = [record.as_dict() for record in records]  # type: ignore[attr-defined]
    return format_table(rows, title=title)

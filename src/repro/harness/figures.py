"""ASCII rendering of benchmark series as horizontal bar charts.

The paper presents its evaluation as bar/line figures; the benchmark modules
print tables (see :mod:`repro.harness.reporting`), and this module adds a
small plain-text chart renderer so the *shape* of each figure — which bars
dominate, where the trend bends — is visible directly in the benchmark output
without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL_BLOCK = "#"


def _scaled_width(value: float, maximum: float, width: int) -> int:
    if maximum <= 0 or value <= 0:
        return 0
    return max(1, int(round(width * value / maximum)))


def bar_chart(
    points: Sequence[tuple[object, float]],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render ``(label, value)`` points as a horizontal ASCII bar chart.

    The longest bar spans *width* characters; values are printed next to the
    bars so the chart doubles as a table.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    labels = [str(label) for label, _ in points]
    label_width = max(len(label) for label in labels)
    maximum = max(value for _, value in points)
    for label, value in points:
        bar = _FULL_BLOCK * _scaled_width(value, maximum, width)
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  {value_format.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[tuple[object, Sequence[tuple[str, float]]]],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Render grouped series, e.g. one group per support level with a bar per algorithm.

    ``groups`` is a sequence of ``(group_label, [(series_name, value), ...])``.
    All bars share one scale so groups are visually comparable — which is what
    the paper's side-by-side ratio bars (Figure 2) rely on.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not groups:
        lines.append("(no data)")
        return "\n".join(lines)
    series_names = [name for _, series in groups for name, _ in series]
    name_width = max(len(name) for name in series_names) if series_names else 0
    all_values: Iterable[float] = (value for _, series in groups for _, value in series)
    maximum = max(all_values, default=0.0)
    for group_label, series in groups:
        lines.append(f"{group_label}:")
        for name, value in series:
            bar = _FULL_BLOCK * _scaled_width(value, maximum, width)
            lines.append(
                f"  {name.ljust(name_width)}  {bar.ljust(width)}  {value_format.format(value)}"
            )
    return "\n".join(lines)

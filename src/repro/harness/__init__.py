"""Experiment harness: instrumented runs, comparisons, and report formatting.

The benchmark modules under ``benchmarks/`` are thin wrappers around this
package — each one builds a workload, calls the runner functions here, and
prints the table or series corresponding to a figure of the paper.  The
declarative reproduction matrix (:mod:`repro.harness.experiments`, CLI
``repro reproduce``) sweeps the whole evaluation section in one run and
maintains the generated tables in ``docs/reproduction.md``.
"""

from .metrics import RunRecord, ComparisonRecord, speedup
from .runner import (
    ExperimentRunner,
    UpdateComparison,
    run_miner,
    run_fup_update,
    compare_update_strategies,
    measure_fup_overhead,
    OverheadRecord,
    IngestThroughputRecord,
    measure_ingest_throughput,
)
from .reporting import format_table, format_series, render_records
from .experiments import (
    EngineSpec,
    ExperimentCell,
    ExperimentMatrix,
    ReproductionReport,
    run_matrix,
)

__all__ = [
    "EngineSpec",
    "ExperimentCell",
    "ExperimentMatrix",
    "ReproductionReport",
    "run_matrix",
    "RunRecord",
    "ComparisonRecord",
    "speedup",
    "ExperimentRunner",
    "UpdateComparison",
    "run_miner",
    "run_fup_update",
    "compare_update_strategies",
    "measure_fup_overhead",
    "OverheadRecord",
    "IngestThroughputRecord",
    "measure_ingest_throughput",
    "format_table",
    "format_series",
    "render_records",
]

"""Run records and derived metrics used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mining.result import MiningResult

__all__ = [
    "LatencySummary",
    "QueryThroughputRecord",
    "RunRecord",
    "ComparisonRecord",
    "percentile",
    "speedup",
]


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Ratio ``baseline / candidate``; >1 means the candidate is faster.

    A zero candidate time (possible on very small workloads where the clock
    resolution dominates) is treated as the smallest measurable tick so the
    ratio stays finite.
    """
    tick = 1e-9
    return max(baseline_seconds, tick) / max(candidate_seconds, tick)


@dataclass(frozen=True)
class RunRecord:
    """One algorithm execution on one workload configuration."""

    workload: str
    algorithm: str
    min_support: float
    elapsed_seconds: float
    candidates_generated: int
    database_scans: int
    increment_scans: int
    transactions_read: int
    large_itemsets: int

    @classmethod
    def from_result(cls, workload: str, result: MiningResult) -> "RunRecord":
        """Build a record from a :class:`MiningResult`."""
        return cls(
            workload=workload,
            algorithm=result.algorithm,
            min_support=result.min_support,
            elapsed_seconds=result.elapsed_seconds,
            candidates_generated=result.candidates_generated,
            database_scans=result.database_scans,
            increment_scans=result.increment_scans,
            transactions_read=result.transactions_read,
            large_itemsets=len(result.lattice),
        )

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat dictionary form used by the report renderer."""
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "min_support": self.min_support,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "candidates": self.candidates_generated,
            "db_scans": self.database_scans,
            "incr_scans": self.increment_scans,
            "transactions_read": self.transactions_read,
            "large_itemsets": self.large_itemsets,
        }


@dataclass(frozen=True)
class ComparisonRecord:
    """FUP compared against one baseline at one parameter point."""

    workload: str
    min_support: float
    baseline: str
    baseline_seconds: float
    fup_seconds: float
    baseline_candidates: int
    fup_candidates: int

    @property
    def speedup(self) -> float:
        """How many times faster FUP is than the baseline (the Figure 2 ratio)."""
        return speedup(self.baseline_seconds, self.fup_seconds)

    @property
    def candidate_ratio(self) -> float:
        """FUP candidates as a fraction of the baseline's (the Figure 3 ratio)."""
        if self.baseline_candidates <= 0:
            return 0.0
        return self.fup_candidates / self.baseline_candidates

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat dictionary form used by the report renderer."""
        return {
            "workload": self.workload,
            "min_support": self.min_support,
            "baseline": self.baseline,
            "baseline_seconds": round(self.baseline_seconds, 6),
            "fup_seconds": round(self.fup_seconds, 6),
            "speedup": round(self.speedup, 3),
            "baseline_candidates": self.baseline_candidates,
            "fup_candidates": self.fup_candidates,
            "candidate_ratio": round(self.candidate_ratio, 4),
        }


@dataclass(frozen=True)
class QueryThroughputRecord:
    """Serving-layer query throughput on one snapshot (one workload/mode).

    ``mode`` names the query path measured (``"indexed"`` — the inverted
    antecedent-item index — or ``"linear"``, the scan-every-rule baseline);
    ``matches`` totals the rules returned across all queries, pinning that
    the two modes did identical work.
    """

    workload: str
    mode: str
    snapshot_version: int
    rules: int
    queries: int
    seconds: float
    matches: int

    @property
    def queries_per_second(self) -> float:
        """Sustained single-thread query rate."""
        tick = 1e-9
        return self.queries / max(self.seconds, tick)

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat dictionary form used by the report renderer and BENCH files."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "snapshot_version": self.snapshot_version,
            "rules": self.rules,
            "queries": self.queries,
            "seconds": round(self.seconds, 6),
            "matches": self.matches,
            "queries_per_second": round(self.queries_per_second, 1),
        }


def percentile(sorted_values: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list.

    ``fraction`` is in ``[0, 1]`` (``0.99`` = p99).  The nearest-rank method
    always returns an observed sample — no interpolation — which is the
    honest choice for latency tails, where interpolating between a 40ms and
    a 400ms observation would invent a latency nobody experienced.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution + sustained rate of one load-generator run.

    Latencies are milliseconds; ``queries`` counts logical basket queries
    (for batched requests: requests × baskets per request), so the
    ``queries_per_second`` of a batched and an unbatched run are directly
    comparable.
    """

    requests: int
    queries: int
    seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(
        cls,
        latencies_seconds: "list[float]",
        wall_seconds: float,
        queries_per_request: int = 1,
    ) -> "LatencySummary":
        """Summarise per-request latency samples from one timed run."""
        if queries_per_request < 1:
            raise ValueError(f"queries_per_request must be >= 1, got {queries_per_request}")
        ordered = sorted(latencies_seconds)
        if not ordered:
            return cls(
                requests=0, queries=0, seconds=wall_seconds,
                p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0,
            )
        return cls(
            requests=len(ordered),
            queries=len(ordered) * queries_per_request,
            seconds=wall_seconds,
            p50_ms=percentile(ordered, 0.50) * 1000.0,
            p95_ms=percentile(ordered, 0.95) * 1000.0,
            p99_ms=percentile(ordered, 0.99) * 1000.0,
            max_ms=ordered[-1] * 1000.0,
        )

    @property
    def requests_per_second(self) -> float:
        tick = 1e-9
        return self.requests / max(self.seconds, tick)

    @property
    def queries_per_second(self) -> float:
        """Sustained logical-query rate over the whole run."""
        tick = 1e-9
        return self.queries / max(self.seconds, tick)

    def as_dict(self) -> "dict[str, float | int]":
        """Flat dictionary form used by the load harness and BENCH files."""
        return {
            "requests": self.requests,
            "queries": self.queries,
            "seconds": round(self.seconds, 6),
            "requests_per_second": round(self.requests_per_second, 1),
            "queries_per_second": round(self.queries_per_second, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }

"""Experiment runner: the update-vs-re-mine comparisons the paper reports.

Every evaluation in the paper follows the same template: mine the original
database once (that state is a given — it exists before the update arrives),
then, when the increment shows up, either

* run **FUP** with the saved state (the paper's proposal), or
* re-run **Apriori** / **DHP** from scratch on the updated database
  (the baselines).

:func:`compare_update_strategies` performs exactly that template and returns
the timings and candidate counts of all three strategies;
:func:`measure_fup_overhead` implements the Section 4.5 overhead metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from ..ingest.readers import IngestEvent

from ..core.fup import FupUpdater
from ..core.options import FupOptions
from ..core.session import DEFAULT_CHECKPOINT_INTERVAL, MANIFEST_NAME, MaintenanceSession
from ..db.transaction_db import TransactionDatabase
from ..db.update import UpdateBatch
from ..errors import ExperimentError
from ..mining.apriori import AprioriMiner
from ..mining.backends import CountingBackend, MiningOptions
from ..mining.dhp import DhpMiner, DhpOptions
from ..mining.result import MiningResult
from .metrics import ComparisonRecord, QueryThroughputRecord, RunRecord, speedup

__all__ = [
    "run_miner",
    "run_fup_update",
    "UpdateComparison",
    "compare_update_strategies",
    "OverheadRecord",
    "measure_fup_overhead",
    "measure_query_throughput",
    "ExperimentRunner",
    "SessionBatchRecord",
    "run_durable_session",
    "IngestThroughputRecord",
    "measure_ingest_throughput",
]


def _dhp_options(mining: MiningOptions | None) -> DhpOptions | None:
    """Project a MiningOptions engine selection onto DhpOptions (None-safe)."""
    return DhpOptions.from_mining(mining) if mining is not None else None


def run_miner(
    algorithm: str,
    database: TransactionDatabase,
    min_support: float,
    mining: MiningOptions | None = None,
) -> MiningResult:
    """Run one of the from-scratch miners (``"apriori"`` or ``"dhp"``).

    *mining* selects the counting engine (default: horizontal hash-tree).
    """
    if algorithm == "apriori":
        return AprioriMiner(min_support, options=mining).mine(database)
    if algorithm == "dhp":
        return DhpMiner(min_support, options=_dhp_options(mining)).mine(database)
    raise ExperimentError(f"unknown miner {algorithm!r}; expected 'apriori' or 'dhp'")


def run_fup_update(
    original: TransactionDatabase,
    previous: MiningResult,
    increment: TransactionDatabase,
    min_support: float,
    options: FupOptions | None = None,
    engine: "CountingBackend | None" = None,
) -> MiningResult:
    """Run the FUP update step (the previous mining result is reused, not re-timed)."""
    return FupUpdater(min_support, options=options, backend=engine).update(
        original, previous, increment
    )


@dataclass(frozen=True)
class UpdateComparison:
    """Timings of FUP vs. re-running the baselines on one update instance."""

    workload: str
    min_support: float
    fup: MiningResult
    apriori: MiningResult
    dhp: MiningResult
    initial: MiningResult

    @property
    def against_apriori(self) -> ComparisonRecord:
        """FUP compared with re-running Apriori on the updated database."""
        return ComparisonRecord(
            workload=self.workload,
            min_support=self.min_support,
            baseline="apriori",
            baseline_seconds=self.apriori.elapsed_seconds,
            fup_seconds=self.fup.elapsed_seconds,
            baseline_candidates=self.apriori.candidates_generated,
            fup_candidates=self.fup.candidates_generated,
        )

    @property
    def against_dhp(self) -> ComparisonRecord:
        """FUP compared with re-running DHP on the updated database."""
        return ComparisonRecord(
            workload=self.workload,
            min_support=self.min_support,
            baseline="dhp",
            baseline_seconds=self.dhp.elapsed_seconds,
            fup_seconds=self.fup.elapsed_seconds,
            baseline_candidates=self.dhp.candidates_generated,
            fup_candidates=self.fup.candidates_generated,
        )

    def consistent(self) -> bool:
        """True when all three strategies found the same large itemsets."""
        return (
            self.fup.lattice.supports() == self.apriori.lattice.supports()
            and self.apriori.lattice.supports() == self.dhp.lattice.supports()
        )


def compare_update_strategies(
    original: TransactionDatabase,
    increment: TransactionDatabase,
    min_support: float,
    workload: str = "",
    options: FupOptions | None = None,
    initial: MiningResult | None = None,
    mining: MiningOptions | None = None,
    engine: "CountingBackend | None" = None,
) -> UpdateComparison:
    """Run the paper's comparison template on one update instance.

    Parameters
    ----------
    original, increment:
        The original database ``DB`` and the increment ``db``.
    min_support:
        The (unchanged) minimum support threshold.
    workload:
        Label used in the records.
    options:
        FUP feature switches.
    mining:
        Counting-engine configuration applied to every strategy (when
        *options* is given it wins for the FUP leg).
    initial:
        The mining result of the original database, if already available;
        when omitted it is mined here with Apriori (its time is *not* part of
        the comparison — the paper treats the old large itemsets as given).
    engine:
        A ready counting-engine *instance* shared by every strategy,
        overriding the engine *mining* describes.  A sweep passing the same
        instance across many comparisons lets a stateful engine (process
        workers with shipped-shard caches) amortise its setup over the whole
        sweep instead of respawning per strategy.
    """
    if initial is None:
        initial = AprioriMiner(min_support, options=engine or mining).mine(original)
    updated = original.concatenate(increment)
    if options is None and mining is not None:
        options = FupOptions.from_mining(mining)
    fup_result = run_fup_update(
        original, initial, increment, min_support, options=options, engine=engine
    )
    apriori_result = AprioriMiner(min_support, options=engine or mining).mine(updated)
    dhp_result = DhpMiner(
        min_support, options=_dhp_options(mining), backend=engine
    ).mine(updated)
    return UpdateComparison(
        workload=workload or original.name or "workload",
        min_support=min_support,
        fup=fup_result,
        apriori=apriori_result,
        dhp=dhp_result,
        initial=initial,
    )


@dataclass(frozen=True)
class OverheadRecord:
    """The Section 4.5 overhead measurement for one update instance.

    The overhead of maintaining (rather than mining once at the end) is
    ``[t(mine DB) + t(FUP update)] − t(mine DB ∪ db)`` expressed as a fraction
    of ``t(mine DB ∪ db)``.
    """

    workload: str
    min_support: float
    mine_original_seconds: float
    fup_update_seconds: float
    mine_updated_seconds: float

    @property
    def overhead_seconds(self) -> float:
        """Absolute overhead of the maintain-then-update path."""
        return self.mine_original_seconds + self.fup_update_seconds - self.mine_updated_seconds

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to mining the updated database once."""
        if self.mine_updated_seconds <= 0:
            return 0.0
        return self.overhead_seconds / self.mine_updated_seconds

    def as_dict(self) -> dict[str, float | str]:
        """Flat dictionary form used by the report renderer."""
        return {
            "workload": self.workload,
            "min_support": self.min_support,
            "mine_original_s": round(self.mine_original_seconds, 6),
            "fup_update_s": round(self.fup_update_seconds, 6),
            "mine_updated_s": round(self.mine_updated_seconds, 6),
            "overhead_fraction": round(self.overhead_fraction, 4),
        }


def measure_fup_overhead(
    original: TransactionDatabase,
    increment: TransactionDatabase,
    min_support: float,
    workload: str = "",
    miner: str = "apriori",
    options: FupOptions | None = None,
) -> OverheadRecord:
    """Measure the Section 4.5 overhead of FUP for one update instance."""
    initial = run_miner(miner, original, min_support)
    fup_result = run_fup_update(original, initial, increment, min_support, options=options)
    updated = original.concatenate(increment)
    remined = run_miner(miner, updated, min_support)
    return OverheadRecord(
        workload=workload or original.name or "workload",
        min_support=min_support,
        mine_original_seconds=initial.elapsed_seconds,
        fup_update_seconds=fup_result.elapsed_seconds,
        mine_updated_seconds=remined.elapsed_seconds,
    )


def measure_query_throughput(
    snapshot,
    baskets: Iterable[Iterable[int]],
    *,
    mode: str = "indexed",
    repeat: int = 1,
    workload: str = "",
) -> QueryThroughputRecord:
    """Measure basket-query throughput of a serving snapshot.

    Runs every basket through the snapshot's basket-matching path *repeat*
    times and times the whole sweep once (per-query timing at these rates
    would measure the clock, not the query).  ``mode`` selects the measured
    path: ``"indexed"`` (:meth:`~repro.serve.snapshot.RuleSnapshot.rules_for_basket`)
    or ``"linear"``
    (:meth:`~repro.serve.snapshot.RuleSnapshot.rules_for_basket_linear`).
    The returned record carries the total match count, so two modes measured
    on the same snapshot and baskets can be asserted to have done identical
    work.
    """
    if mode == "indexed":
        query = snapshot.rules_for_basket
    elif mode == "linear":
        query = snapshot.rules_for_basket_linear
    else:
        raise ExperimentError(f"unknown query mode {mode!r}; expected 'indexed' or 'linear'")
    if repeat < 1:
        raise ExperimentError(f"repeat must be positive, got {repeat}")
    prepared = [frozenset(basket) for basket in baskets]
    matches = 0
    queries = 0
    began = time.perf_counter()
    for _ in range(repeat):
        for basket in prepared:
            matches += len(query(basket))
            queries += 1
    seconds = time.perf_counter() - began
    return QueryThroughputRecord(
        workload=workload or "workload",
        mode=mode,
        snapshot_version=snapshot.version,
        rules=snapshot.rule_count,
        queries=queries,
        seconds=seconds,
        matches=matches,
    )


@dataclass(frozen=True)
class SessionBatchRecord:
    """Per-batch outcome of a durable-session run (one table row)."""

    seq: int
    label: str
    algorithm: str
    seconds: float
    database_size: int
    itemsets: int
    rules: int

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary form used by the report renderer."""
        return {
            "seq": self.seq,
            "label": self.label,
            "algorithm": self.algorithm,
            "seconds": round(self.seconds, 6),
            "database_size": self.database_size,
            "itemsets": self.itemsets,
            "rules": self.rules,
        }


def run_durable_session(
    directory: str | Path,
    batches: Iterable[UpdateBatch],
    *,
    database: TransactionDatabase | None = None,
    min_support: float | None = None,
    min_confidence: float = 0.5,
    miner: str = "apriori",
    options: FupOptions | None = None,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
) -> list[SessionBatchRecord]:
    """Create-or-resume a durable session at *directory* and apply *batches*.

    When *directory* holds no session yet, *database* and *min_support* must
    be given and are mined into a fresh session; when it does, the session is
    reopened (recovering any interrupted run by strict journal replay) and
    those arguments are ignored.  This is the harness entry point the
    streaming examples and the CI smoke job drive: each call is one process
    lifetime, so calling it repeatedly against the same directory exercises
    exactly the crash/resume path a production deployment relies on.
    """
    directory = Path(directory)
    if (directory / MANIFEST_NAME).exists():
        # A corrupted session raises its real diagnosis here instead of being
        # masked by a doomed create attempt.
        session = MaintenanceSession.open(directory)
    else:
        if database is None or min_support is None:
            raise ExperimentError(
                f"{directory} holds no session; pass database= and min_support= "
                f"to create one"
            )
        session = MaintenanceSession.create(
            directory,
            database,
            min_support=min_support,
            min_confidence=min_confidence,
            miner=miner,  # type: ignore[arg-type]
            fup_options=options,
            checkpoint_interval=checkpoint_interval,
        )
    records: list[SessionBatchRecord] = []
    with session:
        for batch in batches:
            began = time.perf_counter()
            report = session.apply(batch)
            seconds = time.perf_counter() - began
            records.append(
                SessionBatchRecord(
                    seq=session.applied_seq,
                    label=report.batch_label,
                    algorithm=report.algorithm,
                    seconds=seconds,
                    database_size=report.database_size,
                    itemsets=len(session.result.lattice),
                    rules=len(session.rules),
                )
            )
    return records


@dataclass(frozen=True)
class IngestThroughputRecord:
    """Outcome of pushing one event stream through the intake pipeline."""

    events: int
    applied: int
    duplicates: int
    batches: int
    seconds: float
    events_per_second: float
    database_size: int
    itemsets: int

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary form used by the report renderer."""
        return {
            "events": self.events,
            "applied": self.applied,
            "duplicates": self.duplicates,
            "batches": self.batches,
            "seconds": round(self.seconds, 6),
            "events_per_second": round(self.events_per_second, 2),
            "database_size": self.database_size,
            "itemsets": self.itemsets,
        }


def measure_ingest_throughput(
    directory: str | Path,
    events: Iterable["IngestEvent"],
    *,
    database: TransactionDatabase | None = None,
    min_support: float | None = None,
    min_confidence: float = 0.5,
    options: FupOptions | None = None,
    batch_events: int = 500,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
) -> IngestThroughputRecord:
    """Create-or-resume a session at *directory* and ingest *events* through it.

    Wraps the full intake path — micro-batching, ledger dedup, journaled
    apply — so the measured rate is the end-to-end events-per-second a
    producer sees, not just the counting cost.  Like
    :func:`run_durable_session`, a fresh directory needs *database* and
    *min_support*; an existing session is resumed (with its ledger, so
    redelivered streams dedup across calls).
    """
    from ..ingest import MicroBatcher, TransactionIntake

    directory = Path(directory)
    if (directory / MANIFEST_NAME).exists():
        session = MaintenanceSession.open(directory)
    else:
        if database is None or min_support is None:
            raise ExperimentError(
                f"{directory} holds no session; pass database= and min_support= "
                f"to create one"
            )
        session = MaintenanceSession.create(
            directory,
            database,
            min_support=min_support,
            min_confidence=min_confidence,
            fup_options=options,
            checkpoint_interval=checkpoint_interval,
        )
    with session:
        intake = TransactionIntake(session)
        batcher = MicroBatcher(max_events=batch_events)
        total = applied = duplicates = batches = 0
        began = time.perf_counter()
        for event in events:
            for cut in batcher.offer(event):
                report = intake.submit(cut)
                total += report.events
                applied += report.applied
                duplicates += report.duplicates
                batches += 1
        tail = batcher.flush()
        if tail:
            report = intake.submit(tail)
            total += report.events
            applied += report.applied
            duplicates += report.duplicates
            batches += 1
        seconds = time.perf_counter() - began
        return IngestThroughputRecord(
            events=total,
            applied=applied,
            duplicates=duplicates,
            batches=batches,
            seconds=seconds,
            events_per_second=(total / seconds) if seconds > 0 else 0.0,
            database_size=len(session.database),
            itemsets=len(session.result.lattice),
        )


class ExperimentRunner:
    """Convenience object bundling a workload with the comparison helpers.

    Keeps the initial mining result cached so a support-level sweep over the
    same workload does not re-mine the original database more than once per
    support value, mirroring how the paper's experiments are set up.
    """

    def __init__(
        self,
        original: TransactionDatabase,
        increment: TransactionDatabase,
        workload: str = "",
        options: FupOptions | None = None,
        mining: MiningOptions | None = None,
    ) -> None:
        self.original = original
        self.increment = increment
        self.workload = workload or original.name or "workload"
        self.options = options
        self.mining = mining
        self._initial_cache: dict[float, MiningResult] = {}

    def initial_result(self, min_support: float) -> MiningResult:
        """Mining result of the original database at *min_support* (cached).

        Runs on the configured counting engine; with an index-caching engine
        the original database's vertical index is built here once and then
        reused by every comparison of the sweep (the database object is
        shared, and its index survives — it is maintained, not rebuilt).
        """
        if min_support not in self._initial_cache:
            self._initial_cache[min_support] = AprioriMiner(
                min_support, options=self.mining
            ).mine(self.original)
        return self._initial_cache[min_support]

    def compare(self, min_support: float) -> UpdateComparison:
        """Run the three-way comparison at one support level."""
        return compare_update_strategies(
            self.original,
            self.increment,
            min_support,
            workload=self.workload,
            options=self.options,
            initial=self.initial_result(min_support),
            mining=self.mining,
        )

    def sweep(self, supports: list[float]) -> list[UpdateComparison]:
        """Run the comparison across a list of support levels (Figure 2 / 3 sweeps)."""
        return [self.compare(min_support) for min_support in supports]

    def run_records(self, min_support: float) -> list[RunRecord]:
        """Per-algorithm run records at one support level."""
        comparison = self.compare(min_support)
        return [
            RunRecord.from_result(self.workload, comparison.fup),
            RunRecord.from_result(self.workload, comparison.apriori),
            RunRecord.from_result(self.workload, comparison.dhp),
        ]

"""Kernel-purity checkers (RPR020–RPR021).

The lane kernel's zero-copy startup path hands methods arrays built with
``numpy.frombuffer`` over an mmap-backed snapshot — read-only views whose
underlying bytes belong to the file.  Every mutation must first pass
through the copy-on-write guard (``_ensure_capacity`` checks
``writeable`` and copies), so any in-place write in a method that never
calls the guard is a latent crash (or worse, silent snapshot corruption)
the tests only catch if they happen to exercise the mmap path.  The second
rule pins the :class:`~repro.kernels.base.BitmapKernel` ABC contract:
subclass method signatures must not drift from the abstract ones, because
call sites are written against the ABC.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    SourceModule,
    dotted_name,
    iter_nodes,
)

__all__ = ["KernelPurityChecker"]

RULE_INPLACE = Rule(
    "RPR020",
    "kernel-unguarded-mutation",
    "Kernel methods must not mutate lane buffers (self._lanes aliases or "
    "numpy.frombuffer results) in place unless the method first runs the "
    "_ensure_capacity copy-on-write guard — zero-copy mmap lanes are "
    "read-only.",
)
RULE_SIGNATURE = Rule(
    "RPR021",
    "kernel-signature-drift",
    "BitmapKernel subclass method signatures must match the ABC contract "
    "(same argument names and arity); call sites are written against the "
    "abstract interface.",
)

#: Methods allowed to mutate: the guard itself.
_GUARD_METHODS = frozenset({"_ensure_capacity"})

#: Binding a name to one of these calls produces a private copy, which is
#: always safe to mutate.
_COPY_FACTORIES = frozenset(
    {
        "np.array",
        "np.zeros",
        "np.empty",
        "np.ones",
        "np.ascontiguousarray",
        "numpy.array",
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.ascontiguousarray",
    }
)

_BUFFER_FACTORIES = frozenset({"np.frombuffer", "numpy.frombuffer"})


def _is_lanes_attribute(node: ast.AST) -> bool:
    """True for ``self._lanes`` (or any ``<expr>._lanes``)."""
    return isinstance(node, ast.Attribute) and node.attr == "_lanes"


def _kernel_bases(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.rpartition(".")[2].endswith("Kernel"):
            return True
    return False


def _signature(function: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple:
    args = function.args
    names = [arg.arg for arg in list(args.posonlyargs) + list(args.args)]
    return (
        tuple(names[1:]),  # drop self/cls: binding style is not the contract
        tuple(arg.arg for arg in args.kwonlyargs),
        args.vararg.arg if args.vararg else None,
        args.kwarg.arg if args.kwarg else None,
    )


def _format_signature(signature: tuple) -> str:
    positional, kwonly, vararg, kwarg = signature
    parts = list(positional)
    if vararg:
        parts.append(f"*{vararg}")
    elif kwonly:
        parts.append("*")
    parts.extend(kwonly)
    if kwarg:
        parts.append(f"**{kwarg}")
    return f"({', '.join(parts)})"


def _abstract_contract(project: Project) -> dict[str, tuple]:
    """Abstract method name → signature, from the ABC source.

    Prefers a ``kernels/base.py`` inside the scanned tree (so fixture
    projects can ship their own contract); falls back to the installed
    :mod:`repro.kernels.base`.
    """
    module = project.find("kernels/base.py")
    tree: ast.AST | None = module.tree if module is not None else None
    if tree is None:
        try:
            from pathlib import Path

            from ..kernels import base as kernel_base

            tree = ast.parse(Path(kernel_base.__file__).read_text(encoding="utf-8"))
        except (ImportError, OSError):
            return {}
    contract: dict[str, tuple] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "BitmapKernel":
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                decorators = {
                    dotted_name(decorator) or "" for decorator in item.decorator_list
                }
                if any(name.rpartition(".")[2] == "abstractmethod" for name in decorators):
                    contract[item.name] = _signature(item)
    return contract


class KernelPurityChecker(Checker):
    rules = (RULE_INPLACE, RULE_SIGNATURE)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None:
            return
        classes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef) and _kernel_bases(node)
        ]
        if not classes:
            return
        imports = ImportMap(module.tree)
        contract = _abstract_contract(project)
        for cls in classes:
            yield from self._check_class(module, cls, imports, contract)

    # ------------------------------------------------------------------ #
    def _check_class(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        imports: ImportMap,
        contract: dict[str, tuple],
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in contract:
                expected = contract[item.name]
                actual = _signature(item)
                if actual != expected:
                    yield Finding(
                        code=RULE_SIGNATURE.code,
                        message=(
                            f"signature {_format_signature(actual)} drifts from "
                            f"the BitmapKernel contract "
                            f"{_format_signature(expected)}"
                        ),
                        path=module.relpath,
                        line=item.lineno,
                        column=item.col_offset,
                        symbol=f"{cls.name}.{item.name}",
                    )
            if item.name not in _GUARD_METHODS:
                yield from self._check_mutations(module, cls, item, imports)

    # ------------------------------------------------------------------ #
    def _check_mutations(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        guard_called = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _GUARD_METHODS
            for node in ast.walk(method)
        )
        if guard_called:
            return

        aliases: set[str] = set()

        def resolves_qualified(call: ast.Call, names: frozenset[str]) -> bool:
            resolved = imports.resolve(call.func)
            if resolved in names:
                return True
            dotted = dotted_name(call.func)
            return dotted in names

        def is_buffer_expr(value: ast.AST) -> bool:
            if _is_lanes_attribute(value):
                return True
            if isinstance(value, ast.Subscript):
                return is_buffer_expr(value.value)
            if isinstance(value, ast.Name):
                return value.id in aliases
            if isinstance(value, ast.Call):
                return resolves_qualified(value, _BUFFER_FACTORIES)
            return False

        def emit(node: ast.AST, what: str) -> Iterator[Finding]:
            yield Finding(
                code=RULE_INPLACE.code,
                message=(
                    f"in-place mutation of a lane buffer ({what}) in a "
                    "method that never runs the _ensure_capacity "
                    "copy-on-write guard"
                ),
                path=module.relpath,
                line=getattr(node, "lineno", method.lineno),
                column=getattr(node, "col_offset", 0),
                symbol=f"{cls.name}.{method.name}",
            )

        for node in iter_nodes(method):
            # Track alias bindings in statement order.
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if isinstance(node.value, ast.Call) and resolves_qualified(
                        node.value, _COPY_FACTORIES
                    ):
                        aliases.discard(target.id)
                    elif isinstance(node.value, ast.Call) and isinstance(
                        node.value.func, ast.Attribute
                    ) and node.value.func.attr == "copy":
                        aliases.discard(target.id)
                    elif is_buffer_expr(node.value):
                        aliases.add(target.id)
                    else:
                        aliases.discard(target.id)
                    continue
            # Mutations.
            if isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Subscript) and is_buffer_expr(target.value):
                    yield from emit(node, "augmented subscript assignment")
                elif is_buffer_expr(target):
                    yield from emit(node, "augmented assignment")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and is_buffer_expr(
                        target.value
                    ):
                        yield from emit(node, "subscript assignment")
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "out" and is_buffer_expr(keyword.value):
                        yield from emit(node, "out= argument")
                if isinstance(node.func, ast.Attribute) and node.func.attr in {
                    "fill",
                    "sort",
                    "partition",
                }:
                    if is_buffer_expr(node.func.value):
                        yield from emit(node, f".{node.func.attr}()")

"""Durability checkers (RPR010–RPR012).

The crash-safety story of the maintenance session rests on one protocol
(``docs/architecture.md``): every durable byte is staged to a ``*_tmp``
path, fsynced, atomically renamed over the final name by
``core/session.py::_atomic_replace``, and the directory entry is fsynced
after the rename.  Journal appends fsync inside ``_Journal``.  Any rename
or fsync *outside* those audited helpers is a new, unaudited durability
path — exactly the class of change these rules exist to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    ScopedVisitor,
    SourceModule,
    dotted_name,
)

__all__ = ["DurabilityChecker"]

RULE_RENAME = Rule(
    "RPR010",
    "unaudited-atomic-rename",
    "os.replace/os.rename must only be called from the audited "
    "core/session.py::_atomic_replace helper (fsync file, rename, fsync "
    "directory); ad-hoc renames skip the directory fsync.",
)
RULE_FSYNC = Rule(
    "RPR011",
    "unaudited-fsync",
    "os.fsync must only be called from the audited helpers in "
    "core/session.py (_fsync_file, _fsync_directory, _Journal); scattered "
    "fsyncs hide which writes are actually durable.",
)
RULE_TMP_STAGING = Rule(
    "RPR012",
    "checkpoint-write-not-staged",
    "Durable writes inside MaintenanceSession and IntakeLedger must target "
    "a *_tmp staging path (then _atomic_replace) — or go through _Journal; "
    "writing the final path directly can tear on crash.",
)

#: Functions in core/session.py allowed to call os.replace / os.rename.
_RENAME_AUDITED = frozenset({"_atomic_replace"})

#: Functions in core/session.py allowed to call os.fsync directly.
_FSYNC_AUDITED = frozenset({"_fsync_file", "_fsync_directory"})

#: Classes in core/session.py whose methods may fsync (the journal owns
#: its own append/truncate durability).
_FSYNC_AUDITED_CLASSES = frozenset({"_Journal"})

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_SNAPSHOT_WRITERS = frozenset({"write_snapshot", "save_state"})

#: Classes owning durable on-disk state whose writes must stage through
#: ``*_tmp`` + ``_atomic_replace`` or go through ``_Journal``: the session
#: (checkpoint snapshot/state/manifest) and the intake ledger (its
#: compaction rewrite).
_DURABLE_WRITER_CLASSES = frozenset({"MaintenanceSession", "IntakeLedger"})


def _ends_with_tmp(node: ast.AST) -> bool:
    """True when the expression names a ``*_tmp`` staging path."""
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return dotted.rpartition(".")[2].endswith("_tmp")


class _DurabilityVisitor(ScopedVisitor):
    def __init__(self, module: SourceModule, imports: ImportMap) -> None:
        super().__init__(module)
        self.imports = imports
        self.is_session_module = module.filename == "session.py"
        self.findings: list[Finding] = []

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=rule.code,
                message=message,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=self.qualname(),
            )
        )

    def _in_audited_rename_scope(self) -> bool:
        return (
            self.is_session_module
            and self.current_function is not None
            and self.current_function.name in _RENAME_AUDITED
        )

    def _in_audited_fsync_scope(self) -> bool:
        if not self.is_session_module:
            return False
        if self.current_function is not None and (
            self.current_function.name in _FSYNC_AUDITED
        ):
            return True
        return any(cls.name in _FSYNC_AUDITED_CLASSES for cls in self.class_stack)

    def _in_durable_writer(self) -> str | None:
        for cls in self.class_stack:
            if cls.name in _DURABLE_WRITER_CLASSES:
                return cls.name
        return None

    def handle_node(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Call):
            return
        resolved = self.imports.resolve(node.func)

        if resolved in {"os.replace", "os.rename"} and not self._in_audited_rename_scope():
            self._emit(
                RULE_RENAME,
                node,
                f"'{resolved}' outside the audited _atomic_replace helper",
            )
        if resolved in {"os.fsync", "os.fdatasync"} and not self._in_audited_fsync_scope():
            self._emit(
                RULE_FSYNC,
                node,
                f"'{resolved}' outside the audited fsync helpers",
            )

        owner = self._in_durable_writer()
        if owner is not None:
            self._check_staged_write(node, resolved, owner)

    # -- RPR012 ------------------------------------------------------------ #
    def _check_staged_write(
        self, node: ast.Call, resolved: str | None, owner: str
    ) -> None:
        # write_snapshot(db, path) / save_state(state, path): the path
        # argument (second positional) must be a *_tmp staging name.
        if resolved is not None and resolved.rpartition(".")[2] in _SNAPSHOT_WRITERS:
            if len(node.args) >= 2 and not _ends_with_tmp(node.args[1]):
                self._emit(
                    RULE_TMP_STAGING,
                    node,
                    f"'{resolved.rpartition('.')[2]}' writes a non-staged "
                    "path (expected a *_tmp name handed to _atomic_replace)",
                )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        # path.write_text(...) / path.write_bytes(...)
        if node.func.attr in _WRITE_METHODS:
            if not _ends_with_tmp(node.func.value):
                self._emit(
                    RULE_TMP_STAGING,
                    node,
                    f"'.{node.func.attr}()' on a non-staged path inside "
                    f"{owner}",
                )
            return
        # path.open("w"/"a"/"r+"): direct writable handles bypass both the
        # journal's fsync discipline and the staging protocol.
        if node.func.attr == "open" and node.args:
            mode = node.args[0]
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                if any(flag in mode.value for flag in ("w", "a", "+")):
                    self._emit(
                        RULE_TMP_STAGING,
                        node,
                        f"writable handle ('{mode.value}') opened directly "
                        f"inside {owner}; route journal/ledger writes "
                        "through _Journal and snapshot writes through *_tmp "
                        "+ _atomic_replace",
                    )


class DurabilityChecker(Checker):
    rules = (RULE_RENAME, RULE_FSYNC, RULE_TMP_STAGING)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None:
            return
        visitor = _DurabilityVisitor(module, ImportMap(module.tree))
        visitor.visit(module.tree)
        yield from visitor.findings

"""Exception-hygiene checkers (RPR040–RPR043).

Silent failure is the failure mode this project cannot afford: a swallowed
exception in the feed thread stops snapshot publication without a trace,
and a swallowed publish-hook error loses cache invalidation.  The rules:
bare ``except`` never (RPR040); catching ``Exception``/``BaseException``
obliges you to re-raise or log (RPR041); an ``except: pass`` inside a loop
drops an error per iteration forever (RPR042); and only the CLI's
``__main__`` guard may exit the process — library errors travel as
``ReproError`` and become exit status 2 in one place (RPR043).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    ScopedVisitor,
    SourceModule,
    dotted_name,
)

__all__ = ["ExceptionHygieneChecker"]

RULE_BARE = Rule(
    "RPR040",
    "bare-except",
    "`except:` catches SystemExit/KeyboardInterrupt too; name the "
    "exceptions (or catch Exception and log/re-raise).",
)
RULE_OVERBROAD = Rule(
    "RPR041",
    "overbroad-except-unrecorded",
    "Catching Exception/BaseException obliges the handler to re-raise or "
    "log; anything else turns every future bug at this site invisible.",
)
RULE_SWALLOWED = Rule(
    "RPR042",
    "loop-swallows-errors",
    "An `except ...: pass` inside a loop (feed threads, publish hooks) "
    "drops an error on every iteration with no trace; log before "
    "continuing.",
)
RULE_EXIT_TAXONOMY = Rule(
    "RPR043",
    "cli-exit-taxonomy",
    "Only the CLI `__main__` guard may call sys.exit; `_cmd_*` handlers "
    "return 0/1/2 and library errors raise ReproError (mapped to exit 2 "
    "in main()).",
)

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_LOGGER_NAMES = frozenset({"log", "logger", "_log", "_logger", "logging"})
_VALID_CLI_RETURNS = frozenset({0, 1, 2})


def _catches_broad(handler: ast.ExceptHandler) -> str | None:
    """'Exception'/'BaseException' when the handler catches one of them."""
    types: list[ast.expr] = []
    if handler.type is None:
        return None  # bare: RPR040's business
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for type_node in types:
        name = dotted_name(type_node)
        if name in {"Exception", "BaseException"}:
            return name
    return None


def _records_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or logs somewhere in its body."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            head, _, attr = dotted.rpartition(".")
            if attr in _LOG_METHODS and head.rpartition(".")[2] in _LOGGER_NAMES:
                return True
            if dotted in {"traceback.print_exc", "traceback.print_exception"}:
                return True
    return False


def _body_only_passes(handler: ast.ExceptHandler) -> bool:
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Continue):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring / Ellipsis
        return False
    return True


def _is_main_guard(node: ast.If) -> bool:
    test = node.test
    if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
        return False
    left, right = test.left, test.comparators[0]
    names = set()
    for side in (left, right):
        if isinstance(side, ast.Name):
            names.add(side.id)
        elif isinstance(side, ast.Constant):
            names.add(side.value)
    return "__name__" in names and "__main__" in names


class _HygieneVisitor(ScopedVisitor):
    def __init__(self, module: SourceModule, imports: ImportMap) -> None:
        super().__init__(module)
        self.imports = imports
        self.is_cli = module.filename == "cli.py"
        self.findings: list[Finding] = []
        self._scope_markers: list[str] = []  # "function" / "loop"
        self._main_guard_depth = 0

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=rule.code,
                message=message,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=self.qualname(),
            )
        )

    # -- scope bookkeeping ---------------------------------------------- #
    def handle_function(self, node: ast.AST) -> None:
        self._scope_markers.append("function")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope_markers.append("function")  # class body breaks the loop scope
        super().visit_ClassDef(node)
        self._scope_markers.pop()

    def _visit_function(self, node) -> None:  # type: ignore[no-untyped-def]
        super()._visit_function(node)
        self._scope_markers.pop()

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        self._scope_markers.append("loop")
        self.generic_visit(node)
        self._scope_markers.pop()

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_If(self, node: ast.If) -> None:
        if _is_main_guard(node):
            self._main_guard_depth += 1
            self.generic_visit(node)
            self._main_guard_depth -= 1
        else:
            self.generic_visit(node)

    def _inside_loop(self) -> bool:
        for marker in reversed(self._scope_markers):
            if marker == "loop":
                return True
            if marker == "function":
                return False
        return False

    # -- the rules ------------------------------------------------------- #
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(RULE_BARE, node, "bare `except:` clause")
        else:
            broad = _catches_broad(node)
            if broad is not None and not _records_error(node):
                self._emit(
                    RULE_OVERBROAD,
                    node,
                    f"`except {broad}` neither re-raises nor logs",
                )
        if self._inside_loop() and _body_only_passes(node):
            self._emit(
                RULE_SWALLOWED,
                node,
                "exception swallowed with `pass` inside a loop; log it "
                "before continuing",
            )
        self.generic_visit(node)

    def handle_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            resolved = self.imports.resolve(node.func)
            if resolved in {"sys.exit", "exit", "quit", "os._exit"}:
                if not self._main_guard_depth:
                    self._emit(
                        RULE_EXIT_TAXONOMY,
                        node,
                        f"'{resolved}' outside the CLI __main__ guard",
                    )
        elif isinstance(node, ast.Raise) and node.exc is not None:
            target = node.exc
            name = (
                dotted_name(target.func)
                if isinstance(target, ast.Call)
                else dotted_name(target)
            )
            if name == "SystemExit" and not self._main_guard_depth:
                self._emit(
                    RULE_EXIT_TAXONOMY,
                    node,
                    "`raise SystemExit` outside the CLI __main__ guard",
                )
        elif (
            self.is_cli
            and isinstance(node, ast.Return)
            and node.value is not None
            and self.current_function is not None
            and self.current_function.name.startswith("_cmd_")
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
            and not isinstance(node.value.value, bool)
            and node.value.value not in _VALID_CLI_RETURNS
        ):
            self._emit(
                RULE_EXIT_TAXONOMY,
                node,
                f"CLI handler returns {node.value.value}; the exit "
                "taxonomy is 0 (ok), 1 (reported failure), 2 (usage/"
                "input error)",
            )


class ExceptionHygieneChecker(Checker):
    rules = (RULE_BARE, RULE_OVERBROAD, RULE_SWALLOWED, RULE_EXIT_TAXONOMY)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None:
            return
        visitor = _HygieneVisitor(module, ImportMap(module.tree))
        visitor.visit(module.tree)
        yield from visitor.findings

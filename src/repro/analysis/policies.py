"""Policy-purity checker (RPR050).

Maintenance policies are **pure planners**: :mod:`repro.core.policy` turns
an incoming batch plus the current database into a plan and nothing else.
Durability — journal appends, ledger commits, manifest replaces, fsyncs,
file locks — belongs to :mod:`repro.core.session` and the ingest layer.
The contract matters because policies are replayed during crash recovery:
a policy that wrote to disk during :meth:`plan` would write *again* on
replay, corrupting the very journal whose replay is supposed to be
idempotent.  This rule audits the policy module mechanically so the
contract cannot erode one convenience write at a time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    ScopedVisitor,
    SourceModule,
)

__all__ = ["PolicyPurityChecker"]

RULE_PURITY = Rule(
    "RPR050",
    "policy-impure",
    "Maintenance policies are pure planners: core/policy.py must not open, "
    "write, rename, fsync, or lock files, nor import the session/journal/"
    "ledger layers — durability belongs to repro.core.session.",
)

#: Qualified call targets that perform or enable filesystem mutation.
_FORBIDDEN_CALLS = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.open",
        "os.fdopen",
        "os.makedirs",
        "os.mkdir",
        "fcntl.flock",
        "fcntl.lockf",
        "open",
    }
)

#: Attribute method names whose call writes through the receiver (Path or
#: file handle) regardless of how the receiver was obtained.
_FORBIDDEN_METHODS = frozenset(
    {"write_text", "write_bytes", "open", "fsync", "flock", "unlink", "replace", "rename"}
)

#: Module substrings whose import couples the policy layer to durability.
_FORBIDDEN_IMPORTS = ("session", "journal", "ledger", "ingest", "faults")


def _is_policy_module(module: SourceModule) -> bool:
    return module.parts[-2:] == ("core", "policy.py")


class _PurityVisitor(ScopedVisitor):
    def __init__(self, module: SourceModule, imports: ImportMap) -> None:
        super().__init__(module)
        self.imports = imports
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            Finding(
                code=RULE_PURITY.code,
                message=f"policy layer performs durability work: {what}",
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=self.qualname(),
            )
        )

    def handle_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if any(part in alias.name.split(".") for part in _FORBIDDEN_IMPORTS):
                    self._flag(node, f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            names = set(target.split("."))
            names.update(alias.name for alias in node.names)
            hits = sorted(names & set(_FORBIDDEN_IMPORTS))
            if hits:
                self._flag(node, f"import of {', '.join(hits)}")
        elif isinstance(node, ast.Call):
            resolved = self.imports.resolve(node.func)
            if resolved in _FORBIDDEN_CALLS:
                self._flag(node, f"{resolved}()")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FORBIDDEN_METHODS
            ):
                self._flag(node, f".{node.func.attr}()")


class PolicyPurityChecker(Checker):
    rules = (RULE_PURITY,)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None or not _is_policy_module(module):
            return
        visitor = _PurityVisitor(module, ImportMap(module.tree))
        visitor.visit(module.tree)
        yield from visitor.findings

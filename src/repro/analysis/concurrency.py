"""Lock-discipline / race checkers (RPR001–RPR003).

The serving tier is lock-free by design: readers follow the maintenance
session through :func:`~repro.core.session.MaintenanceSession.peek` and
``read_session_state`` and must never reach the writer-locked surface
(``_open_locked``, ``fcntl.flock``), or they would either block the writer
or deadlock behind it (``docs/architecture.md`` pins this).  Likewise,
module-level mutable state written from function bodies is shared across
the serving threads without a lock, and any blocking call inside an
``async def`` coroutine stalls the whole event loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    ScopedVisitor,
    SourceModule,
    dotted_name,
)

__all__ = ["ConcurrencyChecker"]

RULE_READER_LOCKS = Rule(
    "RPR001",
    "serve-reaches-writer-lock",
    "Serve-side reader modules must not reach the writer-locked session "
    "APIs (_open_locked, _acquire_lock, fcntl.flock/lockf, "
    "MaintenanceSession.open); readers follow snapshots lock-free.",
)
RULE_MODULE_STATE = Rule(
    "RPR002",
    "module-state-write",
    "Module-level mutable state must not be written from function bodies "
    "(global rebinding or container mutation): it races across serving "
    "threads and breaks process-pool workers that re-import the module.",
)
RULE_BLOCKING_ASYNC = Rule(
    "RPR003",
    "blocking-call-in-coroutine",
    "Blocking calls (time.sleep, fsync/rename, subprocess, sync socket "
    "I/O, builtin open) inside an `async def` stall the entire event loop.",
)

#: Names that belong to the writer-locked session surface.
_WRITER_NAMES = frozenset({"_open_locked", "_acquire_lock", "flock", "lockf"})

#: Qualified callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.replace",
        "os.rename",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "open",
    }
)

_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.Counter",
        "collections.deque",
        "collections.OrderedDict",
    }
)

_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def _module_level_mutables(tree: ast.Module, imports: ImportMap) -> set[str]:
    """Names bound at module import time to a mutable container."""

    def value_is_mutable(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            resolved = imports.resolve(value.func)
            return resolved in _MUTABLE_FACTORIES
        return False

    names: set[str] = set()

    def scan(statements: list[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(statement, ast.Assign) and value_is_mutable(statement.value):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                if value_is_mutable(statement.value) and isinstance(statement.target, ast.Name):
                    names.add(statement.target.id)
            # Descend into module-level control flow (if TYPE_CHECKING etc.).
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(statement, attr, None)
                if nested:
                    scan(nested)

    scan(tree.body)
    return names


def _binding_names(target: ast.AST) -> Iterator[str]:
    """Names actually (re)bound by an assignment target.

    ``x = ...`` and ``x, y = ...`` bind; ``x[k] = ...`` and ``x.attr = ...``
    mutate an existing object and bind nothing.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_bindings(function: ast.AST) -> set[str]:
    """Every name the function (or anything nested in it) binds locally."""
    bound: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                bound.add(arg.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, ast.comprehension):
            bound.update(_binding_names(node.target))
    return bound


class _ConcurrencyVisitor(ScopedVisitor):
    def __init__(self, module: SourceModule, imports: ImportMap, in_serve: bool) -> None:
        super().__init__(module)
        self.imports = imports
        self.in_serve = in_serve
        self.mutables = _module_level_mutables(module.tree, imports)  # type: ignore[arg-type]
        self.findings: list[Finding] = []
        self._locals_cache: dict[ast.AST, set[str]] = {}

    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=rule.code,
                message=message,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=self.qualname(),
            )
        )

    # -- RPR002: global rebinding ---------------------------------------- #
    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self._emit(
                RULE_MODULE_STATE,
                node,
                f"function rebinds module-level name '{name}' via `global`",
            )

    # -- shared dispatch -------------------------------------------------- #
    def handle_node(self, node: ast.AST) -> None:
        if self.in_serve:
            self._check_reader_locks(node)
        if self.current_function is not None:
            self._check_module_state_mutation(node)
        if self.in_async and isinstance(node, ast.Call):
            self._check_blocking_call(node)

    # -- RPR001 ------------------------------------------------------------ #
    def _check_reader_locks(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.partition(".")[0] == "fcntl":
                    self._emit(
                        RULE_READER_LOCKS, node, "serve-side module imports fcntl"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.partition(".")[0] == "fcntl":
                self._emit(RULE_READER_LOCKS, node, "serve-side module imports fcntl")
            elif node.module:
                for alias in node.names:
                    if alias.name in _WRITER_NAMES:
                        self._emit(
                            RULE_READER_LOCKS,
                            node,
                            f"serve-side module imports writer-locked API "
                            f"'{alias.name}'",
                        )
        elif isinstance(node, ast.Attribute):
            if node.attr in _WRITER_NAMES:
                self._emit(
                    RULE_READER_LOCKS,
                    node,
                    f"serve-side code reaches writer-locked API '{node.attr}'",
                )
            elif node.attr == "open":
                receiver = dotted_name(node.value)
                if receiver is not None and receiver.endswith("MaintenanceSession"):
                    self._emit(
                        RULE_READER_LOCKS,
                        node,
                        "serve-side code opens the writer-locked "
                        "MaintenanceSession; follow snapshots via peek()/"
                        "read_session_state() instead",
                    )
        elif isinstance(node, ast.Name) and node.id in _WRITER_NAMES:
            self._emit(
                RULE_READER_LOCKS,
                node,
                f"serve-side code references writer-locked API '{node.id}'",
            )

    # -- RPR002: container mutation ---------------------------------------- #
    def _function_locals(self) -> set[str]:
        function = self.function_stack[0]
        cached = self._locals_cache.get(function)
        if cached is None:
            cached = _local_bindings(function)
            self._locals_cache[function] = cached
        return cached

    def _is_module_mutable(self, name_node: ast.AST) -> str | None:
        if not isinstance(name_node, ast.Name):
            return None
        name = name_node.id
        if name not in self.mutables:
            return None
        if name in self._function_locals():
            return None  # shadowed by a local binding
        return name

    def _check_module_state_mutation(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                name = self._is_module_mutable(node.func.value)
                if name is not None:
                    self._emit(
                        RULE_MODULE_STATE,
                        node,
                        f"function mutates module-level container '{name}' "
                        f"via .{node.func.attr}()",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    name = self._is_module_mutable(target.value)
                    if name is not None:
                        self._emit(
                            RULE_MODULE_STATE,
                            node,
                            f"function writes into module-level container "
                            f"'{name}' by subscript",
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = self._is_module_mutable(target.value)
                    if name is not None:
                        self._emit(
                            RULE_MODULE_STATE,
                            node,
                            f"function deletes from module-level container "
                            f"'{name}'",
                        )

    # -- RPR003 ------------------------------------------------------------ #
    def _check_blocking_call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved in _BLOCKING_CALLS:
            self._emit(
                RULE_BLOCKING_ASYNC,
                node,
                f"blocking call '{resolved}' inside async def "
                f"'{self.current_function.name}'",  # type: ignore[union-attr]
            )


class ConcurrencyChecker(Checker):
    rules = (RULE_READER_LOCKS, RULE_MODULE_STATE, RULE_BLOCKING_ASYNC)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None:
            return
        imports = ImportMap(module.tree)
        in_serve = "serve" in module.parts
        visitor = _ConcurrencyVisitor(module, imports, in_serve)
        visitor.visit(module.tree)
        yield from visitor.findings

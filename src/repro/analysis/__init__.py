"""Project-specific static analysis (``repro lint``).

AST checkers that mechanically enforce the invariants the architecture
docs pin in prose: lock discipline in the serving tier, the
fsync-then-atomic-rename durability protocol, kernel copy-on-write purity,
snapshot binary-layout geometry, and exception hygiene.  See
``docs/analysis.md`` for the rule catalogue and the suppression/baseline
workflow.
"""

from .framework import (
    Baseline,
    Checker,
    Finding,
    LintReport,
    Rule,
    render_json,
    render_text,
    rules_catalog,
    run_lint,
)

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintReport",
    "Rule",
    "render_json",
    "render_text",
    "rules_catalog",
    "run_lint",
]

"""Checker framework for ``repro lint``.

The analysis subsystem turns the invariants pinned in prose by
``docs/architecture.md`` into mechanical AST checks: every rule has a stable
``RPR0xx`` code, findings can be suppressed inline with
``# repro: ignore[RPRnnn]`` on the offending line, and a committed baseline
file grandfathers historical findings so only *new* violations fail the
build (exit status 2).

The pieces:

* :class:`Rule` / :class:`Finding` — the vocabulary shared by checkers,
  reporters, and the baseline.
* :class:`SourceModule` / :class:`Project` — one parsed file and the whole
  scanned tree; checkers get both so cross-module rules (e.g. comparing a
  kernel subclass against the ABC it implements) stay cheap.
* :class:`Checker` — base class; subclasses declare ``rules`` and implement
  :meth:`Checker.check`.
* :class:`Baseline` — load/save and membership for grandfathered findings.
  Identity deliberately excludes the line number so unrelated edits above a
  grandfathered hit do not un-baseline it.
* :func:`run_lint` — walk, parse, check, filter (suppressions, ``--select``,
  baseline) and return a :class:`LintReport`.
* :func:`render_text` / :func:`render_json` — the two reporters.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

from ..errors import AnalysisError

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "ImportMap",
    "LintReport",
    "PARSE_ERROR",
    "Project",
    "Rule",
    "ScopedVisitor",
    "SourceModule",
    "dotted_name",
    "iter_nodes",
    "render_json",
    "render_text",
    "rules_catalog",
    "run_lint",
]

JSON_REPORT_VERSION = 1

_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Rule:
    """One checkable invariant: a stable code, a slug, and a summary."""

    code: str
    name: str
    summary: str


#: Pseudo-rule for files the scanner cannot parse.  Always reported; never
#: filtered by ``--select`` and never eligible for the baseline.
PARSE_ERROR = Rule(
    "RPR000",
    "parse-error",
    "The file could not be parsed as Python; nothing else can be checked.",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    ``symbol`` is the dotted in-module scope (``Class.method``) — it feeds
    the baseline identity so findings survive line drift.
    """

    code: str
    message: str
    path: str
    line: int
    column: int
    symbol: str = ""

    @property
    def identity(self) -> tuple[str, str, str, str]:
        """Baseline identity: everything except the (volatile) position."""
        return (self.path, self.code, self.symbol, self.message)

    def to_json(self, *, baselined: bool = False) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "baselined": baselined,
        }


class SourceModule:
    """A parsed source file plus its inline suppression table."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_error = exc
        self.suppressions = self._scan_suppressions(source)

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(Path(self.relpath).parts)

    @property
    def filename(self) -> str:
        return Path(self.relpath).name

    @staticmethod
    def _scan_suppressions(source: str) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(line)
            if match:
                codes = frozenset(
                    code.strip().upper()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                if codes:
                    table[lineno] = codes
        return table

    def suppressed(self, finding: Finding) -> bool:
        return finding.code in self.suppressions.get(finding.line, frozenset())


class Project:
    """The whole scanned tree, for checkers that need cross-module context."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)

    def find(self, relpath_suffix: str) -> SourceModule | None:
        """Return the first module whose relative path ends with the suffix."""
        suffix = Path(relpath_suffix).parts
        for module in self.modules:
            if module.parts[-len(suffix) :] == suffix:
                return module
        return None


class Checker:
    """Base class for rule groups.  Subclasses set ``rules`` and ``check``."""

    rules: ClassVar[tuple[Rule, ...]] = ()

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


class Baseline:
    """Grandfathered findings: identity tuples loaded from a JSON file."""

    def __init__(self, entries: Iterable[tuple[str, str, str, str]] = ()) -> None:
        self.entries = frozenset(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"unreadable lint baseline {path}: {exc}") from exc
        entries = []
        for row in payload.get("findings", []):
            entries.append(
                (
                    str(row.get("path", "")),
                    str(row.get("code", "")),
                    str(row.get("symbol", "")),
                    str(row.get("message", "")),
                )
            )
        return cls(entries)

    @staticmethod
    def render(findings: Sequence[Finding]) -> str:
        rows = [
            {
                "path": finding.path,
                "code": finding.code,
                "symbol": finding.symbol,
                "message": finding.message,
            }
            for finding in sorted(findings, key=lambda f: f.identity)
        ]
        return json.dumps({"version": 1, "findings": rows}, indent=2) + "\n"

    def matches(self, finding: Finding) -> bool:
        return finding.identity in self.entries


@dataclass
class LintReport:
    """What a lint run produced, split by disposition."""

    findings: list[Finding]
    baselined: list[Finding]
    suppressed: int
    files_checked: int
    rules: tuple[Rule, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, field-order traversal (preserves statement order,
    unlike :func:`ast.walk`'s breadth-first order)."""
    yield node
    for child in ast.iter_child_nodes(node):
        yield from iter_nodes(child)


class ImportMap:
    """Resolve local call names back to qualified dotted names.

    ``import time as t`` makes ``t.sleep`` resolve to ``time.sleep``;
    ``from os import fsync`` makes ``fsync`` resolve to ``os.fsync``.
    Unresolvable heads pass through unchanged.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the class/function nesting stack.

    Subclasses override ``handle_*`` hooks; traversal stays in the base so
    the stacks cannot drift.
    """

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.class_stack: list[ast.ClassDef] = []
        self.function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    # -- hooks ---------------------------------------------------------- #
    def handle_classdef(self, node: ast.ClassDef) -> None:
        """Called on entering a class body."""

    def handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Called on entering a function body."""

    def handle_node(self, node: ast.AST) -> None:
        """Called for every other node."""

    # -- traversal ------------------------------------------------------ #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.handle_classdef(node)
        self.class_stack.append(node)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.handle_function(node)
        self.function_stack.append(node)
        self.generic_visit(node)
        self.function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def generic_visit(self, node: ast.AST) -> None:
        self.handle_node(node)
        super().generic_visit(node)

    # -- context -------------------------------------------------------- #
    @property
    def current_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        return self.function_stack[-1] if self.function_stack else None

    @property
    def in_async(self) -> bool:
        return isinstance(self.current_function, ast.AsyncFunctionDef)

    def qualname(self) -> str:
        parts = [node.name for node in self.class_stack]
        parts.extend(node.name for node in self.function_stack)
        return ".".join(parts)


# --------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------- #
def _all_checkers() -> list[Checker]:
    # Imported lazily so framework helpers stay importable from the checker
    # modules without a cycle.
    from .concurrency import ConcurrencyChecker
    from .durability import DurabilityChecker
    from .exceptions import ExceptionHygieneChecker
    from .kernels import KernelPurityChecker
    from .layout import BinaryLayoutChecker
    from .policies import PolicyPurityChecker

    return [
        ConcurrencyChecker(),
        DurabilityChecker(),
        KernelPurityChecker(),
        BinaryLayoutChecker(),
        ExceptionHygieneChecker(),
        PolicyPurityChecker(),
    ]


def rules_catalog() -> tuple[Rule, ...]:
    """Every shipped rule, parse-error pseudo-rule first, then by code."""
    rules = [PARSE_ERROR]
    for checker in _all_checkers():
        rules.extend(checker.rules)
    return tuple(sorted(rules, key=lambda rule: rule.code))


def _iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"lint path does not exist: {path}")
    return files


def _relative_path(path: Path) -> str:
    try:
        relative = os.path.relpath(path, Path.cwd())
    except ValueError:  # different drive (Windows)
        return path.as_posix()
    if relative.startswith(".."):
        return path.as_posix()
    return Path(relative).as_posix()


def load_project(paths: Sequence[Path]) -> Project:
    modules = []
    for file in _iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        modules.append(SourceModule(file, _relative_path(file), source))
    return Project(modules)


def run_lint(
    paths: Sequence[Path],
    *,
    select: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Scan ``paths`` and return the report.

    ``select`` restricts reporting to the given rule codes (parse errors are
    always reported).  ``baseline`` diverts matching findings out of the
    failing set.
    """
    project = load_project(paths)
    checkers = _all_checkers()
    selected = {code.upper() for code in select} if select is not None else None
    baseline = baseline or Baseline()

    raw: list[Finding] = []
    for module in project.modules:
        if module.parse_error is not None:
            error = module.parse_error
            raw.append(
                Finding(
                    code=PARSE_ERROR.code,
                    message=f"syntax error: {error.msg}",
                    path=module.relpath,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                )
            )
            continue
        for checker in checkers:
            raw.extend(checker.check(module, project))

    by_path = {module.relpath: module for module in project.modules}
    new: list[Finding] = []
    baselined: list[Finding] = []
    suppressed = 0
    for finding in raw:
        if finding.code != PARSE_ERROR.code:
            if selected is not None and finding.code not in selected:
                continue
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding):
                suppressed += 1
                continue
            if baseline.matches(finding):
                baselined.append(finding)
                continue
        new.append(finding)

    def sort_key(finding: Finding) -> tuple[str, int, str]:
        return (finding.path, finding.line, finding.code)

    return LintReport(
        findings=sorted(new, key=sort_key),
        baselined=sorted(baselined, key=sort_key),
        suppressed=suppressed,
        files_checked=len(project.modules),
        rules=rules_catalog(),
    )


# --------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------- #
def render_text(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        location = f"{finding.path}:{finding.line}:{finding.column + 1}"
        symbol = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(f"{location}: {finding.code} {finding.message}{symbol}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        f" ({len(report.baselined)} baselined, {report.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    payload = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro lint",
        "files_checked": report.files_checked,
        "rules": [
            {"code": rule.code, "name": rule.name, "summary": rule.summary}
            for rule in report.rules
        ],
        "findings": [finding.to_json(baselined=False) for finding in report.findings]
        + [finding.to_json(baselined=True) for finding in report.baselined],
        "summary": {
            "new": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
        },
    }
    return json.dumps(payload, indent=2) + "\n"

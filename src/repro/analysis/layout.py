"""Binary-layout checkers (RPR030–RPR031).

Snapshot format v2 declares its geometry as module constants in
``db/store.py``: a ``struct`` header format, a reserved header size, and a
64-byte section alignment.  The file format is only self-consistent when
the packed struct fits inside the reserved header and the reserved sizes
are multiples of the alignment — drift here corrupts every snapshot ever
written.  These rules evaluate the *actual* format strings with
:func:`struct.calcsize` against the declared constants, so the geometry is
re-proved on every lint run instead of trusted to a comment.
"""

from __future__ import annotations

import ast
import struct
from typing import Iterator

from .framework import (
    Checker,
    Finding,
    ImportMap,
    Project,
    Rule,
    SourceModule,
)

__all__ = ["BinaryLayoutChecker"]

RULE_FORMAT = Rule(
    "RPR030",
    "struct-layout-mismatch",
    "struct format strings must parse, and a declared <NAME>_SIZE constant "
    "must be at least struct.calcsize(<NAME>) — otherwise reads and writes "
    "disagree about where the payload starts.",
)
RULE_ALIGNMENT = Rule(
    "RPR031",
    "layout-misaligned",
    "Declared *_ALIGN constants must be powers of two (>= 8), and every "
    "paired *_SIZE constant must be a multiple of its alignment — the "
    "zero-copy mmap path requires aligned sections.",
)


def _safe_calcsize(fmt: str) -> int | None:
    try:
        return struct.calcsize(fmt)
    except struct.error:
        return None


def _module_constants(tree: ast.Module) -> tuple[dict[str, tuple[str, ast.AST]], dict[str, tuple[int, ast.AST]]]:
    """(struct-format defs, integer constants) bound at module level."""
    imports = ImportMap(tree)
    formats: dict[str, tuple[str, ast.AST]] = {}
    integers: dict[str, tuple[int, ast.AST]] = {}

    def scan(statements: list[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                targets, value = [statement.target], statement.value
            if value is not None:
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if (
                        isinstance(value, ast.Call)
                        and imports.resolve(value.func) == "struct.Struct"
                        and value.args
                        and isinstance(value.args[0], ast.Constant)
                        and isinstance(value.args[0].value, str)
                    ):
                        formats[target.id] = (value.args[0].value, statement)
                    elif isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ) and not isinstance(value.value, bool):
                        integers[target.id] = (value.value, statement)
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(statement, attr, None)
                if nested:
                    scan(nested)

    scan(tree.body)
    return formats, integers


class BinaryLayoutChecker(Checker):
    rules = (RULE_FORMAT, RULE_ALIGNMENT)

    def check(self, module: SourceModule, project: Project) -> Iterator[Finding]:
        if module.tree is None:
            return
        imports = ImportMap(module.tree)
        formats, integers = _module_constants(module.tree)

        def finding(rule: Rule, node: ast.AST, message: str, symbol: str) -> Finding:
            return Finding(
                code=rule.code,
                message=message,
                path=module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=symbol,
            )

        # Every literal format string handed to struct anywhere in the file
        # must at least parse.
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and imports.resolve(node.func) in {"struct.calcsize", "struct.pack", "struct.unpack", "struct.Struct"}
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                fmt = node.args[0].value
                if _safe_calcsize(fmt) is None:
                    yield finding(
                        RULE_FORMAT,
                        node,
                        f"invalid struct format {fmt!r}",
                        "",
                    )

        # Alignment constants stand on their own.
        aligns = {
            name: (value, node)
            for name, (value, node) in integers.items()
            if name.endswith("_ALIGN")
        }
        for name, (value, node) in aligns.items():
            if value < 8 or value & (value - 1):
                yield finding(
                    RULE_ALIGNMENT,
                    node,
                    f"{name} = {value} is not a power of two >= 8",
                    name,
                )

        # Struct defs vs their declared reserved sizes.
        for name, (fmt, _node) in formats.items():
            packed = _safe_calcsize(fmt)
            if packed is None:
                continue  # already reported above
            size_name = f"{name}_SIZE"
            if size_name not in integers:
                continue
            declared, size_node = integers[size_name]
            if declared < packed:
                yield finding(
                    RULE_FORMAT,
                    size_node,
                    f"{size_name} = {declared} is smaller than "
                    f"struct.calcsize({name}) = {packed}",
                    size_name,
                )
            for align_name, (align, _align_node) in aligns.items():
                prefix = align_name[: -len("_ALIGN")]
                if not size_name.startswith(prefix):
                    continue
                if align and declared % align:
                    yield finding(
                        RULE_ALIGNMENT,
                        size_node,
                        f"{size_name} = {declared} is not a multiple of "
                        f"{align_name} = {align}",
                        size_name,
                    )

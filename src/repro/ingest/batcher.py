"""Micro-batching: cut an event stream into update batches on watermarks.

FUP's economics want chunky batches (one O(d) maintenance pass amortised
over many transactions), while a streaming front door wants bounded
latency.  The :class:`MicroBatcher` trades between the two with the usual
pair of watermarks:

* a **count watermark** (``max_events``): a batch never holds more than
  this many events, so memory per batch is bounded;
* a **time watermark** (``max_seconds``): once the *first* event of a batch
  is this old, the batch cuts whether or not it is full, so a trickle of
  events still reaches the rule lattice promptly.

Time is read from an injectable monotonic clock, called **exactly once per
call** — so for a fixed injected clock the batch boundaries are a pure
function of the call sequence, which is what the property suite asserts.
The batcher never sleeps and never looks at the wall clock on its own;
follow-mode loops call :meth:`MicroBatcher.poll` on their own cadence to
cut an aging partial batch.
"""

from __future__ import annotations

import time
from typing import Callable

from .readers import IngestEvent

__all__ = ["DEFAULT_BATCH_EVENTS", "MicroBatcher"]

#: Default count watermark — chunky enough that FUP's per-batch pass
#: dominates per-event overhead, small enough to keep batches responsive.
DEFAULT_BATCH_EVENTS = 500


class MicroBatcher:
    """Accumulates events; cuts batches on count/time watermarks."""

    def __init__(
        self,
        *,
        max_events: int = DEFAULT_BATCH_EVENTS,
        max_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError(f"max_seconds must be positive, got {max_seconds}")
        self._max_events = max_events
        self._max_seconds = max_seconds
        self._clock = clock
        self._pending: list[IngestEvent] = []
        self._deadline: float | None = None

    @property
    def pending(self) -> int:
        """Events accumulated but not yet cut into a batch."""
        return len(self._pending)

    def offer(self, event: IngestEvent) -> list[list[IngestEvent]]:
        """Admit one event; return the batches this caused to cut.

        Usually zero or one batch; two when the time watermark cuts the
        aging batch *and* ``max_events == 1`` immediately fills the next.
        An event arriving after the previous batch's deadline belongs to
        the **next** batch — the deadline bounds a batch's age, it does not
        stretch to cover late arrivals.
        """
        now = self._clock()
        cuts: list[list[IngestEvent]] = []
        if self._pending and self._deadline is not None and now >= self._deadline:
            cuts.append(self._cut())
        self._pending.append(event)
        if len(self._pending) == 1 and self._max_seconds is not None:
            self._deadline = now + self._max_seconds
        if len(self._pending) >= self._max_events:
            cuts.append(self._cut())
        return cuts

    def poll(self) -> list[IngestEvent] | None:
        """Cut the pending batch iff its time watermark has passed.

        The follow-mode tick: called between stream polls so a partial
        batch is not held hostage by a quiet producer.
        """
        if self._pending and self._deadline is not None:
            if self._clock() >= self._deadline:
                return self._cut()
        return None

    def flush(self) -> list[IngestEvent] | None:
        """Cut whatever is pending (end of stream / shutdown)."""
        if self._pending:
            return self._cut()
        return None

    def _cut(self) -> list[IngestEvent]:
        batch, self._pending = self._pending, []
        self._deadline = None
        return batch

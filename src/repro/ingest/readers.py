"""Incremental, bounded-memory readers over transaction event streams.

An event stream is a line-oriented file (or pipe) of *intake events*: a
client-supplied idempotency key, an operation, and one transaction.  Two
formats carry the same model:

``jsonl``
    One JSON object per line: ``{"key": "order-17", "op": "insert",
    "items": [3, 9, 41]}``.  ``op`` defaults to ``insert``.
``csv``
    ``key,op,items`` rows where ``items`` is a space-separated item list:
    ``order-17,insert,3 9 41``.

The reader never holds more than one chunk plus one partial record in
memory, whatever the file size — it splits complete lines off an internal
buffer as chunks arrive.  An *unterminated* final line (the producer was
killed mid-write and the newline never made it out) is not an error: the
bytes stay buffered, :attr:`EventStreamReader.torn_tail` reports them, and
a follow-mode re-poll parses the record once the producer finishes (or
replays) it.  A *complete* line that does not parse is corruption and
raises :class:`~repro.errors.IngestError` — mirroring the session journal's
torn-versus-damaged distinction.
"""

from __future__ import annotations

import csv
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from ..db.transaction_db import Transaction, _canonical_transaction
from ..errors import IngestError, ReproError

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EventStreamReader",
    "FORMAT_NAMES",
    "IngestEvent",
    "open_event_stream",
    "sniff_format",
]

FORMAT_NAMES = ("jsonl", "csv")
OP_NAMES = ("insert", "delete")

#: Bytes pulled off the stream per read — the memory bound, along with one
#: partial record.
DEFAULT_CHUNK_SIZE = 64 * 1024

#: A single unterminated line longer than this is a runaway producer (or a
#: binary file), not a torn record; refuse instead of buffering forever.
_MAX_RECORD_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class IngestEvent:
    """One intake event: an idempotency key, an operation, a transaction.

    The key is the producer's replay token — two events with the same key
    are the same event, and the intake ledger guarantees at most one of
    them is ever applied.
    """

    key: str
    op: str
    items: Transaction


def _make_event(key: object, op: object, items: object, where: str) -> IngestEvent:
    if isinstance(key, bool) or not isinstance(key, (str, int)):
        raise IngestError(f"{where}: event key must be a string, got {key!r}")
    key_text = str(key)
    if not key_text:
        raise IngestError(f"{where}: event key must not be empty")
    if op not in OP_NAMES:
        raise IngestError(
            f"{where}: event op must be one of {'/'.join(OP_NAMES)}, got {op!r}"
        )
    if not isinstance(items, (list, tuple)):
        raise IngestError(f"{where}: event items must be a list, got {items!r}")
    if not items:
        raise IngestError(f"{where}: event transaction must not be empty")
    try:
        transaction = _canonical_transaction(items)
    except ReproError as exc:
        raise IngestError(f"{where}: invalid transaction: {exc}") from exc
    return IngestEvent(key=key_text, op=str(op), items=transaction)


def _parse_jsonl(line: str, where: str) -> IngestEvent:
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise IngestError(f"{where}: invalid JSON event record: {exc}") from exc
    if not isinstance(payload, dict):
        raise IngestError(f"{where}: event record must be a JSON object")
    return _make_event(
        payload.get("key"), payload.get("op", "insert"), payload.get("items"), where
    )


def _parse_csv(line: str, where: str) -> IngestEvent:
    try:
        row = next(csv.reader([line]))
    except (csv.Error, StopIteration) as exc:
        raise IngestError(f"{where}: invalid CSV event record: {exc}") from exc
    if len(row) != 3:
        raise IngestError(
            f"{where}: expected 3 CSV columns (key,op,items), got {len(row)}"
        )
    key, op, items_text = row
    items: list[object] = []
    for token in items_text.split():
        try:
            items.append(int(token))
        except ValueError:
            raise IngestError(f"{where}: non-integer item {token!r}") from None
    return _make_event(key, op, items, where)


_PARSERS = {"jsonl": _parse_jsonl, "csv": _parse_csv}


def sniff_format(path: Path) -> str:
    """Infer the record format from a file suffix (or refuse, loudly)."""
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    if suffix == ".csv":
        return "csv"
    raise IngestError(
        f"cannot infer an event format from {path.name!r}; pass jsonl or csv "
        f"explicitly"
    )


class EventStreamReader:
    """Pull-based incremental reader over a byte stream of event records.

    :meth:`events` yields every complete event currently available and
    returns when the stream has (for now) no more bytes; calling it again
    continues from exactly where the previous pass stopped — including a
    buffered partial line — which is what follow mode does after each poll
    interval.  ``read1`` is preferred over ``read`` where the stream offers
    it, so a pipe yields events as the producer writes them instead of
    blocking until a full chunk accumulates.
    """

    def __init__(
        self,
        stream: IO[bytes],
        format: str,
        *,
        name: str = "<stream>",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        owns_stream: bool = False,
    ) -> None:
        if format not in _PARSERS:
            raise IngestError(
                f"unknown event format {format!r}; expected one of {FORMAT_NAMES}"
            )
        self._stream = stream
        self._read = getattr(stream, "read1", stream.read)
        self._parse = _PARSERS[format]
        self._name = name
        self._chunk_size = chunk_size
        self._owns_stream = owns_stream
        self._buffer = b""
        self._line_no = 0
        self.format = format

    @property
    def name(self) -> str:
        return self._name

    @property
    def lines(self) -> int:
        """Complete lines consumed so far (blank lines included)."""
        return self._line_no

    @property
    def torn_tail(self) -> bytes:
        """Buffered bytes of an unterminated final record (b"" if none)."""
        return self._buffer

    def events(self) -> Iterator[IngestEvent]:
        """Yield available events; return at (the current) end of stream."""
        while True:
            chunk = self._read(self._chunk_size)
            if not chunk:
                return
            self._buffer += chunk
            yield from self._drain()
            if len(self._buffer) > _MAX_RECORD_BYTES:
                raise IngestError(
                    f"{self._name}:{self._line_no + 1}: unterminated record "
                    f"exceeds {_MAX_RECORD_BYTES} bytes; refusing to buffer it"
                )

    def _drain(self) -> Iterator[IngestEvent]:
        while True:
            newline = self._buffer.find(b"\n")
            if newline == -1:
                return
            raw = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1 :]
            self._line_no += 1
            where = f"{self._name}:{self._line_no}"
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise IngestError(f"{where}: undecodable record bytes: {exc}") from exc
            if not line.strip():
                continue
            yield self._parse(line, where)

    def close(self) -> None:
        """Close the underlying stream iff this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "EventStreamReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_event_stream(
    source: str | Path,
    format: str | None = None,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> EventStreamReader:
    """Open *source* (a path, or ``-`` for stdin) as an event-stream reader.

    The format is sniffed from the file suffix when not given; stdin
    defaults to ``jsonl``.
    """
    if str(source) == "-":
        return EventStreamReader(
            sys.stdin.buffer, format or "jsonl", name="<stdin>", chunk_size=chunk_size
        )
    path = Path(source)
    resolved = format or sniff_format(path)
    try:
        stream = path.open("rb")
    except OSError as exc:
        raise IngestError(f"cannot open event stream {path}: {exc}") from exc
    return EventStreamReader(
        stream, resolved, name=str(path), chunk_size=chunk_size, owns_stream=True
    )

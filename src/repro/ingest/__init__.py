"""Streaming ingestion: the continuously-updating front door to a session.

The paper argues rule maintenance should be incremental; this package makes
the *system* incremental end to end.  Producers append intake events (key +
operation + transaction) to a JSONL/CSV stream; the readers parse it in
bounded memory (tolerating a torn final record), the micro-batcher cuts
count/time-watermark batches, and the intake layer applies each batch to a
durable :class:`~repro.core.session.MaintenanceSession` with at-least-once
delivery deduplicated through the fsynced intake ledger — so a crashed
producer simply replays its whole stream and nothing is double-counted.

Layering: ``ingest`` imports ``core`` (session, journal machinery), never
the reverse — the session sees the ledger only through the duck-typed
:meth:`~repro.core.session.MaintenanceSession.attach_ledger` hook.

See ``docs/ingestion.md`` for the ledger format, the at-least-once
contract, watermark semantics and the crash matrix the fault-injection
suite enforces.
"""

from .batcher import DEFAULT_BATCH_EVENTS, MicroBatcher
from .intake import IntakeReport, TransactionIntake
from .ledger import LEDGER_NAME, IntakeLedger
from .pipeline import IngestSummary, run_ingest
from .readers import (
    DEFAULT_CHUNK_SIZE,
    FORMAT_NAMES,
    EventStreamReader,
    IngestEvent,
    open_event_stream,
    sniff_format,
)

__all__ = [
    "DEFAULT_BATCH_EVENTS",
    "DEFAULT_CHUNK_SIZE",
    "EventStreamReader",
    "FORMAT_NAMES",
    "IngestEvent",
    "IngestSummary",
    "IntakeLedger",
    "IntakeReport",
    "LEDGER_NAME",
    "MicroBatcher",
    "TransactionIntake",
    "open_event_stream",
    "run_ingest",
    "sniff_format",
]

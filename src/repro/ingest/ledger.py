"""The intake ledger: a durable seen-set making at-least-once intake idempotent.

Producers deliver *at least* once — a producer that crashes mid-stream
replays its whole stream, and a network retry redelivers a batch that was
in fact applied.  The ledger turns that into *exactly once applied*: every
event carries a client-supplied key, and a key the ledger has seen is
dropped before it can reach the rule lattice a second time.

Format (``ledger.jsonl`` in the session directory)
--------------------------------------------------

One JSON record per committed micro-batch, append-only, fsynced per append
(through the session journal's audited :class:`~repro.core.session._Journal`
machinery)::

    {"seq": 7, "keys": ["order-41", "order-42"], "events": 120}

``seq``
    The session's ``applied_seq`` at commit time — the batch these keys
    rode in on.  A batch that deduplicated to empty commits under the
    *unchanged* seq: the high-water mark advances without burning a
    sequence number.
``keys``
    The event keys this commit adds to the seen-set (only the fresh ones —
    duplicates are never re-recorded).
``events``
    Cumulative raw events accepted so far, duplicates included — the
    intake's high-water mark.  Monotone across records; after a crash it
    recovers as a lower bound (the duplicate count inside the lost batch
    is not reconstructible, the seen-set is).

Crash consistency
-----------------

The ledger is committed **after** the session journal's fsynced append (see
:meth:`~repro.core.session.MaintenanceSession.apply`), so a crash between
the two loses only the ledger record — never an applied batch.  Recovery
closes the gap from the journal side: :meth:`IntakeLedger.reconcile`
re-commits any keys a journal record carries that the seen-set lacks.  The
opposite order would be unsound: a ledger that knows keys the journal lost
would drop a replayed event that was never applied.

A torn final ledger line (crash mid-append) is truncated on open, exactly
like the journal's.  :meth:`IntakeLedger.compact` collapses the file to a
single record holding the whole seen-set — staged through a ``*_tmp`` path
and :func:`~repro.core.session._atomic_replace`, the audited rename path —
and runs automatically at session checkpoints.

Single-writer discipline: the ledger lives inside a session directory and
is only ever written by the process holding the session's ``flock`` (it is
opened by the intake layer *after* the session lock is taken and attached
via :meth:`~repro.core.session.MaintenanceSession.attach_ledger`, which
also hands the session its lifetime).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.session import _atomic_replace, _Journal, _read_journal
from ..errors import StorageError
from ..faults import crash_point

__all__ = ["LEDGER_NAME", "IntakeLedger"]

LEDGER_NAME = "ledger.jsonl"


class IntakeLedger:
    """Durable, compactable seen-set of intake event keys.

    Construct through :meth:`open`; the constructor itself is internal.
    """

    def __init__(
        self,
        path: Path,
        journal: _Journal,
        seen: set[str],
        applied_seq: int,
        events_seen: int,
        records: int,
    ) -> None:
        self._path = path
        self._journal = journal
        self._seen = seen
        self._applied_seq = applied_seq
        self._events_seen = events_seen
        self._records = records
        self._closed = False

    @classmethod
    def open(cls, directory: str | Path) -> "IntakeLedger":
        """Open (creating if needed) the ledger of a session directory.

        A torn final line is truncated away; corruption before the final
        line raises :class:`~repro.errors.StorageError` — the same
        torn-versus-damaged rule the session journal enforces.
        """
        path = Path(directory) / LEDGER_NAME
        records, valid_length = _read_journal(path)
        seen: set[str] = set()
        applied_seq = 0
        events_seen = 0
        for record in records:
            keys = record.get("keys")
            if not isinstance(keys, list):
                raise StorageError(f"{path}: ledger record without a keys list")
            seen.update(str(key) for key in keys)
            applied_seq = max(applied_seq, int(record["seq"]))
            events_seen = max(events_seen, int(record.get("events", 0)))
        path.touch(exist_ok=True)
        torn = path.stat().st_size > valid_length
        journal = _Journal(path)
        if torn:
            # Scrub the torn bytes through the journal's audited truncate
            # (which fsyncs) so they cannot resurface after a later crash.
            journal.truncate_to(valid_length)
        return cls(
            path=path,
            journal=journal,
            seen=seen,
            applied_seq=applied_seq,
            events_seen=events_seen,
            records=len(records),
        )

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self._path

    @property
    def applied_seq(self) -> int:
        """Session seq of the newest committed record."""
        return self._applied_seq

    @property
    def events_seen(self) -> int:
        """Raw events accepted so far, duplicates included (high-water mark)."""
        return self._events_seen

    @property
    def records(self) -> int:
        """Records currently in the file (compaction resets this to 1)."""
        return self._records

    def __contains__(self, key: str) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    # ------------------------------------------------------------------ #
    # Write side (caller holds the session lock)
    # ------------------------------------------------------------------ #
    def commit(self, seq: int, keys: Iterable[str], events: int) -> None:
        """Durably record *keys* as seen and advance the high-water mark."""
        if self._closed:
            raise StorageError(f"intake ledger {self._path} is closed")
        fresh = [str(key) for key in keys]
        cumulative = self._events_seen + int(events)
        record = {"seq": int(seq), "keys": fresh, "events": cumulative}
        crash_point("mid-ledger-fsync", torn_write=lambda: self._journal.tear(record))
        self._journal.append(record)
        self._seen.update(fresh)
        self._applied_seq = max(self._applied_seq, int(seq))
        self._events_seen = cumulative
        self._records += 1

    def reconcile(self, journal_path: str | Path) -> int:
        """Re-commit keys the session journal holds but the seen-set lacks.

        The after-journal-before-ledger crash recovery: a journal record's
        batch *was* applied (recovery replays it), so its keys must be in
        the seen-set or a producer replay would double-apply them.  Returns
        the number of keys recovered.  The recovered ``events`` count is
        the key count — a lower bound, since the lost batch's duplicate
        count is not in the journal.
        """
        records, _ = _read_journal(Path(journal_path))
        recovered = 0
        for record in records:
            keys = record.get("keys")
            if not isinstance(keys, list):
                continue
            missing = [str(key) for key in keys if str(key) not in self._seen]
            if missing:
                self.commit(int(record["seq"]), missing, len(missing))
                recovered += len(missing)
        return recovered

    def compact(self) -> None:
        """Collapse the file to one record carrying the whole seen-set.

        Crash-safe by staging: the replacement is written to a ``*_tmp``
        path and atomically renamed over the ledger; a crash at any point
        leaves either the old multi-record file or the new single-record
        one, both describing the same seen-set.
        """
        if self._closed:
            raise StorageError(f"intake ledger {self._path} is closed")
        if self._records <= 1:
            return
        record = {
            "seq": self._applied_seq,
            "keys": sorted(self._seen),
            "events": self._events_seen,
        }
        ledger_tmp = self._path.with_suffix(".jsonl.tmp")
        ledger_tmp.write_text(
            json.dumps(record, separators=(",", ":")) + "\n", encoding="ascii"
        )
        # The append handle would keep pointing at the replaced inode;
        # close it around the rename and reopen on the new file.
        self._journal.close()
        _atomic_replace(ledger_tmp, self._path)
        self._journal = _Journal(self._path)
        self._records = 1

    def close(self) -> None:
        if not self._closed:
            self._journal.close()
            self._closed = True

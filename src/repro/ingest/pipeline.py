"""The ingest loop: reader → micro-batcher → idempotent intake, one session.

:func:`run_ingest` is what ``repro ingest`` and ``repro pipeline`` run on
their main thread.  It pulls events off an
:class:`~repro.ingest.readers.EventStreamReader`, lets the
:class:`~repro.ingest.batcher.MicroBatcher` cut them into batches, and
submits each batch through a :class:`~repro.ingest.intake.TransactionIntake`
— so durability and dedup live below this layer; this one only decides
*when* to stop:

* one-pass mode drains the stream and flushes the trailing partial batch;
* follow mode keeps re-polling the file (the reader resumes mid-record
  across polls, so a producer appending live is picked up record by
  record), cutting aging batches on the time watermark between polls,
  until ``max_seconds`` expires or ``stop`` is set.

Clock and sleep are injectable; the defaults are the monotonic clock and
:func:`time.sleep`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.session import MaintenanceSession
from .batcher import MicroBatcher
from .intake import IntakeReport, TransactionIntake
from .ledger import IntakeLedger
from .readers import EventStreamReader, IngestEvent

__all__ = ["IngestSummary", "run_ingest"]


@dataclass(frozen=True)
class IngestSummary:
    """Totals for one :func:`run_ingest` invocation."""

    events: int
    applied: int
    duplicates: int
    batches: int
    #: Session applied_seq when the loop ended.
    seq: int
    #: Keys recovered by startup journal↔ledger reconciliation.
    recovered_keys: int
    #: Bytes of an unterminated final record left in the reader's buffer.
    torn_tail: int


def run_ingest(
    session: MaintenanceSession,
    reader: EventStreamReader,
    batcher: MicroBatcher,
    *,
    follow: bool = False,
    poll_interval: float = 0.2,
    max_seconds: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    on_batch: Callable[[IntakeReport], None] | None = None,
    stop: Callable[[], bool] | None = None,
    ledger: IntakeLedger | None = None,
) -> IngestSummary:
    """Stream *reader* into *session*; return the run's totals."""
    intake = TransactionIntake(session, ledger)
    events = applied = duplicates = batches = 0

    def submit(cut: Sequence[IngestEvent]) -> None:
        nonlocal events, applied, duplicates, batches
        report = intake.submit(cut)
        events += report.events
        applied += report.applied
        duplicates += report.duplicates
        batches += 1
        if on_batch is not None:
            on_batch(report)

    deadline = None if max_seconds is None else clock() + max_seconds

    def expired() -> bool:
        if stop is not None and stop():
            return True
        return deadline is not None and clock() >= deadline

    done = False
    while not done:
        for event in reader.events():
            for cut in batcher.offer(event):
                submit(cut)
            if expired():
                done = True
                break
        else:
            # Stream exhausted (for now).  One-pass mode is finished; follow
            # mode cuts an aging batch and naps before re-polling.
            if not follow or expired():
                done = True
            else:
                aged = batcher.poll()
                if aged:
                    submit(aged)
                sleep(poll_interval)
    final = batcher.flush()
    if final:
        submit(final)
    return IngestSummary(
        events=events,
        applied=applied,
        duplicates=duplicates,
        batches=batches,
        seq=session.applied_seq,
        recovered_keys=intake.recovered_keys,
        torn_tail=len(reader.torn_tail),
    )

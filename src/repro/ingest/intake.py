"""Idempotent intake: dedup a micro-batch against the ledger, apply the rest.

The at-least-once contract, from the session's side: producers may deliver
any event any number of times, in any order; the intake applies each *key*
at most once.  :class:`TransactionIntake` binds a
:class:`~repro.core.session.MaintenanceSession` to its
:class:`~repro.ingest.ledger.IntakeLedger`, reconciles the two on startup
(closing any crash gap between journal and ledger), and turns event
micro-batches into session applies.

Delete semantics: deletions in a micro-batch refer to the database state
*before* the batch (the session's strict-deletion rule) — an insert and a
delete of the same transaction inside one micro-batch do not cancel out,
they fail loudly if the transaction was not already stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.maintenance import MaintenanceReport
from ..core.session import JOURNAL_NAME, MaintenanceSession
from ..db.update import UpdateBatch
from .ledger import IntakeLedger
from .readers import IngestEvent

__all__ = ["IntakeReport", "TransactionIntake"]


@dataclass(frozen=True)
class IntakeReport:
    """What one submitted micro-batch amounted to."""

    #: Raw events offered (duplicates included).
    events: int
    #: Events that survived dedup and were applied.
    applied: int
    #: Events dropped as already-seen (ledger or earlier in this batch).
    duplicates: int
    #: The session's applied_seq after the batch (unchanged when the batch
    #: deduplicated to empty — no sequence number is burned on a no-op).
    seq: int
    #: The maintainer's report for the applied batch.
    report: MaintenanceReport


class TransactionIntake:
    """Applies event micro-batches to a session, each event key at most once."""

    def __init__(
        self, session: MaintenanceSession, ledger: IntakeLedger | None = None
    ) -> None:
        # The session is already open, i.e. its directory flock is held —
        # so opening (and from here on writing) the ledger is single-writer
        # by construction.
        if ledger is None:
            ledger = IntakeLedger.open(session.directory)
        session.attach_ledger(ledger)
        self._session = session
        self._ledger = ledger
        # Close the journal→ledger crash gap before accepting new events:
        # keys journaled by an applied-but-uncommitted batch must be seen,
        # or this very producer's replay would double-count them.
        self._recovered_keys = ledger.reconcile(session.directory / JOURNAL_NAME)

    @property
    def session(self) -> MaintenanceSession:
        return self._session

    @property
    def ledger(self) -> IntakeLedger:
        return self._ledger

    @property
    def recovered_keys(self) -> int:
        """Keys re-committed from the journal during startup reconciliation."""
        return self._recovered_keys

    def submit(self, events: Sequence[IngestEvent]) -> IntakeReport:
        """Dedup *events* and apply the survivors as one session batch.

        A batch that deduplicates to empty still commits to the ledger —
        advancing the events high-water mark without journaling — so a
        replayed producer observes progress past its fully-duplicate
        batches instead of stalling on them forever.
        """
        fresh: list[IngestEvent] = []
        batch_keys: set[str] = set()
        duplicates = 0
        for event in events:
            if event.key in self._ledger or event.key in batch_keys:
                duplicates += 1
                continue
            batch_keys.add(event.key)
            fresh.append(event)
        label = f"ingest:{fresh[0].key}..{fresh[-1].key}" if fresh else ""
        batch = UpdateBatch(
            insertions=tuple(e.items for e in fresh if e.op == "insert"),
            deletions=tuple(e.items for e in fresh if e.op == "delete"),
            label=label,
        )
        report = self._session.apply(
            batch, keys=[e.key for e in fresh], events=len(events)
        )
        return IntakeReport(
            events=len(events),
            applied=len(fresh),
            duplicates=duplicates,
            seq=self._session.applied_seq,
            report=report,
        )

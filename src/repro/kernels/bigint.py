"""The arbitrary-precision big-int bitmap kernel (stdlib, always available).

This is the library's original vertical representation extracted behind the
:class:`~repro.kernels.base.BitmapKernel` seam: one Python ``int`` per item,
bit ``t`` set when transaction ``t`` contains the item.  Every operation is
a whole-mask big-int expression — C-speed per 30-digit limb — so the kernel
has no dependencies and no setup cost, which keeps it the default.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .base import BitmapKernel, Transaction, lane_words

if TYPE_CHECKING:
    from ..itemsets import Item, Itemset

__all__ = ["BigIntKernel"]


class BigIntKernel(BitmapKernel):
    """Item → big-int bitmap table."""

    name = "bigint"

    __slots__ = ("_masks", "_size")

    def __init__(self, masks: dict | None = None, size: int = 0) -> None:
        self._masks: dict = {} if masks is None else masks
        self._size = size

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, transactions: Sequence[Transaction]) -> "BigIntKernel":
        masks: dict = {}
        for tid, transaction in enumerate(transactions):
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
        return cls(masks, len(transactions))

    @classmethod
    def from_masks(cls, masks: dict, size: int) -> "BigIntKernel":
        return cls({item: mask for item, mask in masks.items() if mask}, size)

    @classmethod
    def from_payload(cls, payload: object) -> "BigIntKernel":
        masks, size = payload  # type: ignore[misc]
        return cls(dict(masks), int(size))

    @classmethod
    def from_lanes(
        cls, items: Sequence, lanes: bytes | memoryview, size: int
    ) -> "BigIntKernel":
        words = lane_words(size)
        row_bytes = words * 8
        view = memoryview(lanes)
        masks: dict = {}
        for row, item in enumerate(items):
            mask = int.from_bytes(view[row * row_bytes : (row + 1) * row_bytes], "little")
            if mask:
                masks[item] = mask
        return cls(masks, size)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return len(self._masks)

    def items(self) -> Iterator:
        return iter(self._masks)

    def __contains__(self, item: object) -> bool:
        return item in self._masks

    def mask(self, item: Item) -> int:
        return self._masks.get(item, 0)

    def masks(self) -> dict:
        return dict(self._masks)

    def item_counts(self) -> Counter:
        return Counter({item: mask.bit_count() for item, mask in self._masks.items()})

    def support(self, candidate: Itemset) -> int:
        bits = -1  # all-ones: the identity of bitwise AND
        for item in candidate:
            item_bits = self._masks.get(item)
            if not item_bits:
                return 0
            bits &= item_bits
            if not bits:
                return 0
        # An empty candidate leaves ``bits == -1``: contained in every
        # transaction, matching set.issubset semantics.
        return self._size if bits < 0 else bits.bit_count()

    def count_candidates(self, candidates: Sequence) -> dict:
        masks = self._masks
        counts: dict = {}
        for candidate in candidates:
            bits = -1
            for item in candidate:
                item_bits = masks.get(item)
                if not item_bits:
                    bits = 0
                    break
                bits &= item_bits
                if not bits:
                    break
            # ``(0).bit_count()`` is already 0, so no zero-guard is needed;
            # only the empty-candidate sentinel (-1) needs special casing.
            counts[candidate] = self._size if bits < 0 else bits.bit_count()
        return counts

    # ------------------------------------------------------------------ #
    # Delta maintenance
    # ------------------------------------------------------------------ #
    def append(self, transaction: Transaction) -> None:
        bit = 1 << self._size
        masks = self._masks
        for item in transaction:
            masks[item] = masks.get(item, 0) | bit
        self._size += 1

    def extend(self, transactions: Iterable[Transaction]) -> None:
        masks = self._masks
        tid = self._size
        for transaction in transactions:
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
            tid += 1
        self._size = tid

    def delete_tids(self, tids: Sequence[int]) -> None:
        # Kept segments between deletions: (start, window-mask, width).
        segments: list[tuple[int, int, int]] = []
        previous = 0
        for tid in tids:
            if tid > previous:
                width = tid - previous
                segments.append((previous, (1 << width) - 1, width))
            previous = tid + 1
        tail_start = previous  # everything at or above this survives unbounded

        masks = self._masks
        if not segments:
            # Contiguous prefix deletion (the sliding-window case): every
            # mask compacts with a single shift.
            self._masks = {
                item: shifted
                for item, mask in masks.items()
                if (shifted := mask >> tail_start)
            }
        elif len(segments) == 1 and segments[0][0] == 0:
            # One contiguous deleted range: keep the low window, slide the
            # tail down — two shifts and an OR per mask.
            _, window, width = segments[0]
            self._masks = {
                item: compacted
                for item, mask in masks.items()
                if (compacted := (mask & window) | ((mask >> tail_start) << width))
            }
        else:
            first_deleted = 1 << tids[0]
            for item in list(masks):
                mask = masks[item]
                if mask < first_deleted:
                    continue  # every set bit sits below the first deletion
                compacted = 0
                offset = 0
                for start, window, width in segments:
                    compacted |= ((mask >> start) & window) << offset
                    offset += width
                compacted |= (mask >> tail_start) << offset
                if compacted:
                    masks[item] = compacted
                else:
                    del masks[item]
        self._size -= len(tids)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def copy(self) -> "BigIntKernel":
        return BigIntKernel(dict(self._masks), self._size)

    def concatenate(self, other: BitmapKernel) -> "BigIntKernel":
        masks = dict(self._masks)
        shift = self._size
        for item, mask in other.masks().items():
            masks[item] = masks.get(item, 0) | (mask << shift)
        return BigIntKernel(masks, self._size + other.size)

    def slice(self, start: int, stop: int) -> "BigIntKernel":
        width = max(0, stop - start)
        window = (1 << width) - 1
        masks: dict = {}
        for item, mask in self._masks.items():
            part = (mask >> start) & window
            if part:
                masks[item] = part
        return BigIntKernel(masks, width)

    # ------------------------------------------------------------------ #
    # Interchange
    # ------------------------------------------------------------------ #
    def to_payload(self) -> object:
        return dict(self._masks), self._size

    def export_lanes(self) -> tuple[list, int, bytes]:
        items = sorted(self._masks)
        words = lane_words(self._size)
        row_bytes = words * 8
        buffer = bytearray(len(items) * row_bytes)
        for row, item in enumerate(items):
            chunk = self._masks[item].to_bytes(row_bytes, "little")
            buffer[row * row_bytes : (row + 1) * row_bytes] = chunk
        return items, words, bytes(buffer)

"""The numpy lane-packed bitmap kernel.

Every item's TID bitmap lives as a row of fixed-width ``uint64`` *lanes* in
one 2-D array: bit ``t`` of the item's bitmap is bit ``t & 63`` of lane word
``t >> 6``.  The hot path — counting a whole candidate level — becomes a
handful of vectorized array operations instead of a Python loop per
candidate:

* candidate rows are gathered with ``np.take`` into preallocated scratch,
* intersections are whole-block ``np.bitwise_and`` with ``out=``,
* supports are a vectorized popcount (``np.bitwise_count`` on numpy ≥ 2.0,
  a SWAR bit-twiddling fallback otherwise) plus a row sum.

Two layouts of the same level are used adaptively.  Apriori's join step
emits candidates in runs sharing their first ``k-1`` items, so the shared
prefix of each run can be intersected **once** and broadcast against the
gathered partner rows — eliminating ``k-1`` of every ``k`` gathers when
runs are long (the level-2 pool over L1 is one run per frequent item).
That trade only wins when the gathers it saves are expensive, i.e. when
the lane matrix has spilled the CPU caches (wide lanes or deep levels);
small matrices are gather-cheap and the per-run dispatch overhead
dominates instead, so those levels use the plain gather path, chunked
along the *candidate* axis (~0.5 MB of scratch) so each block's gather,
AND, popcount and row-sum all run cache-resident in a handful of numpy
calls.

Mutation economics: ``extend`` ORs the increment's lanes in place (one
vector OR per touched item), while the rare compaction paths — deletions,
slicing, concatenation — delegate to the big-int kernel's segment machinery
and repack, trading a conversion pass for a single audited implementation
of the tricky cross-word bit arithmetic.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain
from operator import itemgetter
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from .base import BitmapKernel, Transaction, lane_words
from .bigint import BigIntKernel

if TYPE_CHECKING:
    from ..itemsets import Item, Itemset

__all__ = ["LaneKernel"]

_U64 = np.dtype("<u8")

#: Scratch budget for one counting block: 2**16 words = 0.5 MB, measured
#: fastest on the Fig-2 workload (stays inside L2 alongside the gathers).
_BLOCK_WORDS = 1 << 16

#: Tighter budget for the candidate-axis gather path, which keeps *two*
#: blocks live (accumulator + gathered partner): 2**15 words each keeps the
#: pair inside L2, the measured sweet spot on the Fig-2 counting race.
_GATHER_BLOCK_WORDS = 1 << 15

#: Use the shared-prefix broadcast layout when the mean run length of the
#: candidate pool reaches this many partners per prefix.
_MIN_RUN_FOR_PREFIX = 8

#: ... and only when the lanes are at least this wide (roughly the point
#: where the matrix stops being cache-resident and the gather the prefix
#: trick eliminates starts costing real memory bandwidth).  Deeper levels
#: (k ≥ 3) always qualify: there the trick saves k-1 gathers, not one.
_PREFIX_MIN_WORDS = 1 << 10

if hasattr(np, "bitwise_count"):

    def _popcount_inplace(block: np.ndarray) -> np.ndarray:
        """Replace every uint64 word of *block* with its popcount."""
        np.bitwise_count(block, out=block)
        return block

else:  # pragma: no cover - exercised only on numpy < 2.0
    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)
    _S1, _S2, _S4, _S56 = (np.uint64(s) for s in (1, 2, 4, 56))

    def _popcount_inplace(block: np.ndarray) -> np.ndarray:
        """SWAR popcount (Hamming weight) for platforms without bitwise_count."""
        x = block
        x -= (x >> _S1) & _M1
        x = (x & _M2) + ((x >> _S2) & _M2)
        x += x >> _S4
        x &= _M4
        x *= _H01  # wraps mod 2**64 by design; the top byte is the count
        x >>= _S56
        if x is not block:
            block[...] = x
        return block


def _prefix_runs(row_matrix: np.ndarray) -> np.ndarray:
    """Start indices of the consecutive runs sharing their first k-1 rows."""
    n = len(row_matrix)
    prefixes = row_matrix[:, :-1]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.any(prefixes[1:] != prefixes[:-1], axis=1, out=new_run[1:])
    return np.flatnonzero(new_run)


class LaneKernel(BitmapKernel):
    """Item → uint64-lane bitmap table backed by one 2-D numpy array.

    Invariants: the ``i``-th inserted item of ``_rows`` owns row ``i`` of
    ``_lanes`` (so ``list(_rows)`` is row-ordered); only the live region
    ``_lanes[:len(_rows), :lane_words(_size)]`` may hold non-zero words;
    every live row is non-empty.  The array may be a read-only zero-copy
    view over an external buffer (a memory-mapped snapshot, a pickled
    payload) — the first mutation copies it into owned memory.
    """

    name = "numpy"

    __slots__ = ("_rows", "_lanes", "_size", "_scratch")

    def __init__(self, rows: dict, lanes: np.ndarray, size: int) -> None:
        self._rows: dict = rows  # item -> row index, insertion-ordered
        self._lanes: np.ndarray = lanes
        self._size = size
        self._scratch: dict = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, transactions: Sequence[Transaction]) -> "LaneKernel":
        # Accumulating big-int masks first is faster than per-bit array
        # stores: the Python pass is unavoidable either way, and the
        # conversion to lanes is one bulk to_bytes per item.
        return cls.from_masks(*BigIntKernel.build(transactions).to_payload())

    @classmethod
    def from_masks(cls, masks: dict, size: int) -> "LaneKernel":
        live = [(item, mask) for item, mask in masks.items() if mask]
        words = lane_words(size)
        lanes = np.zeros((len(live), words), dtype=_U64)
        row_bytes = words * 8
        rows: dict = {}
        for row, (item, mask) in enumerate(live):
            rows[item] = row
            lanes[row] = np.frombuffer(mask.to_bytes(row_bytes, "little"), dtype=_U64)
        return cls(rows, lanes, size)

    @classmethod
    def from_payload(cls, payload: object) -> "LaneKernel":
        items, size, buffer = payload  # type: ignore[misc]
        return cls.from_lanes(items, buffer, size)

    @classmethod
    def from_lanes(
        cls, items: Sequence, lanes: bytes | memoryview, size: int
    ) -> "LaneKernel":
        words = lane_words(size)
        array = np.frombuffer(lanes, dtype=_U64, count=len(items) * words)
        array = array.reshape(len(items), words)
        rows = {item: row for row, item in enumerate(items)}
        return cls(rows, array, size)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return len(self._rows)

    def items(self) -> Iterator:
        return iter(self._rows)

    def __contains__(self, item: object) -> bool:
        return item in self._rows

    @property
    def _words(self) -> int:
        return lane_words(self._size)

    def mask(self, item: Item) -> int:
        row = self._rows.get(item)
        if row is None:
            return 0
        return int.from_bytes(self._lanes[row, : self._words].tobytes(), "little")

    def masks(self) -> dict:
        words = self._words
        lanes = self._lanes
        return {
            item: int.from_bytes(lanes[row, :words].tobytes(), "little")
            for item, row in self._rows.items()
        }

    def item_counts(self) -> Counter:
        if not self._rows:
            return Counter()
        live = np.array(self._lanes[: len(self._rows), : self._words])
        counts = _popcount_inplace(live).sum(axis=1)
        return Counter(dict(zip(self._rows, counts.tolist(), strict=True)))

    def support(self, candidate: Itemset) -> int:
        items = tuple(candidate)
        if not items:
            return self._size
        rows = self._rows
        try:
            indices = [rows[item] for item in items]
        except KeyError:
            return 0
        words = self._words
        lanes = self._lanes
        acc = np.array(lanes[indices[0], :words])
        for row in indices[1:]:
            np.bitwise_and(acc, lanes[row, :words], out=acc)
        return int(_popcount_inplace(acc).sum())

    # ------------------------------------------------------------------ #
    # Batched counting — the hot path
    # ------------------------------------------------------------------ #
    def count_candidates(self, candidates: Sequence) -> dict:
        counts: dict = {}
        by_length: dict[int, list] = {}
        for candidate in candidates:
            by_length.setdefault(len(candidate), []).append(candidate)
        for length, pool in by_length.items():
            if length == 0:
                for candidate in pool:
                    counts[candidate] = self._size
            else:
                self._count_level(pool, length, counts)
        return counts

    def _count_level(self, pool: list, k: int, counts: dict) -> None:
        rows = self._rows
        n = len(pool)
        try:
            # itemgetter resolves the whole flattened pool in one C call;
            # a KeyError (candidate naming an unseen item) falls back to the
            # per-item lookup that can record the miss.
            flat = (
                itemgetter(*chain.from_iterable(pool))(rows)
                if n * k > 1
                else (rows[pool[0][0]],)
            )
        except KeyError:
            row_matrix = np.fromiter(
                (rows.get(item, -1) for item in chain.from_iterable(pool)),
                dtype=np.intp,
                count=n * k,
            ).reshape(n, k)
            missing = (row_matrix < 0).any(axis=1)
            for candidate, bad in zip(pool, missing.tolist(), strict=True):
                if bad:
                    counts[candidate] = 0
            keep = ~missing
            pool = [c for c, ok in zip(pool, keep.tolist(), strict=True) if ok]
            row_matrix = row_matrix[keep]
            n = len(pool)
        else:
            row_matrix = np.fromiter(flat, dtype=np.intp, count=n * k).reshape(n, k)
        if not n:
            return
        if not self._size:
            for candidate in pool:
                counts[candidate] = 0
            return

        if k >= 2 and (k >= 3 or self._words >= _PREFIX_MIN_WORDS):
            # Candidate pools arrive grouped by shared prefix already
            # (apriori_gen joins within prefix blocks and callers sort), so
            # try run detection on the given order first and only pay a
            # lexsort when the pool turns out to be shuffled.
            run_starts = _prefix_runs(row_matrix)
            if n / len(run_starts) >= _MIN_RUN_FOR_PREFIX:
                result = self._count_prefix_runs(row_matrix, run_starts)
                counts.update(zip(pool, result.tolist(), strict=True))
                return
            order = np.lexsort(row_matrix.T[::-1])
            sorted_rm = row_matrix[order]
            run_starts = _prefix_runs(sorted_rm)
            if n / len(run_starts) >= _MIN_RUN_FOR_PREFIX:
                sorted_res = self._count_prefix_runs(sorted_rm, run_starts)
                result = np.empty(n, dtype=_U64)
                result[order] = sorted_res
                counts.update(zip(pool, result.tolist(), strict=True))
                return

        result = self._count_gather(row_matrix)
        counts.update(zip(pool, result.tolist(), strict=True))

    def _block(self, shape: tuple[int, int], tag: str = "a") -> np.ndarray:
        key = (shape, tag)
        scratch = self._scratch.get(key)
        if scratch is None:
            if len(self._scratch) > 6:
                self._scratch.clear()
            scratch = self._scratch[key] = np.empty(shape, dtype=_U64)
        return scratch

    def _count_gather(self, row_matrix: np.ndarray) -> np.ndarray:
        """One gather per candidate item; works for any candidate pool.

        Chunked along the candidate axis: each block gathers ~0.5 MB of
        candidate rows into reused scratch, so the whole gather → AND →
        popcount → row-sum sequence for a block runs cache-resident and the
        numpy dispatch cost is amortised over hundreds of candidates.
        """
        n, k = row_matrix.shape
        words = self._words
        lanes = self._lanes
        result = np.empty(n, dtype=_U64)
        block_rows = max(1, min(n, _GATHER_BLOCK_WORDS // max(words, 1)))
        columns = [np.ascontiguousarray(row_matrix[:, j]) for j in range(k)]
        acc = self._block((block_rows, words))
        gathered = self._block((block_rows, words), "b") if k > 1 else None
        for start in range(0, n, block_rows):
            stop = min(n, start + block_rows)
            chunk = stop - start
            block = acc[:chunk]
            np.take(lanes[:, :words], columns[0][start:stop], axis=0, out=block)
            for column in columns[1:]:
                partner = gathered[:chunk]
                np.take(lanes[:, :words], column[start:stop], axis=0, out=partner)
                np.bitwise_and(block, partner, out=block)
            result[start:stop] = _popcount_inplace(block).sum(axis=1, dtype=np.uint64)
        return result

    def _count_prefix_runs(
        self, sorted_rm: np.ndarray, run_starts: np.ndarray
    ) -> np.ndarray:
        """Intersect each run's shared ``k-1`` prefix once, broadcast over partners."""
        n, k = sorted_rm.shape
        words = self._words
        lanes = self._lanes
        result = np.zeros(n, dtype=_U64)
        bounds = np.append(run_starts, n)
        prefix_row = np.empty(words, dtype=_U64)
        for start, stop in zip(bounds[:-1].tolist(), bounds[1:].tolist(), strict=True):
            prefix = sorted_rm[start, : k - 1]
            partners = np.ascontiguousarray(sorted_rm[start:stop, k - 1])
            run = stop - start
            np.copyto(prefix_row, lanes[prefix[0], :words])
            for row in prefix[1:].tolist():
                np.bitwise_and(prefix_row, lanes[row, :words], out=prefix_row)
            block_words = max(1, _BLOCK_WORDS // run)
            for offset in range(0, words, block_words):
                width = min(block_words, words - offset)
                gathered = self._block((run, width))
                np.take(
                    lanes[:, offset : offset + width], partners, axis=0, out=gathered
                )
                np.bitwise_and(
                    gathered, prefix_row[offset : offset + width], out=gathered
                )
                result[start:stop] += _popcount_inplace(gathered).sum(
                    axis=1, dtype=np.uint64
                )
        return result

    # ------------------------------------------------------------------ #
    # Delta maintenance
    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, rows_needed: int, words_needed: int) -> None:
        lanes = self._lanes
        row_cap, word_cap = lanes.shape
        if lanes.flags.writeable and row_cap >= rows_needed and words_needed <= word_cap:
            return
        new_rows = row_cap if row_cap >= rows_needed else max(rows_needed, row_cap * 2, 8)
        new_words = (
            word_cap if word_cap >= words_needed else max(words_needed, word_cap * 2, 4)
        )
        grown = np.zeros((new_rows, new_words), dtype=_U64)
        live_rows, live_words = len(self._rows), self._words
        grown[:live_rows, :live_words] = lanes[:live_rows, :live_words]
        self._lanes = grown

    def _row_for(self, item: Item) -> int:
        row = self._rows.get(item)
        if row is None:
            row = len(self._rows)
            self._rows[item] = row
        return row

    def append(self, transaction: Transaction) -> None:
        items = tuple(transaction)
        self._ensure_capacity(len(self._rows) + len(items), lane_words(self._size + 1))
        word = self._size >> 6
        bit = np.uint64(1 << (self._size & 63))
        lanes = self._lanes
        for item in items:
            lanes[self._row_for(item), word] |= bit
        self._size += 1

    def extend(self, transactions: Iterable[Transaction]) -> None:
        increment = BigIntKernel.build(list(transactions))
        if not increment.size:
            return
        inc_masks, inc_size = increment.to_payload()
        self._ensure_capacity(
            len(self._rows) + len(inc_masks), lane_words(self._size + inc_size)
        )
        word0 = self._size >> 6
        shift = self._size & 63
        span = lane_words(shift + inc_size)
        lanes = self._lanes
        for item, mask in inc_masks.items():
            chunk = np.frombuffer((mask << shift).to_bytes(span * 8, "little"), dtype=_U64)
            lanes[self._row_for(item), word0 : word0 + span] |= chunk
        self._size += inc_size

    def _repack(self, masks: dict, size: int) -> None:
        rebuilt = LaneKernel.from_masks(masks, size)
        self._rows = rebuilt._rows
        self._lanes = rebuilt._lanes
        self._size = rebuilt._size
        self._scratch.clear()

    def delete_tids(self, tids: Sequence[int]) -> None:
        # Compaction means sliding every surviving bit across word
        # boundaries — delegate to the big-int segment machinery (the one
        # audited implementation of that arithmetic) and repack the lanes.
        compacted = BigIntKernel.from_masks(self.masks(), self._size)
        compacted.delete_tids(tids)
        self._repack(*compacted.to_payload())

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def copy(self) -> "LaneKernel":
        live = np.array(self._lanes[: len(self._rows), : self._words])
        return LaneKernel(dict(self._rows), live, self._size)

    def concatenate(self, other: BitmapKernel) -> "LaneKernel":
        merged = BigIntKernel.from_masks(self.masks(), self._size).concatenate(
            BigIntKernel.from_masks(other.masks(), other.size)
        )
        return LaneKernel.from_masks(*merged.to_payload())

    def slice(self, start: int, stop: int) -> "LaneKernel":
        window = BigIntKernel.from_masks(self.masks(), self._size).slice(start, stop)
        return LaneKernel.from_masks(*window.to_payload())

    # ------------------------------------------------------------------ #
    # Interchange
    # ------------------------------------------------------------------ #
    def to_payload(self) -> object:
        live = self._lanes[: len(self._rows), : self._words]
        return list(self._rows), self._size, np.ascontiguousarray(live).tobytes()

    def export_lanes(self) -> tuple[list, int, bytes]:
        items = sorted(self._rows)
        words = self._words
        order = np.fromiter((self._rows[item] for item in items), dtype=np.intp)
        live = np.ascontiguousarray(self._lanes[order][:, :words])
        return items, words, live.tobytes()

"""Pluggable bitmap kernels behind the vertical counting engine.

The registry resolves user-facing kernel names to implementations:

* ``"bigint"`` — pure-stdlib big-int masks, always available, the default;
* ``"numpy"`` — uint64 lane-packed arrays, requires numpy, errors without it;
* ``"auto"`` — ``"numpy"`` when numpy imports, else falls back to ``"bigint"``.

``None`` means "no preference" and resolves to the default.  Resolution is
intentionally eager (``resolve_kernel_name`` at option/backend construction
time) so that a pickled backend shipped to a worker process counts with the
same kernel as its parent instead of re-deciding per host.
"""

from __future__ import annotations

from .base import BitmapKernel, lane_words
from .bigint import BigIntKernel

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "BitmapKernel",
    "BigIntKernel",
    "kernel_class",
    "lane_words",
    "numpy_available",
    "resolve_kernel_name",
]

#: Names accepted by ``--kernel`` and the option dataclasses.
KERNEL_NAMES: tuple[str, ...] = ("bigint", "numpy", "auto")

DEFAULT_KERNEL = "bigint"

_numpy_ok: bool | None = None


def numpy_available() -> bool:
    """True when numpy imports in this interpreter (memoized)."""
    # The module-level memo is deliberate: tests monkeypatch `_numpy_ok` to
    # force both registry arms, and workers re-probe after fork.
    global _numpy_ok  # repro: ignore[RPR002]
    if _numpy_ok is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _numpy_ok = False
        else:
            _numpy_ok = True
    return _numpy_ok


def resolve_kernel_name(name: str | None) -> str:
    """Resolve a user-facing kernel name to a concrete implementation name.

    ``None`` → the default kernel; ``"auto"`` → ``"numpy"`` when available,
    else the default.  An explicit ``"numpy"`` without numpy installed is an
    error — silent fallback there would misreport what a benchmark measured.
    """
    if name is None:
        return DEFAULT_KERNEL
    if name not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {name!r}, expected one of {KERNEL_NAMES}")
    if name == "auto":
        return "numpy" if numpy_available() else DEFAULT_KERNEL
    if name == "numpy" and not numpy_available():
        raise ValueError(
            "kernel 'numpy' requested but numpy is not installed; "
            "install the [numpy] extra or use --kernel auto for a fallback"
        )
    return name


def kernel_class(name: str | None) -> type[BitmapKernel]:
    """The kernel implementation class for *name* (after resolution)."""
    resolved = resolve_kernel_name(name)
    if resolved == "bigint":
        return BigIntKernel
    from .lanes import LaneKernel

    return LaneKernel

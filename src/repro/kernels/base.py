"""The bitmap-kernel contract behind the vertical index.

A *kernel* owns the physical representation of an item → TID-bitmap table
and everything that touches it: delta maintenance (append/extend/delete),
derivation (slice/concatenate/copy), support counting (single candidate and
batched per-level pools), and the import/export paths that cross process
boundaries (:meth:`BitmapKernel.to_payload`) and land in memory-mappable
snapshots (:meth:`BitmapKernel.export_lanes`).

:class:`~repro.db.vertical_index.VerticalIndex` is a thin veneer over one
kernel instance — it validates arguments, implements the Mapping protocol,
and delegates the heavy lifting here.  Two implementations exist:

* :class:`~repro.kernels.bigint.BigIntKernel` — one arbitrary-precision
  Python ``int`` per item, bit ``t`` set when transaction ``t`` contains the
  item.  Pure stdlib, always available, the zero-regression default.
* :class:`~repro.kernels.lanes.LaneKernel` — every item's bitmap packed
  into fixed-width ``uint64`` lanes of one 2-D numpy array, counting whole
  candidate levels per call with vectorized AND + popcount.

**Pinned invariant — kernels are observationally equivalent.**  For the
same logical transaction sequence, every kernel must report identical
items, masks, supports and counts through every mutation path; the
equivalence suite (``tests/kernels``, ``tests/property``) asserts it, so
engines and sessions may switch kernels freely without changing results.

Canonical interchange forms (kernel-independent):

* **masks** — ``dict[item, int]`` of big-int bitmaps, items with empty
  bitmaps absent.  The reference representation; equality is defined on it.
* **lanes** — a row-major ``uint64[items × words]`` little-endian buffer
  plus its sorted item-id list, ``words = ceil(size / 64)``.  The zero-copy
  representation used by the v2 snapshot format.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..itemsets import Item, Itemset

Transaction = tuple  # tuple[Item, ...]; kept loose to avoid import cycles

__all__ = ["BitmapKernel", "lane_words"]


def lane_words(size: int) -> int:
    """Number of 64-bit lane words covering *size* transaction bits."""
    return (size + 63) >> 6


class BitmapKernel(ABC):
    """One item → TID-bitmap table plus the operations the index needs.

    Instances are mutable stores: the ``VerticalIndex`` that owns a kernel
    drives its whole life cycle and never shares it.  ``size`` — the number
    of indexed transactions — is tracked by the kernel because every
    physical operation (shift geometry, lane widths) depends on it.
    """

    #: Registry name of the implementation (``"bigint"`` / ``"numpy"``).
    name: ClassVar[str] = ""

    __slots__ = ()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    @abstractmethod
    def build(cls, transactions: Sequence[Transaction]) -> "BitmapKernel":
        """Build the table in one pass over *transactions*."""

    @classmethod
    @abstractmethod
    def from_masks(cls, masks: dict["Item", int], size: int) -> "BitmapKernel":
        """Build the table from canonical big-int masks (zero masks dropped)."""

    @classmethod
    @abstractmethod
    def from_payload(cls, payload: object) -> "BitmapKernel":
        """Rebuild a table from :meth:`to_payload` data (same kernel only)."""

    @classmethod
    @abstractmethod
    def from_lanes(
        cls, items: Sequence["Item"], lanes: bytes | memoryview, size: int
    ) -> "BitmapKernel":
        """Build the table from a canonical lane buffer (see :meth:`export_lanes`).

        *lanes* holds ``len(items) × lane_words(size)`` little-endian
        ``uint64`` words, row-major, rows ordered like *items*.  Kernels that
        can wrap the buffer zero-copy may do so; the buffer must then stay
        valid (and is treated as read-only) for the kernel's lifetime.
        """

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def size(self) -> int:
        """Number of indexed transactions (bit positions in use)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of items with a non-empty bitmap."""

    @abstractmethod
    def items(self) -> Iterator["Item"]:
        """Iterate over the items with a non-empty bitmap."""

    @abstractmethod
    def __contains__(self, item: object) -> bool: ...

    @abstractmethod
    def mask(self, item: "Item") -> int:
        """Canonical big-int bitmap of *item* (``0`` when absent)."""

    @abstractmethod
    def masks(self) -> dict["Item", int]:
        """The whole table in canonical ``dict[item, int]`` form (a copy)."""

    @abstractmethod
    def item_counts(self) -> Counter:
        """Per-item support counts (one popcount per item)."""

    @abstractmethod
    def support(self, candidate: "Itemset") -> int:
        """Transactions containing every item of *candidate* (empty → ``size``)."""

    @abstractmethod
    def count_candidates(self, candidates: Sequence["Itemset"]) -> dict:
        """Batched :meth:`support` over a candidate pool — one call per level.

        Semantics are exactly ``{c: self.support(c) for c in candidates}``;
        implementations are free to reorder and batch the work.
        """

    # ------------------------------------------------------------------ #
    # Delta maintenance (mutating)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def append(self, transaction: Transaction) -> None:
        """OR one new transaction's bits in at position ``size``."""

    @abstractmethod
    def extend(self, transactions: Iterable[Transaction]) -> None:
        """OR an increment's bits in, shifted past the current size."""

    @abstractmethod
    def delete_tids(self, tids: Sequence[int]) -> None:
        """Compact the given TID bits out of every bitmap.

        *tids* arrive validated (strictly increasing, within ``range(size)``)
        from the owning index.
        """

    # ------------------------------------------------------------------ #
    # Derivation (non-mutating)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def copy(self) -> "BitmapKernel":
        """Independent clone."""

    @abstractmethod
    def concatenate(self, other: "BitmapKernel") -> "BitmapKernel":
        """Table of ``self's transactions + other's transactions`` (same kernel)."""

    @abstractmethod
    def slice(self, start: int, stop: int) -> "BitmapKernel":
        """Table of transactions ``[start:stop)`` (bounds pre-normalised)."""

    # ------------------------------------------------------------------ #
    # Interchange
    # ------------------------------------------------------------------ #
    @abstractmethod
    def to_payload(self) -> object:
        """Picklable data for :meth:`from_payload` across a process boundary."""

    @abstractmethod
    def export_lanes(self) -> tuple[list, int, bytes]:
        """Canonical lane form: ``(sorted items, words, row-major uint64 buffer)``.

        The buffer holds ``len(items) × words`` little-endian 64-bit words;
        row ``i`` is the bitmap of ``items[i]``.  This is the byte layout the
        v2 snapshot format stores verbatim, so any kernel can reopen any
        kernel's snapshot.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} items={len(self)} size={self.size}>"

"""Canonical itemset representation and helpers.

Throughout the library an *item* is a non-negative integer identifier and an
*itemset* is represented by a sorted tuple of distinct item ids.  Sorted
tuples are hashable (so they can key support-count dictionaries), order
independent once canonicalised, and cheap to join in lexicographic order —
which is exactly what the ``apriori_gen`` candidate generation step needs.

The helpers here are deliberately free functions rather than a wrapper class:
an itemset flows through very hot counting loops, and keeping it a plain
tuple avoids per-element attribute lookups and object allocation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import InvalidItemsetError

Item = int
Itemset = tuple[Item, ...]

__all__ = [
    "Item",
    "Itemset",
    "itemset",
    "is_canonical",
    "union",
    "subsets_of_size",
    "proper_subsets",
    "one_extensions",
    "contains",
    "support_fraction",
    "format_itemset",
    "parse_itemset",
]


def itemset(items: Iterable[Item]) -> Itemset:
    """Return the canonical (sorted, duplicate-free) tuple form of *items*.

    Raises
    ------
    InvalidItemsetError
        If *items* is empty or contains anything other than non-negative
        integers.
    """
    try:
        unique = set(items)
    except TypeError as exc:  # non-iterable or unhashable members
        raise InvalidItemsetError(f"cannot build an itemset from {items!r}") from exc
    if not unique:
        raise InvalidItemsetError("an itemset must contain at least one item")
    for item in unique:
        if not isinstance(item, int) or isinstance(item, bool) or item < 0:
            raise InvalidItemsetError(
                f"items must be non-negative integers, got {item!r}"
            )
    return tuple(sorted(unique))


def is_canonical(candidate: Sequence[Item]) -> bool:
    """Return ``True`` when *candidate* is already in canonical form."""
    if not isinstance(candidate, tuple) or not candidate:
        return False
    return all(
        isinstance(item, int) and not isinstance(item, bool) and item >= 0
        for item in candidate
    ) and all(a < b for a, b in zip(candidate, candidate[1:], strict=False))


def union(first: Itemset, second: Itemset) -> Itemset:
    """Return the canonical union of two canonical itemsets."""
    return tuple(sorted(set(first) | set(second)))


def subsets_of_size(source: Itemset, size: int) -> Iterator[Itemset]:
    """Yield every *size*-subset of *source* in lexicographic order."""
    if size <= 0 or size > len(source):
        return iter(())
    return combinations(source, size)


def proper_subsets(source: Itemset) -> Iterator[Itemset]:
    """Yield every non-empty proper subset of *source* (all sizes)."""
    for size in range(1, len(source)):
        yield from combinations(source, size)


def one_extensions(source: Itemset, items: Iterable[Item]) -> Iterator[Itemset]:
    """Yield canonical supersets of *source* extended by one item from *items*."""
    members = set(source)
    for item in items:
        if item not in members:
            yield tuple(sorted(source + (item,)))


def contains(transaction: Sequence[Item], candidate: Itemset) -> bool:
    """Return ``True`` if *transaction* (any iterable of items) contains *candidate*."""
    present = set(transaction)
    return all(item in present for item in candidate)


def support_fraction(count: int, total: int) -> float:
    """Return ``count / total`` guarding against an empty database."""
    if total <= 0:
        return 0.0
    return count / total


def format_itemset(items: Itemset, mapping: Mapping[Item, str] | None = None) -> str:
    """Render an itemset as ``{a, b, c}`` using *mapping* for item names if given."""
    if mapping is None:
        rendered = ", ".join(str(item) for item in items)
    else:
        rendered = ", ".join(mapping.get(item, str(item)) for item in items)
    return "{" + rendered + "}"


def parse_itemset(text: str) -> Itemset:
    """Parse ``"{1, 2, 3}"`` or ``"1 2 3"`` or ``"1,2,3"`` into a canonical itemset."""
    cleaned = text.strip().strip("{}").replace(",", " ")
    parts = [part for part in cleaned.split() if part]
    if not parts:
        raise InvalidItemsetError(f"cannot parse an itemset from {text!r}")
    try:
        return itemset(int(part) for part in parts)
    except ValueError as exc:
        raise InvalidItemsetError(f"non-integer item in {text!r}") from exc

"""repro — reproduction of "Maintenance of Discovered Association Rules in
Large Databases: An Incremental Updating Technique" (Cheung, Han, Ng, Wong,
ICDE 1996).

The package provides:

* the **FUP** incremental update algorithm (:class:`repro.core.FupUpdater`)
  and its deletion-capable generalisation (:class:`repro.core.Fup2Updater`),
* the **Apriori** and **DHP** baseline miners the paper compares against,
* association-rule generation, a transaction-database substrate with
  delta-maintained indexes, pluggable counting engines (including a
  process-parallel partitioned engine), the Quest-style synthetic data
  generator the paper's evaluation uses, and the experiment harness — with
  the declarative ``repro reproduce`` matrix — that regenerates every figure
  of the evaluation section,
* a lock-free rule-serving subsystem (:mod:`repro.serve`): versioned
  immutable snapshots published by atomic reference swap, basket/recommend
  queries over an inverted antecedent-item index, and the ``repro serve``
  HTTP endpoint.

Quickstart::

    from repro import AprioriMiner, FupUpdater, TransactionDatabase

    original = TransactionDatabase([[1, 2, 3], [1, 2], [2, 4], [1, 3]])
    initial = AprioriMiner(min_support=0.5).mine(original)

    increment = TransactionDatabase([[1, 2, 4], [2, 4]])
    updated_state = FupUpdater(min_support=0.5).update(original, initial, increment)
    print(updated_state.large_itemsets)
"""

from .errors import (
    EmptyDatabaseError,
    ExperimentError,
    GeneratorConfigError,
    InvalidItemsetError,
    InvalidThresholdError,
    InvalidTransactionError,
    PolicyError,
    ReproError,
    StaleStateError,
    StorageError,
)
from .itemsets import Item, Itemset, itemset
from .db import (
    DatabaseStats,
    Transaction,
    TransactionDatabase,
    UpdateBatch,
    UpdateLog,
    VerticalIndex,
    compute_stats,
    load_database,
    save_database,
)
from .mining import (
    BACKEND_NAMES,
    EXECUTOR_NAMES,
    AprioriMiner,
    AssociationRule,
    CountingBackend,
    DhpMiner,
    DhpOptions,
    HashTree,
    HorizontalBackend,
    ItemsetLattice,
    MiningOptions,
    MiningResult,
    PartitionedBackend,
    VerticalBackend,
    apriori_gen,
    generate_rules,
    make_backend,
    mine_apriori,
    mine_dhp,
)
from .core import (
    Fup2Updater,
    FupOptions,
    FupUpdater,
    MaintenancePlan,
    MaintenancePolicy,
    MaintenanceReport,
    MaintenanceSession,
    RuleMaintainer,
    SessionStatus,
    SkipEstimator,
    SkipStats,
    SlidingWindowPolicy,
    TimeDecayPolicy,
    TopKPolicy,
    UnboundedPolicy,
    parse_policy,
    policy_from_dict,
    read_session_state,
    update_with_fup,
    update_with_fup2,
)
from .serve import AsyncRuleServer, RuleServer, RuleSnapshot, RuleStore, SessionFeed
from .datagen import (
    SyntheticConfig,
    SyntheticDataGenerator,
    Workload,
    generate_database,
    make_workload,
    paper_workload,
    parse_workload_name,
    scaled_paper_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidItemsetError",
    "InvalidTransactionError",
    "InvalidThresholdError",
    "EmptyDatabaseError",
    "StaleStateError",
    "StorageError",
    "GeneratorConfigError",
    "ExperimentError",
    "PolicyError",
    # itemsets
    "Item",
    "Itemset",
    "itemset",
    # db
    "Transaction",
    "TransactionDatabase",
    "VerticalIndex",
    "UpdateBatch",
    "UpdateLog",
    "DatabaseStats",
    "compute_stats",
    "load_database",
    "save_database",
    # mining
    "AprioriMiner",
    "DhpMiner",
    "DhpOptions",
    "HashTree",
    "ItemsetLattice",
    "MiningResult",
    "AssociationRule",
    "apriori_gen",
    "generate_rules",
    "mine_apriori",
    "mine_dhp",
    # counting backends
    "BACKEND_NAMES",
    "EXECUTOR_NAMES",
    "CountingBackend",
    "HorizontalBackend",
    "VerticalBackend",
    "PartitionedBackend",
    "MiningOptions",
    "make_backend",
    # core
    "FupUpdater",
    "Fup2Updater",
    "FupOptions",
    "RuleMaintainer",
    "MaintenanceReport",
    "MaintenanceSession",
    "SessionStatus",
    "MaintenancePlan",
    "MaintenancePolicy",
    "UnboundedPolicy",
    "SlidingWindowPolicy",
    "TimeDecayPolicy",
    "TopKPolicy",
    "SkipEstimator",
    "SkipStats",
    "parse_policy",
    "policy_from_dict",
    "read_session_state",
    "update_with_fup",
    "update_with_fup2",
    # serve
    "AsyncRuleServer",
    "RuleSnapshot",
    "RuleStore",
    "RuleServer",
    "SessionFeed",
    # datagen
    "SyntheticConfig",
    "SyntheticDataGenerator",
    "Workload",
    "generate_database",
    "make_workload",
    "paper_workload",
    "parse_workload_name",
    "scaled_paper_workload",
]

"""The high-concurrency asyncio front end over a lock-free rule store.

The threaded :class:`~repro.serve.http.RuleServer` spends a thread per
in-flight request; under hundreds of keep-alive clients that is hundreds of
stacks and a scheduler fight for the GIL.  :class:`AsyncRuleServer` serves
the same endpoints from **one event loop**: every connection is a coroutine,
so concurrency costs a heap object instead of a thread, and the store's
lock-free snapshot contract means request handling never blocks on the
writer.  On top of the shared routing (:mod:`repro.serve.api`) it adds what
a front end facing real load needs:

* **Keep-alive HTTP/1.1** — a client pays connection setup once and streams
  requests; ``Connection: close`` (or HTTP/1.0 without keep-alive) is
  honoured per request.
* **Batched ``POST /recommend``** — many baskets answered in one request
  against **one** snapshot read, so a batch is never split across a
  publication: every basket in the response describes the same version.
* **A bounded LRU response cache** keyed on ``(snapshot_version, basket,
  k)`` — the version in the key makes stale hits structurally impossible,
  and the whole cache is invalidated on every store publication (the hook
  :meth:`~repro.serve.store.RuleStore.on_publish`, which fires for direct
  maintainer publications and for session-feed republications alike).
* **Per-client token-bucket rate limiting** — ``429 Too Many Requests``
  with an exact ``Retry-After``; clients are keyed by the ``X-Client-Id``
  header when present (load harnesses, tests) else the peer address.
* **Bounded-connection backpressure** — past ``max_connections`` a new
  connection is answered with an immediate ``503`` + ``Retry-After`` and
  closed, so overload degrades to fast rejections instead of an unbounded
  accept queue.

The lifecycle mirrors :class:`~repro.serve.http.RuleServer` (``start`` /
``serve_forever`` / ``shutdown`` / ``close``, context manager), so the CLI
and tests can swap front ends behind one variable.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import socket
import threading
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from ..errors import EmptyDatabaseError
from ..itemsets import Item
from .api import (
    BadRequest,
    encode_json,
    parse_items,
    parse_positive_int,
    reason_phrase,
    recommend_payload,
    response_headers,
    route_query,
)
from .cache import DEFAULT_CACHE_SIZE, ResponseCache
from .ratelimit import RateLimiter
from .snapshot import RuleSnapshot
from .store import RuleStore

__all__ = ["AsyncRuleServer", "DEFAULT_MAX_CONNECTIONS"]

_log = logging.getLogger(__name__)

#: Default concurrent-connection bound (the backpressure threshold).
DEFAULT_MAX_CONNECTIONS = 1024
#: Hard caps on request anatomy — a malformed or hostile client cannot make
#: one request hold unbounded memory.
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Cap on baskets per batched POST (one request must stay one scheduling
#: quantum, not a denial of service).
MAX_BATCH_BASKETS = 10_000


class _ProtocolError(ValueError):
    """A malformed HTTP request (answered 400 and the connection closed)."""


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one HTTP/1.x request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readline()
    except ValueError as exc:  # request line over the stream limit
        raise _ProtocolError("request line too long") from exc
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _ProtocolError(f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise _ProtocolError(f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    while True:
        try:
            header_line = await reader.readline()
        except ValueError as exc:
            raise _ProtocolError("header line too long") from exc
        if header_line in (b"\r\n", b"\n"):
            break
        if not header_line:
            raise _ProtocolError("connection closed mid-headers")
        if len(headers) >= MAX_HEADER_COUNT:
            raise _ProtocolError("too many headers")
        name, separator, value = header_line.decode("latin-1").partition(":")
        if not separator:
            raise _ProtocolError(f"malformed header line {header_line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise _ProtocolError(f"malformed Content-Length {raw_length!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _ProtocolError(f"unacceptable Content-Length {length}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise _ProtocolError("connection closed mid-body") from exc
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:  # HTTP/1.0 closes unless the client opts in
        keep_alive = connection == "keep-alive"
    parsed = urlsplit(target)
    query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
    return _Request(
        method=method,
        path=parsed.path,
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def _render_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """One complete HTTP response as bytes (status line, headers, body)."""
    body = encode_json(payload)
    lines = [f"HTTP/1.1 {status} {reason_phrase(status)}"]
    lines.extend(
        f"{name}: {value}"
        for name, value in response_headers(
            body, keep_alive=keep_alive, extra=extra_headers
        )
    )
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def _retry_after_header(seconds: float) -> tuple[str, str]:
    """``Retry-After`` as RFC-compliant integral delay-seconds (minimum 1)."""
    return ("Retry-After", str(max(1, math.ceil(seconds))))


class AsyncRuleServer:
    """Asyncio keep-alive HTTP front end with cache, rate limit, backpressure.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`);
    bind errors raise here, in the constructor, exactly like the threaded
    front end.  Use :meth:`start` for a background server (tests,
    embedding) or :meth:`serve_forever` to run on the calling thread (the
    CLI).  ``rate_limit=None`` disables rate limiting, ``cache_size=0``
    disables the response cache.
    """

    def __init__(
        self,
        store: RuleStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be positive, got {max_connections}")
        self.store = store
        self.cache = ResponseCache(cache_size)
        self.limiter = (
            None if rate_limit is None else RateLimiter(rate_limit, rate_burst)
        )
        self.max_connections = int(max_connections)
        self._sock = socket.create_server((host, port))
        self._loop = asyncio.new_event_loop()
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._closed = False
        self._active_connections = 0
        self._total_connections = 0
        self._rejected_connections = 0
        self._requests = 0
        # Publication hook: entries of superseded versions can never hit
        # again (the version is in the key), so reclaim their space at once.
        self._invalidate = lambda snapshot: self.cache.clear()
        store.on_publish(self._invalidate)

    # ------------------------------------------------------------------ #
    # Lifecycle (mirrors RuleServer)
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._sock.getsockname()[0]

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def active_connections(self) -> int:
        """Connections currently inside the handler (approximate under load)."""
        return self._active_connections

    def start(self) -> "AsyncRuleServer":
        """Serve on a background daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-async-rule-server", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or Ctrl-C)."""
        self._run()

    def shutdown(self) -> None:
        """Stop a *running* serve loop (safe to call from any thread).

        Waits for loop startup first, so a shutdown racing a fresh
        :meth:`start` cannot stop the loop mid-initialisation.
        """
        self._ready.wait(timeout=5.0)
        self._loop.call_soon_threadsafe(self._loop.stop)

    def close(self) -> None:
        """Stop the serve loop (if any), release the socket, unhook the store.

        Safe in every lifecycle state, more than once: a server that was
        never started has no loop to stop, so only the resources go.
        """
        if self._thread is not None:
            self.shutdown()
            self._thread.join()
            self._thread = None
        if not self._loop.is_closed() and not self._loop.is_running():
            self._loop.close()
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close best-effort
                pass
            self.store.remove_listener(self._invalidate)

    def __enter__(self) -> "AsyncRuleServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> RuleSnapshot:
        """The snapshot requests are currently answered from."""
        return self.store.snapshot()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            server = self._loop.run_until_complete(
                asyncio.start_server(self._handle_client, sock=self._sock)
            )
        finally:
            self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            server.close()
            self._loop.run_until_complete(server.wait_closed())
            # Cancel lingering connection handlers (keep-alive clients whose
            # sockets are still open) so the loop closes without warnings.
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._total_connections += 1
        if self._active_connections >= self.max_connections:
            # Backpressure: reject in O(1) instead of queueing unboundedly.
            self._rejected_connections += 1
            await self._write_and_close(
                writer,
                _render_response(
                    503,
                    {
                        "error": (
                            f"server at connection capacity "
                            f"({self.max_connections}); retry shortly"
                        )
                    },
                    keep_alive=False,
                    extra_headers=(_retry_after_header(1.0),),
                ),
            )
            return
        self._active_connections += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._active_connections -= 1
            writer.close()

    async def _write_and_close(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        try:
            writer.write(data)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_label = peer[0] if isinstance(peer, (tuple, list)) and peer else "unknown"
        while True:
            try:
                request = await _read_request(reader)
            except _ProtocolError as exc:
                writer.write(
                    _render_response(400, {"error": str(exc)}, keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return
            try:
                status, payload, extra = self._dispatch(request, peer_label)
            except Exception:  # noqa: BLE001 - one bad request must not kill the loop
                _log.exception(
                    "unhandled error dispatching %s %s",
                    request.method,
                    request.path,
                )
                status, payload, extra = 500, {"error": "internal server error"}, ()
            keep_alive = request.keep_alive and status != 500
            self._requests += 1
            writer.write(
                _render_response(
                    status, payload, keep_alive=keep_alive, extra_headers=tuple(extra)
                )
            )
            await writer.drain()
            if not keep_alive:
                return

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(
        self, request: _Request, peer_label: str
    ) -> tuple[int, object, tuple[tuple[str, str], ...]]:
        # Rate limiting first — a limited client must not spend snapshot or
        # cache work.  /health stays exempt so orchestration probes and the
        # load harness's readiness wait never fight application traffic.
        if self.limiter is not None and request.path != "/health":
            client = request.headers.get("x-client-id") or peer_label
            retry_after = self.limiter.check(client)
            if retry_after > 0.0:
                return (
                    429,
                    {
                        "error": f"rate limit exceeded for client {client!r}",
                        "retry_after_seconds": round(retry_after, 6),
                    },
                    (_retry_after_header(retry_after),),
                )
        try:
            if request.method == "POST":
                if request.path != "/recommend":
                    return 404, {"error": f"unknown endpoint {request.path!r}"}, ()
                return 200, self._recommend_batch(request), ()
            if request.method != "GET":
                return (
                    405,
                    {"error": f"method {request.method} not allowed"},
                    (("Allow", "GET, POST"),),
                )
            if request.path == "/recommend":
                return 200, self._recommend_single(request.query), ()
            status, payload = route_query(self.store, request.path, request.query)
            if request.path == "/health" and status == 200:
                payload["frontend"] = "async"
                payload["cache"] = self.cache.stats()
                payload["rate_limit"] = (
                    None if self.limiter is None else self.limiter.stats()
                )
                payload["connections"] = {
                    "active": self._active_connections,
                    "max": self.max_connections,
                    "total": self._total_connections,
                    "rejected": self._rejected_connections,
                    "requests": self._requests,
                }
            return status, payload, ()
        except BadRequest as exc:
            return 400, {"error": str(exc)}, ()
        except EmptyDatabaseError:
            return 503, {"status": "empty", "version": None}, ()

    def _cached_recommendations(
        self, snapshot: RuleSnapshot, basket: tuple[Item, ...], k: int
    ) -> list[dict]:
        """The recommendation list via the response cache.

        The key's normalized basket (sorted, deduplicated) matches what
        :meth:`RuleSnapshot.recommend` actually depends on, so ``1,2`` and
        ``2,1,2`` share an entry.  Cached lists are served by reference and
        never mutated — they go straight to the JSON encoder.
        """
        key = (snapshot.version, tuple(sorted(set(basket))), k)
        cached = self.cache.get(key)
        if cached is None:
            cached = recommend_payload(snapshot, basket, k)
            self.cache.put(key, cached)
        return cached

    def _recommend_single(self, query: dict[str, str]) -> dict:
        snapshot = self.store.snapshot()
        if "basket" not in query:
            raise BadRequest("recommend needs a basket (e.g. ?basket=1,2,3)")
        basket = parse_items(query["basket"], "basket")
        k = parse_positive_int(query.get("k", "5"), "k")
        return {
            "version": snapshot.version,
            "basket": list(basket),
            "recommendations": self._cached_recommendations(snapshot, basket, k),
        }

    def _recommend_batch(self, request: _Request) -> dict:
        """Answer many baskets against exactly one snapshot read.

        The single ``store.snapshot()`` call is the batch-atomicity
        guarantee: a publication landing mid-batch cannot split the
        response across versions, because every basket is answered from the
        object loaded here.
        """
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise BadRequest("POST /recommend needs a JSON body") from None
        if not isinstance(document, dict):
            raise BadRequest('POST body must be an object like {"baskets": [[1,2]]}')
        baskets = document.get("baskets")
        if not isinstance(baskets, list) or not baskets:
            raise BadRequest('"baskets" must be a non-empty list of item lists')
        if len(baskets) > MAX_BATCH_BASKETS:
            raise BadRequest(
                f"at most {MAX_BATCH_BASKETS} baskets per request, got {len(baskets)}"
            )
        raw_k = document.get("k", 5)
        if not isinstance(raw_k, int) or isinstance(raw_k, bool) or raw_k < 1:
            raise BadRequest(f'"k" must be a positive integer, got {raw_k!r}')
        parsed: list[tuple[Item, ...]] = []
        for position, basket in enumerate(baskets):
            if (
                not isinstance(basket, list)
                or not basket
                or not all(
                    isinstance(item, int) and not isinstance(item, bool)
                    for item in basket
                )
            ):
                raise BadRequest(
                    f"basket #{position} must be a non-empty list of integers"
                )
            parsed.append(tuple(basket))
        snapshot = self.store.snapshot()  # the one read the whole batch shares
        return {
            "version": snapshot.version,
            "k": raw_k,
            "results": [
                {
                    "basket": list(basket),
                    "recommendations": self._cached_recommendations(
                        snapshot, basket, raw_k
                    ),
                }
                for basket in parsed
            ],
        }

"""Immutable, versioned snapshots of a maintained rule set.

A :class:`RuleSnapshot` freezes everything a query needs at one maintenance
sequence number: the strong rules, an inverted antecedent-item index for
basket matching, and the itemset-support table.  A snapshot is built once
(by the writer, off the request path) and never mutated afterwards, so any
number of reader threads can query it without synchronisation — the
lock-free contract of :class:`~repro.serve.store.RuleStore` rests on this
immutability.

Basket matching
---------------

``rules_for_basket`` must find every rule whose antecedent is a subset of
the basket.  The naive approach tests all ``R`` rules per query.  The index
instead assigns each rule to **one representative antecedent item — its
rarest one** (smallest support count in the lattice): a rule can only apply
when *all* its antecedent items are in the basket, so in particular its
representative is, and scanning the posting lists of just the basket's items
visits every applicable rule.  Choosing the *rarest* item keeps posting
lists short where baskets are likely to probe (frequent items would
otherwise accumulate most rules).  Each visited candidate is then verified
with a real subset test, so the index is purely an accelerator — the result
is identical to the linear scan (``rules_for_basket_linear``, kept as the
benchmark baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping

from ..itemsets import Item, Itemset, format_itemset
from ..mining.result import ItemsetLattice
from ..mining.rules import AssociationRule, RulesDiff, diff_rules, rule_as_dict

__all__ = ["Recommendation", "RuleSnapshot"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with the statistics of the rule that backs it."""

    item: Item
    confidence: float
    lift: float
    support: float
    rule: AssociationRule

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form served by the ``/recommend`` endpoint."""
        return {
            "item": self.item,
            "confidence": self.confidence,
            "lift": self.lift,
            "support": self.support,
            "rule": str(self.rule),
        }


class RuleSnapshot:
    """One immutable, versioned view of a maintained rule set.

    Parameters
    ----------
    version:
        The maintenance sequence number that produced this state (for a
        durable session: the journal sequence number).
    rules:
        The strong rules, in :func:`~repro.mining.rules.generate_rules`
        order (descending confidence, then support).
    lattice:
        The large-itemset state backing the rules; its support table is
        copied into the snapshot so later lattice mutations cannot leak in.
    min_support, min_confidence:
        The thresholds the state was maintained at (served by ``/health``).
    policy:
        JSON-safe maintenance-policy description
        (:meth:`~repro.core.maintenance.RuleMaintainer.policy_info` output:
        policy spec, bounds, skip-estimator counters), served by ``/health``.
        ``None`` for snapshots built without a policy-aware publisher.
    """

    __slots__ = (
        "version",
        "database_size",
        "min_support",
        "min_confidence",
        "policy",
        "rules",
        "_supports",
        "_antecedent_sets",
        "_postings",
    )

    def __init__(
        self,
        version: int,
        rules: Iterable[AssociationRule],
        lattice: ItemsetLattice,
        min_support: float,
        min_confidence: float,
        policy: Mapping[str, object] | None = None,
    ) -> None:
        self.version = int(version)
        self.policy: dict[str, object] | None = dict(policy) if policy is not None else None
        self.rules: tuple[AssociationRule, ...] = tuple(rules)
        self.database_size = lattice.database_size
        self.min_support = min_support
        self.min_confidence = min_confidence
        # A private copy: the lattice keeps evolving under maintenance, the
        # snapshot must not.
        self._supports: dict[Itemset, int] = dict(lattice.supports())
        self._antecedent_sets: tuple[frozenset[Item], ...] = tuple(
            frozenset(rule.antecedent) for rule in self.rules
        )
        postings: dict[Item, list[int]] = {}
        for index, rule in enumerate(self.rules):
            representative = min(
                rule.antecedent,
                key=lambda item: (self._supports.get((item,), 0), item),
            )
            postings.setdefault(representative, []).append(index)
        self._postings: dict[Item, tuple[int, ...]] = {
            item: tuple(indexes) for item, indexes in postings.items()
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rule_count(self) -> int:
        """Number of strong rules in the snapshot."""
        return len(self.rules)

    @property
    def itemset_count(self) -> int:
        """Number of large itemsets in the snapshot's support table."""
        return len(self._supports)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuleSnapshot(version={self.version}, rules={self.rule_count}, "
            f"itemsets={self.itemset_count}, database_size={self.database_size})"
        )

    # ------------------------------------------------------------------ #
    # Itemset support lookups
    # ------------------------------------------------------------------ #
    def support_count(self, items: Iterable[Item]) -> int:
        """Absolute support of *items*, 0 when the itemset is not large."""
        return self._supports.get(tuple(sorted(set(items))), 0)

    def support(self, items: Iterable[Item]) -> float:
        """Relative support of *items* with respect to the database size."""
        if self.database_size <= 0:
            return 0.0
        return self.support_count(items) / self.database_size

    def is_large(self, items: Iterable[Item]) -> bool:
        """True when *items* is one of the maintained large itemsets."""
        return tuple(sorted(set(items))) in self._supports

    def supports(self) -> Mapping[Itemset, int]:
        """The full itemset-support table (read-only view)."""
        return MappingProxyType(self._supports)

    # ------------------------------------------------------------------ #
    # Basket queries
    # ------------------------------------------------------------------ #
    def rules_for_basket(self, basket: Iterable[Item]) -> list[AssociationRule]:
        """Every rule whose antecedent is contained in *basket* (indexed).

        Rules come back in snapshot order (descending confidence, then
        support) — identical to :meth:`rules_for_basket_linear`.
        """
        members = frozenset(basket)
        matched: list[int] = []
        for item in members:
            for index in self._postings.get(item, ()):
                if self._antecedent_sets[index] <= members:
                    matched.append(index)
        matched.sort()
        return [self.rules[index] for index in matched]

    def rules_for_basket_linear(self, basket: Iterable[Item]) -> list[AssociationRule]:
        """The unindexed baseline: test every rule's antecedent against *basket*."""
        members = frozenset(basket)
        return [
            rule
            for rule, antecedent in zip(self.rules, self._antecedent_sets, strict=True)
            if antecedent <= members
        ]

    def recommend(self, basket: Iterable[Item], k: int = 5) -> list[Recommendation]:
        """Top-*k* items to add to *basket*, scored by confidence then lift.

        Each applicable rule votes for the consequent items the basket does
        not already own; an item's score is its best backing rule's
        ``(confidence, lift, support)``.  Ties break on the item id, so the
        ranking is deterministic.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        members = frozenset(basket)
        best: dict[Item, AssociationRule] = {}
        for rule in self.rules_for_basket(members):
            for item in rule.consequent:
                if item in members:
                    continue
                current = best.get(item)
                if current is None or (
                    (rule.confidence, rule.lift, rule.support)
                    > (current.confidence, current.lift, current.support)
                ):
                    best[item] = rule
        ranked = sorted(
            best.items(),
            key=lambda entry: (
                -entry[1].confidence,
                -entry[1].lift,
                -entry[1].support,
                entry[0],
            ),
        )
        return [
            Recommendation(
                item=item,
                confidence=rule.confidence,
                lift=rule.lift,
                support=rule.support,
                rule=rule,
            )
            for item, rule in ranked[:k]
        ]

    # ------------------------------------------------------------------ #
    # Diffing and serialization
    # ------------------------------------------------------------------ #
    def diff(self, previous: "RuleSnapshot") -> RulesDiff:
        """What changed since *previous* — including pure statistics drift.

        Built on :func:`~repro.mining.rules.diff_rules`, so a rule whose
        antecedent/consequent pair survived but whose confidence, support or
        support count moved shows up in ``updated`` instead of being
        silently reported as unchanged.
        """
        return diff_rules(previous.rules, self.rules)

    def as_dict(self, limit: int | None = None) -> dict[str, object]:
        """JSON-safe form of the snapshot (optionally truncating the rules)."""
        rules = self.rules if limit is None else self.rules[:limit]
        return {
            "version": self.version,
            "database_size": self.database_size,
            "min_support": self.min_support,
            "min_confidence": self.min_confidence,
            "rule_count": self.rule_count,
            "itemset_count": self.itemset_count,
            "rules": [rule_as_dict(rule) for rule in rules],
        }

    def describe(self) -> str:
        """One-line human description (the serve CLI's startup banner)."""
        top = (
            f"; top rule {format_itemset(self.rules[0].antecedent)} => "
            f"{format_itemset(self.rules[0].consequent)}"
            if self.rules
            else ""
        )
        return (
            f"snapshot v{self.version}: {self.rule_count} rules over "
            f"{self.itemset_count} itemsets, |DB|={self.database_size}{top}"
        )

"""Per-client token-bucket rate limiting for the serving tier.

Each client (keyed by ``X-Client-Id`` header when present, else the peer
address) owns one :class:`TokenBucket`: *rate* tokens refill per second up
to a *burst* ceiling, and each request spends one token.  A request that
finds the bucket empty is refused — the front end answers ``429 Too Many
Requests`` with a ``Retry-After`` header derived from
:meth:`TokenBucket.acquire`'s return value (the exact time until the next
token exists), so a well-behaved client can sleep precisely instead of
hammering.

:class:`RateLimiter` bounds its client map (LRU eviction past
``max_clients``) so a week-long server scanning the whole IPv4 space of
clients still holds O(max_clients) memory — an evicted client simply starts
over with a full bucket, which errs on the side of admitting traffic.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["RateLimiter", "TokenBucket", "DEFAULT_MAX_CLIENTS"]

#: Bound on distinct clients tracked before LRU eviction kicks in.
DEFAULT_MAX_CLIENTS = 10_000


class TokenBucket:
    """One client's bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def acquire(self, now: float) -> float:
        """Try to spend one token at time *now*.

        Returns ``0.0`` when the request is admitted, else the seconds until
        a full token will have accrued (the precise ``Retry-After``).
        """
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """A bounded map of per-client token buckets.

    Thread-safe: the async front end calls :meth:`check` from its event
    loop, but the class does not assume a single caller so the threaded
    front end (or tests) can share it.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive requests/second, got {rate}")
        if burst is None:
            # Default burst: one second's worth of traffic, at least one
            # request (a rate of 0.5/s must still ever admit anything).
            burst = max(1.0, rate)
        if burst < 1:
            raise ValueError(f"burst must be >= 1 request, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be positive, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()
        self._allowed = 0
        self._limited = 0
        self._evicted = 0

    def check(self, client: str, now: float | None = None) -> float:
        """Admit or refuse one request from *client*.

        Returns ``0.0`` when admitted, else the seconds the client should
        wait before retrying.
        """
        if now is None:
            now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
                self._evicted += 1
            retry_after = bucket.acquire(now)
            if retry_after == 0.0:
                self._allowed += 1
            else:
                self._limited += 1
            return retry_after

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)

    def stats(self) -> dict[str, float | int]:
        """Counters served by the async front end's ``/health`` endpoint."""
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self._allowed,
                "limited": self._limited,
                "evicted": self._evicted,
            }

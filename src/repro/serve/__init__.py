"""Serving maintained association rules (the read side of the system).

The maintenance side of this repo keeps discovered rules *current* under
update batches (FUP/FUP2, durable sessions); this package is why that
matters: it **serves** the maintained rules to queries while maintenance
keeps running.

* :class:`~repro.serve.snapshot.RuleSnapshot` — an immutable, versioned view
  of the rule set (rules + inverted antecedent-item index + itemset-support
  table), stamped with the maintenance sequence number that produced it.
* :class:`~repro.serve.store.RuleStore` — the lock-free single-writer /
  many-reader seam: publication is one atomic reference swap, readers never
  lock and never observe a half-applied batch.
* :class:`~repro.serve.http.RuleServer` — a stdlib ``ThreadingHTTPServer``
  JSON endpoint (``/rules``, ``/recommend``, ``/itemset``, ``/health``)
  behind the ``repro serve`` CLI subcommand.
* :class:`~repro.serve.feed.SessionFeed` — keeps a store fresh from an
  on-disk :class:`~repro.core.session.MaintenanceSession` directory without
  ever taking the session's writer lock.

See ``docs/serving.md`` for the snapshot/versioning model and the
consistency guarantees.
"""

from .feed import SessionFeed
from .http import RuleServer
from .snapshot import Recommendation, RuleSnapshot
from .store import RuleStore

__all__ = [
    "Recommendation",
    "RuleServer",
    "RuleSnapshot",
    "RuleStore",
    "SessionFeed",
]

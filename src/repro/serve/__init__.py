"""Serving maintained association rules (the read side of the system).

The maintenance side of this repo keeps discovered rules *current* under
update batches (FUP/FUP2, durable sessions); this package is why that
matters: it **serves** the maintained rules to queries while maintenance
keeps running.

* :class:`~repro.serve.snapshot.RuleSnapshot` — an immutable, versioned view
  of the rule set (rules + inverted antecedent-item index + itemset-support
  table), stamped with the maintenance sequence number that produced it.
* :class:`~repro.serve.store.RuleStore` — the lock-free single-writer /
  many-reader seam: publication is one atomic reference swap, readers never
  lock and never observe a half-applied batch.
* :class:`~repro.serve.http.RuleServer` — a stdlib ``ThreadingHTTPServer``
  JSON endpoint (``/rules``, ``/recommend``, ``/itemset``, ``/health``)
  behind the ``repro serve`` CLI subcommand.
* :class:`~repro.serve.async_server.AsyncRuleServer` — the high-concurrency
  asyncio front end over the same store and routes: keep-alive HTTP/1.1,
  batched ``POST /recommend`` answered from one snapshot, a bounded LRU
  response cache invalidated on publish, per-client token-bucket rate
  limiting (429 + ``Retry-After``) and bounded-connection backpressure
  (``repro serve --frontend async``).
* :class:`~repro.serve.feed.SessionFeed` — keeps a store fresh from an
  on-disk :class:`~repro.core.session.MaintenanceSession` directory without
  ever taking the session's writer lock.

Shared request semantics (routing, parsing, normalized response headers)
live in :mod:`repro.serve.api`; the async front end's cache and limiter in
:mod:`repro.serve.cache` / :mod:`repro.serve.ratelimit`.

See ``docs/serving.md`` for the snapshot/versioning model and the
consistency guarantees.
"""

from .async_server import AsyncRuleServer
from .cache import ResponseCache
from .feed import SessionFeed
from .http import RuleServer
from .ratelimit import RateLimiter, TokenBucket
from .snapshot import Recommendation, RuleSnapshot
from .store import RuleStore

__all__ = [
    "AsyncRuleServer",
    "RateLimiter",
    "Recommendation",
    "ResponseCache",
    "RuleServer",
    "RuleSnapshot",
    "RuleStore",
    "SessionFeed",
    "TokenBucket",
]

"""The front-end-agnostic request API shared by both HTTP servers.

Two front ends serve the same store — the stdlib threaded
:class:`~repro.serve.http.RuleServer` and the asyncio
:class:`~repro.serve.async_server.AsyncRuleServer` — and everything that is
not transport plumbing lives here so their semantics cannot drift apart:

* query parsing (:func:`parse_items`, :func:`parse_positive_int`) and the
  :class:`BadRequest` error both front ends answer with a 400;
* the GET routing table (:func:`route_query`): ``/health``, ``/rules``,
  ``/recommend`` and ``/itemset`` answered from exactly one snapshot read;
* response normalization (:func:`encode_json`, :func:`response_headers`):
  every response — including 4xx/5xx error bodies — carries
  ``Content-Type: application/json; charset=utf-8``, an exact
  ``Content-Length``, and an explicit ``Connection`` header, so keep-alive
  clients never have to guess whether the connection survives an error.

Historically the threaded front end hand-rolled its headers: error bodies
went out without a charset and no response ever said ``Connection:
keep-alive`` explicitly, leaving HTTP/1.0-style clients to assume close.
Centralising the header set here is the fix.
"""

from __future__ import annotations

import json
from http import HTTPStatus
from typing import Iterable, Mapping

from ..errors import EmptyDatabaseError
from ..itemsets import Item
from .snapshot import RuleSnapshot
from .store import RuleStore

__all__ = [
    "BadRequest",
    "JSON_CONTENT_TYPE",
    "encode_json",
    "parse_items",
    "parse_positive_int",
    "reason_phrase",
    "recommend_payload",
    "respond",
    "response_headers",
    "route_query",
]

#: The one Content-Type every response is served with.
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class BadRequest(ValueError):
    """A malformed query (answered with a 400, not a traceback)."""


def parse_items(raw: str, parameter: str) -> tuple[Item, ...]:
    """Parse a comma-separated item list (``"1,2,3"``) from a query value."""
    try:
        items = tuple(int(token) for token in raw.split(",") if token.strip() != "")
    except ValueError:
        raise BadRequest(
            f"{parameter} must be comma-separated integers, got {raw!r}"
        ) from None
    if not items:
        raise BadRequest(f"{parameter} must name at least one item")
    return items


def parse_positive_int(raw: str, parameter: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(f"{parameter} must be an integer, got {raw!r}") from None
    if value < 1:
        raise BadRequest(f"{parameter} must be positive, got {value}")
    return value


def encode_json(payload: object) -> bytes:
    """Serialize *payload* as strict JSON (no NaN/Infinity literals)."""
    return json.dumps(payload, allow_nan=False).encode("utf-8")


def response_headers(
    body: bytes,
    *,
    keep_alive: bool,
    extra: Iterable[tuple[str, str]] = (),
) -> list[tuple[str, str]]:
    """The normalized header set for one JSON response.

    Shared by both front ends so that success and error paths alike carry a
    charset-qualified Content-Type, a Content-Length that matches the body
    byte count exactly, and an explicit Connection disposition.
    """
    headers = [
        ("Content-Type", JSON_CONTENT_TYPE),
        ("Content-Length", str(len(body))),
    ]
    headers.extend(extra)
    headers.append(("Connection", "keep-alive" if keep_alive else "close"))
    return headers


def reason_phrase(status: int) -> str:
    """The standard reason phrase for a status code (``200`` → ``"OK"``)."""
    try:
        return HTTPStatus(status).phrase
    except ValueError:  # pragma: no cover - non-standard codes unused
        return "Unknown"


def recommend_payload(snapshot: RuleSnapshot, basket: tuple[Item, ...], k: int) -> list[dict]:
    """The JSON-safe recommendation list for one basket against one snapshot.

    This is the (cacheable) body of both the single-basket ``GET`` and each
    entry of the batched ``POST`` — the async front end keys its response
    cache on ``(snapshot.version, normalized basket, k)`` around this call.
    """
    return [recommendation.as_dict() for recommendation in snapshot.recommend(basket, k=k)]


def route_query(store: RuleStore, path: str, query: Mapping[str, str]) -> tuple[int, dict]:
    """Answer one GET request against *store*; returns ``(status, payload)``.

    Each route reads the store's snapshot exactly once and answers entirely
    from that immutable object, so every response is internally consistent —
    version, rules and supports all describe the same maintenance sequence
    number even while a writer publishes mid-request.  Raises
    :class:`BadRequest` for malformed queries and
    :class:`~repro.errors.EmptyDatabaseError` when no snapshot is published
    yet; front ends map those to 400 and 503.
    """
    if path == "/health":
        if not store.has_snapshot:
            return 503, {"status": "empty", "version": None}
        snapshot = store.snapshot()
        return 200, {
            "status": "ok",
            "version": snapshot.version,
            "database_size": snapshot.database_size,
            "rules": snapshot.rule_count,
            "itemsets": snapshot.itemset_count,
            "min_support": snapshot.min_support,
            "min_confidence": snapshot.min_confidence,
            "publications": store.publications,
            "policy": snapshot.policy,
        }
    if path == "/rules":
        snapshot = store.snapshot()
        limit = None
        if "limit" in query:
            limit = parse_positive_int(query["limit"], "limit")
        return 200, snapshot.as_dict(limit=limit)
    if path == "/recommend":
        snapshot = store.snapshot()
        if "basket" not in query:
            raise BadRequest("recommend needs a basket (e.g. ?basket=1,2,3)")
        basket = parse_items(query["basket"], "basket")
        k = parse_positive_int(query.get("k", "5"), "k")
        return 200, {
            "version": snapshot.version,
            "basket": list(basket),
            "recommendations": recommend_payload(snapshot, basket, k),
        }
    if path == "/itemset":
        snapshot = store.snapshot()
        if "items" not in query:
            raise BadRequest("itemset needs items (e.g. ?items=1,2)")
        items = parse_items(query["items"], "items")
        return 200, {
            "version": snapshot.version,
            "items": sorted(set(items)),
            "support_count": snapshot.support_count(items),
            "support": snapshot.support(items),
            "large": snapshot.is_large(items),
        }
    return 404, {"error": f"unknown endpoint {path!r}"}


def respond(store: RuleStore, path: str, query: Mapping[str, str]) -> tuple[int, dict]:
    """:func:`route_query` with the shared error mapping applied.

    ``BadRequest`` becomes a 400 with an ``error`` body; an empty store
    becomes the same 503 the ``/health`` route serves.
    """
    try:
        return route_query(store, path, query)
    except BadRequest as exc:
        return 400, {"error": str(exc)}
    except EmptyDatabaseError:
        return 503, {"status": "empty", "version": None}

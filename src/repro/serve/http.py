"""A stdlib JSON/HTTP front end over a :class:`~repro.serve.store.RuleStore`.

Endpoints (all ``GET``, all JSON):

``/health``
    ``{"status", "version", "database_size", "rules", "itemsets",
    "min_support", "min_confidence", "publications"}`` — 503 with
    ``status="empty"`` until a snapshot is published.
``/rules?limit=N``
    The served rule set (optionally truncated), with the snapshot version.
``/recommend?basket=1,2,3&k=5``
    Top-k recommendations for a basket; owned items are excluded.
``/itemset?items=1,2``
    Support lookup for one itemset against the snapshot's support table.

Every request reads the store's snapshot exactly once and answers entirely
from that immutable object, so a response is always internally consistent —
version, rules and supports all describe the same maintenance sequence
number even while a writer publishes mid-request.  The server is a
``ThreadingHTTPServer`` (one thread per request, daemonised); the store's
lock-free read contract is what makes that safe without further
synchronisation.  Routing and response normalization are shared with the
asyncio front end through :mod:`repro.serve.api`, so the two cannot drift.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .api import encode_json, respond, response_headers
from .snapshot import RuleSnapshot
from .store import RuleStore

__all__ = ["RuleServer"]


class _RuleRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # The stdlib handler writes headers and body as separate TCP segments;
    # with Nagle on, the body segment can sit behind the peer's delayed ACK
    # for ~40ms on every keep-alive request after the first.  TCP_NODELAY
    # makes the threaded front end's latency reflect its work, not a timer.
    disable_nagle_algorithm = True

    # The owning _RuleHTTPServer carries the store; typed for clarity.
    server: "_RuleHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        status, payload = respond(self.server.rule_store, parsed.path, query)
        body = encode_json(payload)
        self.send_response(status)
        # The client may have requested close; honour what the stdlib parsed
        # from the request headers rather than forcing keep-alive back on.
        keep_alive = not self.close_connection
        for name, value in response_headers(body, keep_alive=keep_alive):
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI prints its own banner)."""


class _RuleHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int], store: RuleStore) -> None:
        super().__init__(address, _RuleRequestHandler)
        self.rule_store = store


class RuleServer:
    """The HTTP endpoint over a rule store.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Use :meth:`start` for a background server (tests, embedding) or
    :meth:`serve_forever` to run on the calling thread (the CLI).
    """

    def __init__(self, store: RuleStore, host: str = "127.0.0.1", port: int = 0) -> None:
        self.store = store
        self._httpd = _RuleHTTPServer((host, port), store)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RuleServer":
        """Serve on a background daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-rule-server", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (or Ctrl-C)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop a *running* serve loop (safe to call from any thread).

        Only call while :meth:`serve_forever` (or the :meth:`start` thread)
        is active — ``socketserver`` blocks a shutdown request until the
        serve loop acknowledges it, so shutting down a server whose loop
        never ran would wait forever.
        """
        self._httpd.shutdown()

    def close(self) -> None:
        """Stop the background serve loop (if any) and release the socket.

        Safe in every lifecycle state, more than once: a server that was
        never started (or whose foreground :meth:`serve_forever` already
        returned) has no loop to stop, so only the socket is closed.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RuleServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> RuleSnapshot:
        """The snapshot requests are currently answered from."""
        return self.store.snapshot()

"""Feeding a :class:`~repro.serve.store.RuleStore` from a session directory.

``repro serve --session`` serves rules maintained by *other processes*: a
writer applies batches through ``repro session apply`` while the server keeps
answering queries.  :class:`SessionFeed` bridges the two without ever taking
the session's writer lock — it polls the on-disk state with the read-only
:meth:`~repro.core.session.MaintenanceSession.peek` (manifest + journal line
count, cheap) and, when the applied sequence has advanced past the served
snapshot's version, rebuilds the state with
:func:`~repro.core.session.read_session_state` and publishes it.

Because the refresh is lock-free it can race a writer's checkpoint sweep;
when that happens the rebuild fails cleanly, the previously published
snapshot keeps serving, and the next tick retries — readers never see a
half-state and the writer is never blocked by the server.

When writer and server live in *one* process — ``repro pipeline``, which
ingests an event stream and serves from the same session — no feed is
needed: the store attaches directly to the session's maintainer
(``store.attach(session.maintainer)``) and every applied batch republishes
synchronously, with no polling latency and no rebuild cost.
"""

from __future__ import annotations

import logging
import threading
from pathlib import Path

from ..core.session import JOURNAL_NAME, MaintenanceSession, read_session_state
from ..errors import ReproError
from .store import RuleStore

__all__ = ["SessionFeed"]

_log = logging.getLogger(__name__)

#: Default seconds between on-disk freshness checks.
DEFAULT_REFRESH_SECONDS = 1.0


class SessionFeed:
    """Keeps a store's snapshot in sync with an on-disk maintenance session."""

    def __init__(
        self,
        store: RuleStore,
        directory: str | Path,
        interval: float = DEFAULT_REFRESH_SECONDS,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"refresh interval must be positive, got {interval}")
        self.store = store
        self.directory = Path(directory)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Identity of the on-disk state behind the last publication.  Keying
        # freshness on the sequence number alone would miss the rare race
        # where a replayed journal record is scrubbed by the writer (a
        # refused batch) and a *different* batch later takes the same
        # sequence number; the journal file's (size, mtime) closes that
        # window, and checkpoints only force a harmless redundant rebuild.
        self._published_marker: tuple | None = None

    def _disk_marker(self, status) -> tuple:
        try:
            stat = (self.directory / JOURNAL_NAME).stat()
            journal_id = (stat.st_size, stat.st_mtime_ns)
        except OSError:
            journal_id = None
        return (status.checkpoint_seq, status.applied_seq, journal_id)

    def refresh(self, strict: bool = False) -> bool:
        """One freshness check; returns True when a new snapshot was published.

        By default never raises for session-level races (a writer holding the
        directory mid-checkpoint, a swept snapshot, a mid-write journal): the
        store simply keeps serving the previous snapshot and the next call
        retries.  With ``strict=True`` the underlying error propagates
        instead — the initial publication wants the real diagnosis (missing
        directory, corrupt session), not a silent False.
        """
        try:
            status = MaintenanceSession.peek(self.directory)
        except (ReproError, OSError):
            if strict:
                raise
            return False
        marker = self._disk_marker(status)
        if self.store.has_snapshot and marker == self._published_marker:
            return False
        try:
            maintainer = read_session_state(self.directory)
        except (ReproError, OSError):
            # Raced a live writer (checkpoint sweep, torn journal tail):
            # keep the published snapshot, retry next tick.
            if strict:
                raise
            return False
        try:
            self.store.publish_from(maintainer)
        finally:
            # The snapshot copies everything it serves; release the rebuilt
            # maintainer's engine resources (worker processes on the
            # processes executor) instead of churning them per republish.
            maintainer.close()
        # Recording the marker probed *before* the rebuild errs on the safe
        # side: a batch landing mid-rebuild makes the next tick rebuild once
        # more rather than ever serving stale state as fresh.
        self._published_marker = marker
        return True

    # ------------------------------------------------------------------ #
    # Background polling
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the background refresh thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-session-feed", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        # Refresh at loop entry (not after a first full interval) so start()
        # alone brings an empty store live promptly.
        while True:
            try:
                self.refresh()
            except Exception:
                # refresh() already absorbs the session-level races; anything
                # else (a store listener raising, an engine-shutdown hiccup in
                # maintainer.close) must not kill the feed thread — a server
                # serving one stale tick and retrying beats one frozen at
                # whatever version the crash left behind.  But the error must
                # leave a trace, or a permanently failing refresh looks like
                # a quiet database.
                _log.exception("session feed refresh failed; retrying next tick")
            if self._stop.wait(self.interval):
                return

    def stop(self) -> None:
        """Stop the background thread and wait for it to exit."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None

    def __enter__(self) -> "SessionFeed":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""The lock-free published-snapshot store.

:class:`RuleStore` is the seam between the maintenance side (one writer:
a :class:`~repro.core.maintenance.RuleMaintainer`, possibly inside a
:class:`~repro.core.session.MaintenanceSession`) and the serving side (any
number of reader threads).  The design is a single atomic reference swap:

* the writer builds a complete, immutable :class:`RuleSnapshot` *off* the
  read path, then publishes it by assigning one attribute — under CPython
  an attribute store is a single bytecode-level operation protected by the
  GIL, so a reader sees either the old snapshot or the new one, never a
  torn mixture;
* readers call :meth:`snapshot` (one attribute load) and then query the
  returned object, which can never change underneath them.

Readers therefore never take a lock, never block the writer, and never
observe a half-applied batch: every (version, rule set, support table,
database size) they see was mutually consistent at publication time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import EmptyDatabaseError
from .snapshot import RuleSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.maintenance import RuleMaintainer

__all__ = ["RuleStore"]


class RuleStore:
    """Publishes immutable rule snapshots to lock-free readers.

    Single-writer, many-reader: publication is not synchronised against
    concurrent publications (the maintenance pipeline applies batches
    sequentially), but reads are safe from any thread at any time.
    """

    def __init__(self) -> None:
        self._snapshot: RuleSnapshot | None = None
        self._published = 0
        self._listeners: list[Callable[[RuleSnapshot], None]] = []

    # ------------------------------------------------------------------ #
    # Reader side
    # ------------------------------------------------------------------ #
    def snapshot(self) -> RuleSnapshot:
        """The currently published snapshot (raises until one is published)."""
        snapshot = self._snapshot  # single read: the atomic point
        if snapshot is None:
            raise EmptyDatabaseError("RuleStore has no published snapshot yet")
        return snapshot

    @property
    def has_snapshot(self) -> bool:
        """True once :meth:`publish` has run at least once."""
        return self._snapshot is not None

    @property
    def version(self) -> int | None:
        """Version of the current snapshot, or ``None`` when empty."""
        snapshot = self._snapshot
        return None if snapshot is None else snapshot.version

    @property
    def publications(self) -> int:
        """How many snapshots have been published over the store's lifetime."""
        return self._published

    # ------------------------------------------------------------------ #
    # Writer side
    # ------------------------------------------------------------------ #
    def publish(self, snapshot: RuleSnapshot) -> RuleSnapshot:
        """Atomically replace the served snapshot with *snapshot*."""
        self._snapshot = snapshot  # single store: the atomic point
        self._published += 1
        for listener in self._listeners:
            listener(snapshot)
        return snapshot

    def publish_from(self, maintainer: "RuleMaintainer") -> RuleSnapshot:
        """Build a snapshot of *maintainer*'s current state and publish it.

        The snapshot version is the maintainer's batch sequence number —
        for a restored durable session, the journal sequence.
        """
        return self.publish(
            RuleSnapshot(
                version=maintainer.sequence,
                rules=maintainer.rules,
                lattice=maintainer.result.lattice,
                min_support=maintainer.min_support,
                min_confidence=maintainer.min_confidence,
                policy=maintainer.policy_info(),
            )
        )

    def attach(self, maintainer: "RuleMaintainer") -> None:
        """Subscribe to *maintainer* so every committed batch republishes.

        If the maintainer is already initialised its current state is
        published immediately; afterwards each ``apply`` (and any
        ``restore``) publishes the post-batch state — the maintainer invokes
        subscribers only once its database, rules and sequence are mutually
        consistent.
        """
        maintainer.subscribe(self.publish_from)

    def on_publish(self, listener: Callable[[RuleSnapshot], None]) -> None:
        """Register *listener* to run (on the writer thread) per publication."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[RuleSnapshot], None]) -> None:
        """Unregister a :meth:`on_publish` listener (no-op when absent).

        Front ends subscribe their cache invalidation to the store; a closed
        front end unhooks itself here so a long-lived store feeding many
        server generations does not accumulate dead callbacks.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

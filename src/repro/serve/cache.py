"""A bounded, concurrency-safe LRU response cache for the serving tier.

The async front end memoizes recommendation responses keyed on
``(snapshot_version, basket, k)``.  Because the snapshot version is part of
the key, a cached entry can never be served against a newer snapshot — the
version in the key *is* the consistency proof.  Publication still clears the
cache wholesale (:meth:`ResponseCache.clear`, wired to
:meth:`~repro.serve.store.RuleStore.on_publish`): entries for a superseded
version can never hit again, so keeping them would only squeeze live entries
out of the bounded capacity.

The cache is guarded by a plain mutex rather than relying on the event
loop's single-threadedness: publication hooks run on the *writer's* thread
(a maintainer applying a batch, or the session feed's polling thread), so
``clear()`` genuinely races ``get``/``put``.

A zero capacity disables caching entirely (every ``get`` misses, ``put`` is
a no-op), which is what ``repro serve --cache-size 0`` means.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

__all__ = ["ResponseCache", "DEFAULT_CACHE_SIZE"]

#: Default entry bound of the async front end's response cache.
DEFAULT_CACHE_SIZE = 1024


class ResponseCache:
    """A thread-safe LRU mapping with wholesale invalidation and stats."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: Hashable) -> object | None:
        """The cached value for *key* (refreshing its recency), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert *key* as most-recent, evicting LRU entries over capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (the on-publish wholesale invalidation)."""
        with self._lock:
            self._invalidations += 1
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters served by the async front end's ``/health`` endpoint."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }

"""Persistence for transaction databases.

Two interchangeable formats are provided:

* **Text** — one transaction per line, items as space-separated integers.
  This is the de-facto interchange format used by most frequent-itemset
  benchmark datasets (e.g. the FIMI repository), so databases written here
  can be consumed by other tools and vice versa.
* **Binary** — a compact little-endian encoding (transaction length followed
  by item ids, 4 bytes each).  Used when the synthetic workloads of the
  benchmark harness are cached on disk between runs.

Both formats round-trip exactly through :class:`TransactionDatabase`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import StorageError
from .transaction_db import Transaction, TransactionDatabase

__all__ = [
    "write_transactions_text",
    "read_transactions_text",
    "write_transactions_binary",
    "read_transactions_binary",
    "save_database",
    "load_database",
]

_HEADER = b"REPROTDB"
_RECORD = struct.Struct("<I")


def write_transactions_text(path: str | Path, transactions: Iterable[Transaction]) -> int:
    """Write transactions to *path* in the one-line-per-transaction text format.

    Returns the number of transactions written.
    """
    path = Path(path)
    written = 0
    try:
        with path.open("w", encoding="ascii") as handle:
            for transaction in transactions:
                handle.write(" ".join(str(item) for item in transaction))
                handle.write("\n")
                written += 1
    except OSError as exc:
        raise StorageError(f"cannot write database to {path}: {exc}") from exc
    return written


def read_transactions_text(path: str | Path) -> Iterator[Transaction]:
    """Yield transactions from a text-format file (empty lines are empty transactions)."""
    path = Path(path)
    try:
        with path.open("r", encoding="ascii") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    yield ()
                    continue
                try:
                    yield tuple(sorted({int(token) for token in stripped.split()}))
                except ValueError as exc:
                    raise StorageError(
                        f"{path}:{line_number}: non-integer item in {stripped!r}"
                    ) from exc
    except OSError as exc:
        raise StorageError(f"cannot read database from {path}: {exc}") from exc


def write_transactions_binary(path: str | Path, transactions: Iterable[Transaction]) -> int:
    """Write transactions to *path* in the compact binary format."""
    path = Path(path)
    written = 0
    try:
        with path.open("wb") as handle:
            handle.write(_HEADER)
            for transaction in transactions:
                handle.write(_RECORD.pack(len(transaction)))
                for item in transaction:
                    handle.write(_RECORD.pack(item))
                written += 1
    except OSError as exc:
        raise StorageError(f"cannot write database to {path}: {exc}") from exc
    return written


def read_transactions_binary(path: str | Path) -> Iterator[Transaction]:
    """Yield transactions from a binary-format file written by this module."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read database from {path}: {exc}") from exc
    if not data.startswith(_HEADER):
        raise StorageError(f"{path} is not a repro binary transaction file")
    offset = len(_HEADER)
    total = len(data)
    while offset < total:
        if offset + _RECORD.size > total:
            raise StorageError(f"{path} is truncated at byte {offset}")
        (length,) = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        end = offset + length * _RECORD.size
        if end > total:
            raise StorageError(f"{path} is truncated at byte {offset}")
        items = struct.unpack_from(f"<{length}I", data, offset) if length else ()
        offset = end
        yield tuple(sorted(set(items)))


def save_database(database: TransactionDatabase, path: str | Path, binary: bool = False) -> int:
    """Persist *database* to *path*; pick the format with the *binary* flag."""
    writer = write_transactions_binary if binary else write_transactions_text
    return writer(path, database.transactions())


def load_database(path: str | Path, name: str = "", binary: bool = False) -> TransactionDatabase:
    """Load a database previously written with :func:`save_database`."""
    reader = read_transactions_binary if binary else read_transactions_text
    database = TransactionDatabase(name=name or Path(path).stem)
    database.extend(reader(path))
    return database

"""Persistence for transaction databases.

Three interchangeable formats are provided:

* **Text** — one transaction per line, items as space-separated integers.
  This is the de-facto interchange format used by most frequent-itemset
  benchmark datasets (e.g. the FIMI repository), so databases written here
  can be consumed by other tools and vice versa.
* **Binary (snapshot v1)** — a compact little-endian encoding (transaction
  length followed by item ids, 4 bytes each).  Used when the synthetic
  workloads of the benchmark harness are cached on disk between runs, and
  by maintenance-session checkpoints before format v2 existed.
* **Snapshot v2** — a versioned, memory-mappable layout: a fixed 128-byte
  header, then 64-byte-aligned sections holding the transactions in CSR
  form (``uint64`` offsets + ``uint32`` item ids) and, optionally, the
  vertical index's bitmap lanes (row-major ``uint64``, one row per item —
  exactly the kernels' canonical lane form).  :func:`open_snapshot` maps
  the file and reconstructs the database in O(items): the vertical index
  wraps the lane section zero-copy (``numpy.frombuffer`` under the numpy
  kernel) and the transaction rows materialize lazily on first real use,
  so a session or serving process starts without parsing the database.

All formats round-trip exactly through :class:`TransactionDatabase`;
:func:`load_database` sniffs the file magic, so v1 snapshots keep loading
byte-exactly, and :func:`migrate_snapshot` upgrades v1 → v2 explicitly.
"""

from __future__ import annotations

import mmap
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import StorageError
from .transaction_db import Transaction, TransactionDatabase
from .vertical_index import VerticalIndex

__all__ = [
    "SnapshotInfo",
    "write_transactions_text",
    "read_transactions_text",
    "write_transactions_binary",
    "read_transactions_binary",
    "write_snapshot",
    "open_snapshot",
    "inspect_snapshot",
    "migrate_snapshot",
    "save_database",
    "load_database",
]

_HEADER = b"REPROTDB"
_RECORD = struct.Struct("<I")


def write_transactions_text(path: str | Path, transactions: Iterable[Transaction]) -> int:
    """Write transactions to *path* in the one-line-per-transaction text format.

    Returns the number of transactions written.
    """
    path = Path(path)
    written = 0
    try:
        with path.open("w", encoding="ascii") as handle:
            for transaction in transactions:
                handle.write(" ".join(str(item) for item in transaction))
                handle.write("\n")
                written += 1
    except OSError as exc:
        raise StorageError(f"cannot write database to {path}: {exc}") from exc
    return written


def read_transactions_text(path: str | Path) -> Iterator[Transaction]:
    """Yield transactions from a text-format file (empty lines are empty transactions)."""
    path = Path(path)
    try:
        with path.open("r", encoding="ascii") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    yield ()
                    continue
                try:
                    yield tuple(sorted({int(token) for token in stripped.split()}))
                except ValueError as exc:
                    raise StorageError(
                        f"{path}:{line_number}: non-integer item in {stripped!r}"
                    ) from exc
    except OSError as exc:
        raise StorageError(f"cannot read database from {path}: {exc}") from exc


def write_transactions_binary(path: str | Path, transactions: Iterable[Transaction]) -> int:
    """Write transactions to *path* in the compact binary format."""
    path = Path(path)
    written = 0
    try:
        with path.open("wb") as handle:
            handle.write(_HEADER)
            for transaction in transactions:
                handle.write(_RECORD.pack(len(transaction)))
                for item in transaction:
                    handle.write(_RECORD.pack(item))
                written += 1
    except OSError as exc:
        raise StorageError(f"cannot write database to {path}: {exc}") from exc
    return written


def read_transactions_binary(path: str | Path) -> Iterator[Transaction]:
    """Yield transactions from a binary-format file written by this module."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read database from {path}: {exc}") from exc
    if not data.startswith(_HEADER):
        raise StorageError(f"{path} is not a repro binary transaction file")
    offset = len(_HEADER)
    total = len(data)
    while offset < total:
        if offset + _RECORD.size > total:
            raise StorageError(f"{path} is truncated at byte {offset}")
        (length,) = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        end = offset + length * _RECORD.size
        if end > total:
            raise StorageError(f"{path} is truncated at byte {offset}")
        items = struct.unpack_from(f"<{length}I", data, offset) if length else ()
        offset = end
        yield tuple(sorted(set(items)))


# --------------------------------------------------------------------- #
# Snapshot format v2 — memory-mappable, zero-copy lanes
# --------------------------------------------------------------------- #
_V2_MAGIC = b"REPROSN2"
_V2_VERSION = 2
#: Header: magic, version u32, flags u32, then n_tx / n_entries / n_items /
#: lane_words / 4 section offsets as u64 — padded to 128 bytes.
_V2_HEADER = struct.Struct("<8sII8Q")
_V2_HEADER_SIZE = 128
_V2_ALIGN = 64
_FLAG_LANES = 1
_MAX_ITEM_ID = (1 << 32) - 1


def _align(offset: int, alignment: int = _V2_ALIGN) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


def _le_array(typecode: str, values: Iterable[int]) -> bytes:
    """Values packed as little-endian machine words, whatever the host order."""
    packed = array(typecode, values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        packed.byteswap()
    return packed.tobytes()


def write_snapshot(
    database: TransactionDatabase,
    path: str | Path,
    include_lanes: bool | None = None,
) -> int:
    """Persist *database* to *path* in snapshot format v2; return its v1-equivalent count.

    *include_lanes* controls whether the vertical index's lane section is
    written: ``None`` (default) writes it when the index is already built
    (maintenance sessions keep it live, so checkpoints inherit it for free),
    ``True`` forces a build, ``False`` omits the section.  The write goes
    through an ordinary buffered file — atomicity is the caller's business,
    as it always was for v1.
    """
    transactions = database.transactions()
    n_tx = len(transactions)

    offsets: list[int] = [0]
    total = 0
    for transaction in transactions:
        total += len(transaction)
        offsets.append(total)

    if include_lanes is None:
        include_lanes = database.has_vertical_index
    if include_lanes:
        items, lane_words, lane_bytes = database.vertical().export_lanes()
    else:
        items, lane_words, lane_bytes = [], 0, b""
    flags = _FLAG_LANES if include_lanes else 0

    for item_source in (items if include_lanes else ()):
        if item_source > _MAX_ITEM_ID:
            raise StorageError(
                f"item id {item_source} does not fit the snapshot's 32-bit item encoding"
            )

    tx_offsets = _le_array("Q", offsets)
    try:
        tx_items = _le_array("I", (item for t in transactions for item in t))
    except OverflowError as exc:
        raise StorageError(
            "an item id does not fit the snapshot's 32-bit item encoding"
        ) from exc
    item_ids = _le_array("I", items)

    off = _V2_HEADER_SIZE
    section_offsets = []
    for section in (tx_offsets, tx_items, item_ids, lane_bytes):
        section_offsets.append(off)
        off = _align(off + len(section))

    header = _V2_HEADER.pack(
        _V2_MAGIC,
        _V2_VERSION,
        flags,
        n_tx,
        total,
        len(items),
        lane_words,
        *section_offsets,
    )
    path = Path(path)
    try:
        with path.open("wb") as handle:
            handle.write(header)
            handle.write(b"\0" * (_V2_HEADER_SIZE - len(header)))
            position = _V2_HEADER_SIZE
            for start, section in zip(
                section_offsets,
                (tx_offsets, tx_items, item_ids, lane_bytes),
                strict=True,
            ):
                handle.write(b"\0" * (start - position))
                handle.write(section)
                position = start + len(section)
    except OSError as exc:
        raise StorageError(f"cannot write snapshot to {path}: {exc}") from exc
    return n_tx


def _parse_v2_header(data: bytes | memoryview, path: Path, size: int) -> tuple:
    if size < _V2_HEADER_SIZE:
        raise StorageError(f"{path} is truncated: no room for a snapshot header")
    magic, version, flags, n_tx, n_entries, n_items, lane_words, *offsets = (
        _V2_HEADER.unpack_from(data, 0)
    )
    if version != _V2_VERSION:
        raise StorageError(f"{path}: unsupported snapshot version {version}")
    sections = (
        (offsets[0], (n_tx + 1) * 8),
        (offsets[1], n_entries * 4),
        (offsets[2], n_items * 4),
        (offsets[3], n_items * lane_words * 8 if flags & _FLAG_LANES else 0),
    )
    for start, length in sections:
        if start % 8 or start + length > size:
            raise StorageError(f"{path} is corrupt: section [{start}, {start + length}) "
                               f"does not fit the {size}-byte file")
    if flags & _FLAG_LANES and lane_words * 64 < n_tx:
        raise StorageError(
            f"{path} is corrupt: {lane_words} lane words cannot cover {n_tx} transactions"
        )
    return flags, n_tx, n_entries, n_items, lane_words, sections


def open_snapshot(
    path: str | Path, name: str = "", kernel: str | None = None
) -> TransactionDatabase:
    """Memory-map a v2 snapshot and rebuild its database in O(items).

    The returned database carries the snapshot's vertical index (when the
    lane section is present) reconstructed straight from the mapping — the
    numpy kernel wraps the lanes zero-copy via ``numpy.frombuffer`` —
    and a lazy transaction loader: size queries and vertical counting never
    touch the transaction sections, while the first operation that really
    needs the rows (iteration, mutation, fingerprinting) parses them once.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot read snapshot from {path}: {exc}") from exc
    if mapping[: len(_V2_MAGIC)] != _V2_MAGIC:
        mapping.close()
        raise StorageError(f"{path} is not a repro v2 snapshot")
    flags, n_tx, n_entries, n_items, lane_words, sections = _parse_v2_header(
        mapping, path, len(mapping)
    )
    (off_tx_offsets, _), (off_tx_items, _), (off_item_ids, _), (off_lanes, lane_len) = (
        sections
    )

    def load_transactions() -> list[Transaction]:
        bounds = struct.unpack_from(f"<{n_tx + 1}Q", mapping, off_tx_offsets)
        entries = struct.unpack_from(f"<{n_entries}I", mapping, off_tx_items)
        return [
            tuple(entries[bounds[tid] : bounds[tid + 1]]) for tid in range(n_tx)
        ]

    database = TransactionDatabase._lazy(
        load_transactions, n_tx, name=name or path.stem
    )
    if flags & _FLAG_LANES:
        item_ids = list(struct.unpack_from(f"<{n_items}I", mapping, off_item_ids))
        lanes = memoryview(mapping)[off_lanes : off_lanes + lane_len]
        database._vertical = VerticalIndex.from_lanes(
            item_ids, lanes, n_tx, kernel=kernel
        )
    return database


@dataclass(frozen=True)
class SnapshotInfo:
    """What ``repro snapshot inspect`` reports about one snapshot file."""

    path: str
    format_version: int
    byte_size: int
    transactions: int
    item_entries: int
    distinct_items: int
    lane_words: int
    lanes_present: bool

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "format_version": self.format_version,
            "byte_size": self.byte_size,
            "transactions": self.transactions,
            "item_entries": self.item_entries,
            "distinct_items": self.distinct_items,
            "lane_words": self.lane_words,
            "lanes_present": self.lanes_present,
        }


def inspect_snapshot(path: str | Path) -> SnapshotInfo:
    """Describe a v1 or v2 snapshot without loading it into a database.

    v2 answers straight from the header; v1 has no header beyond its magic,
    so its counts cost one parse of the record stream.  Unknown or corrupt
    files raise :class:`~repro.errors.StorageError`.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read snapshot from {path}: {exc}") from exc
    if data.startswith(_V2_MAGIC):
        flags, n_tx, n_entries, n_items, lane_words, _ = _parse_v2_header(
            data, path, len(data)
        )
        return SnapshotInfo(
            path=str(path),
            format_version=_V2_VERSION,
            byte_size=len(data),
            transactions=n_tx,
            item_entries=n_entries,
            distinct_items=n_items,
            lane_words=lane_words,
            lanes_present=bool(flags & _FLAG_LANES),
        )
    if data.startswith(_HEADER):
        transactions = entries = 0
        distinct: set[int] = set()
        for transaction in read_transactions_binary(path):
            transactions += 1
            entries += len(transaction)
            distinct.update(transaction)
        return SnapshotInfo(
            path=str(path),
            format_version=1,
            byte_size=len(data),
            transactions=transactions,
            item_entries=entries,
            distinct_items=len(distinct),
            lane_words=0,
            lanes_present=False,
        )
    raise StorageError(f"{path} is not a repro snapshot (unknown magic)")


def migrate_snapshot(source: str | Path, destination: str | Path) -> SnapshotInfo:
    """Rewrite the v1 snapshot at *source* as a v2 snapshot at *destination*.

    The migration builds the vertical index so the v2 file carries the lane
    section (that is the point of upgrading — O(1) reopening).  The source
    is left untouched; migrating a file that is already v2 is an error.
    """
    source = Path(source)
    info = inspect_snapshot(source)
    if info.format_version != 1:
        raise StorageError(
            f"{source} is already snapshot format v{info.format_version}"
        )
    database = load_database(source, binary=True)
    write_snapshot(database, destination, include_lanes=True)
    return inspect_snapshot(destination)


def save_database(database: TransactionDatabase, path: str | Path, binary: bool = False) -> int:
    """Persist *database* to *path*; pick the format with the *binary* flag."""
    writer = write_transactions_binary if binary else write_transactions_text
    return writer(path, database.transactions())


def load_database(
    path: str | Path,
    name: str = "",
    binary: bool = False,
    kernel: str | None = None,
) -> TransactionDatabase:
    """Load a database previously written with :func:`save_database` or
    :func:`write_snapshot`.

    The file magic is sniffed first: a v2 snapshot memory-maps through
    :func:`open_snapshot` whatever *binary* says (and *kernel* selects its
    index's bitmap kernel), and a v1 binary file takes the binary reader —
    so callers never have to know which format a file is in.  Anything
    else takes the reader the *binary* flag names, exactly as before.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            magic = handle.read(max(len(_V2_MAGIC), len(_HEADER)))
    except OSError as exc:
        raise StorageError(f"cannot read database from {path}: {exc}") from exc
    if magic[: len(_V2_MAGIC)] == _V2_MAGIC:
        return open_snapshot(path, name=name, kernel=kernel)
    if magic[: len(_HEADER)] == _HEADER:
        binary = True
    reader = read_transactions_binary if binary else read_transactions_text
    database = TransactionDatabase(name=name or Path(path).stem)
    database.extend(reader(path))
    return database

"""Transaction database substrate.

This package provides the storage layer every miner in the library runs on:

* :class:`~repro.db.transaction_db.TransactionDatabase` — the in-memory
  transaction container with the scan interface the algorithms use.
* :mod:`repro.db.store` — plain-text and binary persistence.
* :mod:`repro.db.update` — update batches (insertions / deletions) and the
  update log used by the maintenance manager.
* :mod:`repro.db.stats` — summary statistics over a database.
"""

from .transaction_db import Transaction, TransactionDatabase
from .vertical_index import VerticalIndex
from .update import UpdateBatch, UpdateLog
from .stats import DatabaseStats, compute_stats
from .store import (
    read_transactions_text,
    write_transactions_text,
    read_transactions_binary,
    write_transactions_binary,
    load_database,
    save_database,
)

__all__ = [
    "Transaction",
    "TransactionDatabase",
    "VerticalIndex",
    "UpdateBatch",
    "UpdateLog",
    "DatabaseStats",
    "compute_stats",
    "read_transactions_text",
    "write_transactions_text",
    "read_transactions_binary",
    "write_transactions_binary",
    "load_database",
    "save_database",
]

"""In-memory transaction database.

The three miners in this library (Apriori, DHP and FUP) all consume the same
scan interface: iterate over transactions, where each transaction is a
canonical tuple of item ids.  :class:`TransactionDatabase` provides that
interface plus the mutation operations the incremental-maintenance workflow
needs (append an increment, delete a batch, concatenate databases).

Transactions are stored as sorted tuples of ints.  Sorted storage matters for
two reasons: the hash-tree subset enumeration assumes items appear in
increasing order, and deduplicated sorted tuples make transaction equality and
the DHP/FUP transaction-trimming optimisations straightforward.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Iterable, Iterator, Sequence

from ..errors import InvalidTransactionError, StaleStateError
from ..itemsets import Item, Itemset
from .vertical_index import VerticalIndex

Transaction = tuple[Item, ...]

__all__ = [
    "Transaction",
    "TransactionDatabase",
    "VerticalIndex",
    "build_vertical_index",
    "shard_bounds",
]


def build_vertical_index(transactions: Sequence[Transaction]) -> dict[Item, int]:
    """Build the item → TID-bitmask index in one pass over *transactions*.

    Bit ``t`` of an item's mask is set when transaction ``t`` contains the
    item, so ``mask.bit_count()`` is the item's support count and
    intersecting the masks of an itemset's members counts the itemset.  This
    is the single definition of the vertical layout — the from-scratch
    reference that :class:`~repro.db.vertical_index.VerticalIndex` (the
    incrementally-maintained form) is tested against, and the builder the
    vertical counting engine uses for ad-hoc transaction lists.
    """
    index: dict[Item, int] = {}
    for tid, transaction in enumerate(transactions):
        bit = 1 << tid
        for item in transaction:
            index[item] = index.get(item, 0) | bit
    return index


def shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` bounds splitting *total* items.

    At most *shards* non-empty bounds come back (fewer when ``total`` is
    smaller); sizes differ by at most one and cover ``range(total)`` in
    order.  Shared by :meth:`TransactionDatabase.partition` and the
    partitioned counting engine so the split semantics cannot drift apart.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    size, remainder = divmod(total, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + size + (1 if index < remainder else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


#: Deletion batches at most this large take the indexed removal path
#: (per-victim C-speed ``list.index`` search) instead of the full
#: Python-level pass over every stored transaction.
_SMALL_DELETE_BATCH = 16


def _phantom_message(missing: Counter[Transaction]) -> str:
    """Error text naming the transactions a strict removal could not find."""
    total = sum(missing.values())
    examples = ", ".join(repr(t) for t in list(missing)[:3])
    suffix = ", ..." if len(missing) > 3 else ""
    return (
        f"strict removal: {total} transaction(s) not present in the database "
        f"({examples}{suffix}); deletions must name existing transactions"
    )


def _canonical_transaction(raw: Iterable[Item], tid: int | None = None) -> Transaction:
    """Validate and canonicalise one transaction (sorted, duplicates removed)."""
    try:
        unique = set(raw)
    except TypeError as exc:
        raise InvalidTransactionError(
            f"transaction {tid if tid is not None else '?'} is not iterable: {raw!r}"
        ) from exc
    for item in unique:
        if not isinstance(item, int) or isinstance(item, bool) or item < 0:
            raise InvalidTransactionError(
                f"transaction {tid if tid is not None else '?'} contains an invalid "
                f"item {item!r}; items must be non-negative integers"
            )
    return tuple(sorted(unique))


class TransactionDatabase:
    """A list of transactions with the scan interface the miners expect.

    Parameters
    ----------
    transactions:
        Any iterable of item iterables.  Each transaction is canonicalised on
        ingestion (sorted, duplicates removed).  Empty transactions are kept —
        a customer can buy nothing — but contribute to ``len()`` so support
        fractions are computed over every recorded transaction, matching the
        paper's definition of ``D`` as "the number of transactions in DB".
    name:
        Optional label used in reports (for example ``"T10.I4.D100.d1"``).
    """

    __slots__ = (
        "_tx",
        "_tx_loader",
        "_tx_count",
        "_vertical",
        "_partitions",
        "_item_counts",
        "_multiset",
        "_fingerprint",
        "name",
    )

    def __init__(
        self,
        transactions: Iterable[Iterable[Item]] = (),
        name: str = "",
    ) -> None:
        self._tx: list[Transaction] | None = [
            _canonical_transaction(raw, tid) for tid, raw in enumerate(transactions)
        ]
        self._tx_loader = None
        self._tx_count = 0
        self._vertical: VerticalIndex | None = None
        self._partitions: dict[int, list["TransactionDatabase"]] = {}
        self._item_counts: Counter[Item] | None = None
        self._multiset: Counter[Transaction] | None = None
        self._fingerprint: str | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Lazy materialization (memory-mapped snapshots)
    # ------------------------------------------------------------------ #
    @property
    def _transactions(self) -> list[Transaction]:
        """The transaction list, materializing a pending lazy loader first.

        Databases opened from a memory-mapped snapshot carry a loader
        instead of the list, so opening is O(1); the first operation that
        genuinely needs the rows (iteration, mutation, fingerprinting) pays
        the one-off parse here.  Size queries and vertical counting never
        trigger it.
        """
        transactions = self._tx
        if transactions is None:
            self._tx = transactions = list(self._tx_loader())
            self._tx_loader = None
        return transactions

    @_transactions.setter
    def _transactions(self, transactions: list[Transaction]) -> None:
        self._tx = transactions
        self._tx_loader = None

    @classmethod
    def _lazy(cls, loader, count: int, name: str = "") -> "TransactionDatabase":
        """Internal: a database whose rows materialize on first real use."""
        database = cls(name=name)
        database._tx = None
        database._tx_loader = loader
        database._tx_count = count
        return database

    @property
    def transactions_loaded(self) -> bool:
        """False while a lazily-opened snapshot has not materialized its rows."""
        return self._tx is not None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._tx_count if self._tx is None else len(self._tx)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return self._transactions == other._transactions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"<TransactionDatabase{label} size={len(self)}>"

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Iterable[Item]], name: str = ""
    ) -> "TransactionDatabase":
        """Build a database from any iterable of item iterables."""
        return cls(transactions, name=name)

    def copy(self, name: str | None = None) -> "TransactionDatabase":
        """Return an independent copy of this database.

        A built vertical index is cloned along (cheap: the mask table is
        copied, the immutable masks are shared), so copies of an indexed
        database never pay a rebuild.  The item-universe and
        transaction-multiset caches are cloned the same way.
        """
        clone = TransactionDatabase(name=self.name if name is None else name)
        clone._transactions = list(self._transactions)
        if self._vertical is not None:
            clone._vertical = self._vertical.copy()
        if self._item_counts is not None:
            clone._item_counts = Counter(self._item_counts)
        if self._multiset is not None:
            clone._multiset = Counter(self._multiset)
        clone._fingerprint = self._fingerprint
        return clone

    # ------------------------------------------------------------------ #
    # Mutation (used by the incremental maintenance workflow)
    # ------------------------------------------------------------------ #
    def _note_added(self, transactions: Sequence[Transaction]) -> None:
        """Delta-maintain the item-universe and multiset caches after an insert."""
        if self._item_counts is not None:
            counts = self._item_counts
            for transaction in transactions:
                for item in transaction:
                    counts[item] += 1
        if self._multiset is not None:
            multiset = self._multiset
            for transaction in transactions:
                multiset[transaction] += 1

    def _note_removed(self, transactions: Sequence[Transaction]) -> None:
        """Delta-maintain the item-universe and multiset caches after a removal."""
        if self._item_counts is not None:
            counts = self._item_counts
            for transaction in transactions:
                for item in transaction:
                    remaining = counts[item] - 1
                    if remaining:
                        counts[item] = remaining
                    else:
                        del counts[item]
        if self._multiset is not None:
            multiset = self._multiset
            for transaction in transactions:
                remaining = multiset[transaction] - 1
                if remaining:
                    multiset[transaction] = remaining
                else:
                    del multiset[transaction]

    def append(self, transaction: Iterable[Item]) -> None:
        """Append a single transaction."""
        canonical = _canonical_transaction(transaction, len(self))
        self._transactions.append(canonical)
        if self._vertical is not None:
            self._vertical.append(canonical)
        self._note_added((canonical,))
        self._partitions.clear()
        self._fingerprint = None

    def extend(self, transactions: Iterable[Iterable[Item]]) -> None:
        """Append every transaction of *transactions* (an increment ``db``)."""
        base = len(self)
        increment = [
            _canonical_transaction(raw, base + offset)
            for offset, raw in enumerate(transactions)
        ]
        self._transactions.extend(increment)
        if self._vertical is not None:
            self._vertical.extend(increment)
        self._note_added(increment)
        self._partitions.clear()
        self._fingerprint = None

    def remove_batch(
        self, transactions: Iterable[Iterable[Item]], strict: bool = False
    ) -> int:
        """Remove one occurrence of each given transaction; return how many were removed.

        Deletion is multiset-style: if the batch lists a transaction twice and
        the database holds it three times, two copies are removed.

        With ``strict=False`` (the default) unknown transactions are ignored
        and the count reflects only actual removals.  With ``strict=True`` the
        batch is validated and removed in one pass: if any listed transaction
        is missing a :class:`~repro.errors.StaleStateError` naming the missing
        transaction(s) is raised and the database is left untouched —
        replaying an update log against the wrong base fails loudly instead of
        silently desyncing.

        Small batches take an indexed path (per-victim C-speed search plus an
        in-place ``del``) so a single-row deletion never pays a Python-level
        pass over every stored transaction.
        """
        batch = [_canonical_transaction(raw) for raw in transactions]
        if not batch:
            return 0
        if len(batch) <= _SMALL_DELETE_BATCH:
            removed_tids, removed_rows = self._locate_batch_indexed(batch, strict)
            if removed_tids:
                # Delete from a fresh list (C-speed copy + memmoves) so a view
                # handed out by transactions() stays a stable snapshot, as the
                # full-pass path has always guaranteed.
                store = list(self._transactions)
                for tid in reversed(removed_tids):
                    del store[tid]
                self._transactions = store
        else:
            removed_tids, removed_rows = self._remove_batch_scan(batch, strict)
        if not removed_tids:
            return 0
        if self._vertical is not None:
            self._vertical.delete_tids(removed_tids)
        self._note_removed(removed_rows)
        self._partitions.clear()
        self._fingerprint = None
        return len(removed_tids)

    def _locate_batch_indexed(
        self, batch: list[Transaction], strict: bool
    ) -> tuple[list[int], list[Transaction]]:
        """Find the victim TIDs of a small batch without a full Python pass.

        Each victim is located with ``list.index`` (a C-speed scan); repeated
        batch entries for the same transaction resume the search after the
        previous match, giving the same multiset semantics as the full pass.
        Nothing is mutated here, so a strict failure rolls back for free.
        """
        store = self._transactions
        next_start: dict[Transaction, int] = {}
        removed_tids: list[int] = []
        removed_rows: list[Transaction] = []
        missing: Counter[Transaction] = Counter()
        for transaction in batch:
            try:
                tid = store.index(transaction, next_start.get(transaction, 0))
            except ValueError:
                missing[transaction] += 1
                continue
            next_start[transaction] = tid + 1
            removed_tids.append(tid)
            removed_rows.append(transaction)
        if missing and strict:
            raise StaleStateError(_phantom_message(missing))
        removed_tids.sort()
        return removed_tids, removed_rows

    def _remove_batch_scan(
        self, batch: list[Transaction], strict: bool
    ) -> tuple[list[int], list[Transaction]]:
        """Full-pass removal for large batches (validated before committing)."""
        to_remove = Counter(batch)
        kept: list[Transaction] = []
        removed_tids: list[int] = []
        removed_rows: list[Transaction] = []
        for tid, transaction in enumerate(self._transactions):
            if to_remove.get(transaction, 0) > 0:
                to_remove[transaction] -= 1
                removed_tids.append(tid)
                removed_rows.append(transaction)
            else:
                kept.append(transaction)
        if strict:
            leftover = +to_remove
            if leftover:
                raise StaleStateError(_phantom_message(leftover))
        self._transactions = kept
        return removed_tids, removed_rows

    # ------------------------------------------------------------------ #
    # Scan / query interface used by the miners
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of transactions (``D`` in the paper's notation)."""
        return len(self)

    def transactions(self) -> Sequence[Transaction]:
        """Return a read-only view (the underlying list) of the transactions."""
        return self._transactions

    def _ensure_item_counts(self) -> Counter[Item]:
        if self._item_counts is None:
            if self._vertical is not None:
                # The vertical index already holds the answer: one popcount
                # per item, no pass over the transactions.
                self._item_counts = self._vertical.item_counts()
            else:
                counts: Counter[Item] = Counter()
                for transaction in self._transactions:
                    counts.update(transaction)
                self._item_counts = counts
        return self._item_counts

    @property
    def has_item_universe(self) -> bool:
        """True when :meth:`items` / :meth:`item_counts` will not cost a scan.

        That is the case once the item-universe cache is built — from then on
        it is maintained by delta through every mutation, like the vertical
        index — and also while the vertical index itself is live, since the
        cache derives from its masks without touching the transactions.
        Callers that account database scans (FUP2's shrink fallback) use this
        to know whether their query performs a real pass.
        """
        return self._item_counts is not None or self._vertical is not None

    def items(self) -> set[Item]:
        """Return the set of distinct items appearing anywhere in the database.

        Served from the delta-maintained item-universe cache (built on first
        use), so only the first call after construction scans the database.
        """
        return set(self._ensure_item_counts())

    def item_counts(self) -> Counter[Item]:
        """Return per-item occurrence counts (support counts of 1-itemsets).

        Served from the same delta-maintained cache as :meth:`items`; the
        returned counter is a copy and safe to mutate.
        """
        return Counter(self._ensure_item_counts())

    def _ensure_multiset(self) -> Counter[Transaction]:
        if self._multiset is None:
            self._multiset = Counter(self._transactions)
        return self._multiset

    @property
    def has_transaction_multiset(self) -> bool:
        """True when the transaction-multiset cache is built (and maintained)."""
        return self._multiset is not None

    def transaction_multiset(self) -> Counter[Transaction]:
        """The transaction → occurrence-count multiset, as a live read-only view.

        Built on first use with one pass, then maintained by delta through
        every mutation; O(d) membership checks against it are what keep the
        maintenance pipeline's phantom-deletion validation independent of the
        database size.  Treat the returned counter as read-only.
        """
        return self._ensure_multiset()

    def missing_transactions(
        self, transactions: Iterable[Iterable[Item]]
    ) -> Counter[Transaction]:
        """Multiset of listed transactions *not* present in the database.

        Respects multiplicity: listing a transaction three times when the
        database stores two copies reports one missing occurrence.  Costs
        O(batch) after the transaction-multiset cache is built (the first
        call pays the one-off build).
        """
        multiset = self._ensure_multiset()
        seen: Counter[Transaction] = Counter()
        missing: Counter[Transaction] = Counter()
        for raw in transactions:
            transaction = _canonical_transaction(raw)
            seen[transaction] += 1
            if seen[transaction] > multiset.get(transaction, 0):
                missing[transaction] += 1
        return missing

    def count_itemset(self, candidate: Itemset) -> int:
        """Count transactions containing *candidate* with a full scan.

        This is the slow-but-obviously-correct reference counter used by the
        test-suite oracles; the miners use the hash-tree counting pass
        instead.
        """
        needed = set(candidate)
        return sum(1 for transaction in self._transactions if needed.issubset(transaction))

    def vertical(self, kernel: str | None = None) -> VerticalIndex:
        """Return the cached vertical (TID-bitset) representation.

        The result maps each item to an ``int`` bitmask in which bit ``t`` is
        set when transaction ``t`` contains the item, so
        ``mask.bit_count()`` is the item's support count and intersecting the
        masks of an itemset's members counts the itemset.  The index is built
        lazily on first use and from then on **maintained by delta** through
        every mutation (:meth:`append`, :meth:`extend`, :meth:`remove_batch`)
        instead of being rebuilt — an update costs work proportional to the
        update, never to the database.  Treat the returned mapping as a
        read-only live view of this database.

        *kernel* names the bitmap kernel the caller wants to count with
        (see :mod:`repro.kernels`); an already-built index under a different
        kernel is converted **in place** (one repack, cheaper than a rebuild)
        so subsequent callers share it.  ``None`` keeps whatever is there.
        """
        if self._vertical is None:
            self._vertical = VerticalIndex.build(self._transactions, kernel=kernel)
        elif kernel is not None:
            self._vertical = self._vertical.with_kernel(kernel)
        return self._vertical

    @property
    def has_vertical_index(self) -> bool:
        """True when the vertical index is currently built (and maintained)."""
        return self._vertical is not None

    # ------------------------------------------------------------------ #
    # Process-boundary export (used by the partitioned engine's process mode)
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content hash identifying this database's exact transaction sequence.

        Two databases holding the same transactions in the same order share a
        fingerprint, across processes and interpreter runs.  The digest is
        computed once and cached (mutations clear it), so repeated queries —
        one per counting pass in a k-level mining run — are O(1) after the
        first.  The partitioned engine's process mode keys its per-worker
        shard caches on this, shipping each shard across the process boundary
        only when the worker has not seen its fingerprint yet.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(str(len(self._transactions)).encode("ascii"))
            for transaction in self._transactions:
                digest.update(b"\n")
                digest.update(",".join(map(str, transaction)).encode("ascii"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def shard_payload(self) -> dict[str, object]:
        """Export this database as plain picklable data for a counting worker.

        The payload carries the transaction list plus, when built, the
        vertical index's mask table — so a worker rebuilding the shard via
        :meth:`from_shard_payload` inherits the index instead of paying a
        from-scratch rebuild on its side of the process boundary.
        """
        payload: dict[str, object] = {
            "transactions": self._transactions,
            "name": self.name,
        }
        if self._vertical is not None:
            payload["vertical"] = self._vertical.to_payload()
        return payload

    @classmethod
    def from_shard_payload(cls, payload: dict[str, object]) -> "TransactionDatabase":
        """Rebuild a database from :meth:`shard_payload` data (no re-validation).

        The payload's transactions are trusted to be canonical already — they
        came out of a :class:`TransactionDatabase` on the sending side.
        """
        database = cls(name=str(payload.get("name", "")))
        database._transactions = list(payload["transactions"])  # type: ignore[arg-type]
        vertical = payload.get("vertical")
        if vertical is not None:
            database._vertical = VerticalIndex.from_payload(vertical)  # type: ignore[arg-type]
        return database

    def partition(self, shards: int, name: str = "") -> list["TransactionDatabase"]:
        """Split the database into at most *shards* contiguous partitions.

        The partitions are balanced (sizes differ by at most one), cover every
        transaction exactly once in order, and are returned as independent
        database views; empty partitions are dropped, so fewer than *shards*
        databases come back when the database is smaller than the shard
        count.  Support counting distributes over the partitions —
        ``support(X, DB) = Σ support(X, shard_i)`` — which is the invariant
        the partitioned counting engine builds on.

        Default-named partitions are cached per shard count and served again
        on the next call (mutations drop the cache — partitions rebalance),
        so repeated counting passes over the same database do not re-split
        it; per-shard state such as a shard's vertical index therefore also
        survives across passes.
        """
        if not name:
            cached = self._partitions.get(shards)
            if cached is None:
                cached = self._partitions[shards] = self._build_partitions(shards, "")
            return list(cached)
        return self._build_partitions(shards, name)

    def _build_partitions(self, shards: int, name: str) -> list["TransactionDatabase"]:
        partitions: list[TransactionDatabase] = []
        for index, (start, stop) in enumerate(shard_bounds(len(self._transactions), shards)):
            label = name or (f"{self.name}[shard {index}]" if self.name else "")
            partitions.append(self.slice(start, stop, name=label))
        return partitions

    def slice(self, start: int, stop: int | None = None, name: str = "") -> "TransactionDatabase":
        """Return a new database holding transactions ``[start:stop)``.

        When this database's vertical index is built, the slice's index is
        derived from the parent masks (one shift-and-mask per item) instead
        of left for a from-scratch rebuild.
        """
        clone = TransactionDatabase(name=name)
        clone._transactions = self._transactions[start:stop]
        if self._vertical is not None:
            clone._vertical = self._vertical.slice(start, stop)
        return clone

    def concatenate(
        self, other: "TransactionDatabase", name: str = ""
    ) -> "TransactionDatabase":
        """Return a new database ``self ∪ other`` (the updated database ``DB ∪ db``).

        When this database's vertical index is built, the result's index is
        derived by shifting *other*'s masks past this database's size —
        *other* (typically the small increment) is indexed if it was not
        already, but this (typically large) database is never re-scanned.
        """
        clone = TransactionDatabase(name=name or self.name)
        clone._transactions = self._transactions + other._transactions
        if self._vertical is not None:
            clone._vertical = self._vertical.concatenate(other.vertical())
        return clone

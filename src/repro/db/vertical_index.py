"""The incrementally-maintained vertical (item → TID-bitmask) index.

The vertical layout — per item, a bitmap in which bit ``t`` is set when
transaction ``t`` contains the item — is the data structure behind the
library's fastest counting engine.  Rebuilding it from scratch costs a full
pass over every transaction, which is exactly the kind of re-derivation the
paper's FUP algorithm exists to avoid; this module therefore applies FUP's
own insight to the index layer.  :class:`VerticalIndex` is a first-class
object that is *maintained by delta*:

* **append/extend** OR the increment's bits in at positions shifted by the
  old size — O(Σ|tᵢ|) work for an increment of transactions ``tᵢ``, never a
  function of the database size;
* **delete_tids** compacts the deleted TID bits out of every mask with
  segment-wise bitmask arithmetic — deletions are the hard case because
  every surviving bit above a deleted position must slide down to keep bit
  ``t`` meaning "transaction ``t``";
* **concatenate** merges two already-built indexes by shifting the second
  operand's masks by the first operand's size;
* **slice** (and through it :meth:`TransactionDatabase.partition`) derives a
  child index from the parent's masks instead of re-scanning the child's
  transactions;
* **copy** clones the underlying table.

The *physical* bitmap representation lives behind the
:class:`~repro.kernels.base.BitmapKernel` seam: big-int masks by default,
numpy ``uint64`` lanes when the ``numpy`` kernel is selected (see
:mod:`repro.kernels`).  This class validates arguments, implements the
read-only :class:`collections.abc.Mapping` protocol (item → big-int mask,
whatever the kernel), and delegates the bit arithmetic — so every consumer
of the previous plain-``dict`` vertical representation keeps working
unchanged regardless of kernel.

:class:`~repro.db.transaction_db.TransactionDatabase` owns one of these and
keeps it current through every mutation, so a k-batch maintenance session
builds the index once and then pays only O(Σ dᵢ) for all subsequent batches
— the paper's Figure-2 claim applied to our own data structures.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from typing import Iterable, Iterator, Sequence

from ..itemsets import Item, Itemset
from ..kernels import BitmapKernel, kernel_class, resolve_kernel_name

Transaction = tuple[Item, ...]

__all__ = ["VerticalIndex"]

_PAYLOAD_VERSION = 2


class VerticalIndex(Mapping):
    """Item → TID-bitmask index maintained by delta instead of rebuilt.

    Invariant: for every item, bit ``t`` of its mask is set exactly when
    transaction ``t`` of the indexed sequence contains the item, and items
    appearing in no transaction carry no entry at all (so two indexes over
    equal transaction sequences compare equal — even across kernels, since
    the Mapping protocol always speaks canonical big-int masks).  ``size``
    is the number of indexed transactions — one more than the highest
    usable bit position.
    """

    __slots__ = ("_store",)

    def __init__(
        self,
        masks: dict[Item, int] | None = None,
        size: int = 0,
        kernel: str | None = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        cls = kernel_class(kernel)
        self._store: BitmapKernel = cls.from_masks(masks or {}, size)

    @classmethod
    def _wrap(cls, store: BitmapKernel) -> "VerticalIndex":
        index = cls.__new__(cls)
        index._store = store
        return index

    @classmethod
    def build(
        cls, transactions: Sequence[Transaction], kernel: str | None = None
    ) -> "VerticalIndex":
        """Build the index from scratch in one pass over *transactions*."""
        return cls._wrap(kernel_class(kernel).build(transactions))

    @classmethod
    def from_lanes(
        cls,
        items: Sequence[Item],
        lanes: bytes | memoryview,
        size: int,
        kernel: str | None = None,
    ) -> "VerticalIndex":
        """Build the index from a canonical lane buffer (snapshot v2 layout).

        The numpy kernel wraps the buffer zero-copy (first mutation copies);
        the big-int kernel parses it once.
        """
        return cls._wrap(kernel_class(kernel).from_lanes(items, lanes, size))

    # ------------------------------------------------------------------ #
    # Kernel plumbing
    # ------------------------------------------------------------------ #
    @property
    def kernel(self) -> str:
        """Registry name of the kernel holding this index's bitmaps."""
        return self._store.name

    def with_kernel(self, kernel: str | None) -> "VerticalIndex":
        """This index re-packed under *kernel* (``self`` if already there)."""
        cls = kernel_class(kernel)
        if isinstance(self._store, cls):
            return self
        return self._wrap(cls.from_masks(self._store.masks(), self._store.size))

    def export_lanes(self) -> tuple[list[Item], int, bytes]:
        """Canonical lane form ``(sorted items, words, uint64 buffer)``."""
        return self._store.export_lanes()

    # ------------------------------------------------------------------ #
    # Mapping protocol (read side)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of indexed transactions (bit positions in use)."""
        return self._store.size

    def __getitem__(self, item: Item) -> int:
        if item not in self._store:
            raise KeyError(item)
        return self._store.mask(item)

    def __iter__(self) -> Iterator[Item]:
        return self._store.items()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, item: object) -> bool:
        return item in self._store

    def get(self, item: Item, default: int = 0) -> int:
        """Mask of *item*, or *default* when the item appears nowhere."""
        return self._store.mask(item) if item in self._store else default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VerticalIndex kernel={self._store.name} "
            f"items={len(self._store)} size={self._store.size}>"
        )

    # ------------------------------------------------------------------ #
    # Counting queries
    # ------------------------------------------------------------------ #
    def support(self, candidate: Itemset) -> int:
        """Number of indexed transactions containing every item of *candidate*.

        An empty candidate counts as contained in every transaction,
        matching ``set.issubset`` semantics.
        """
        return self._store.support(candidate)

    def count_candidates(self, candidates: Sequence[Itemset]) -> dict[Itemset, int]:
        """Batched :meth:`support` over a whole candidate pool.

        One call per candidate *level* is the kernel seam's hot path: the
        numpy kernel vectorizes the entire pool, while the big-int kernel
        loops — both return exactly ``{c: support(c) for c in candidates}``.
        """
        return self._store.count_candidates(candidates)

    def item_counts(self) -> Counter[Item]:
        """Per-item support counts (one popcount per item)."""
        return self._store.item_counts()

    # ------------------------------------------------------------------ #
    # Delta maintenance (mutating)
    # ------------------------------------------------------------------ #
    def append(self, transaction: Transaction) -> None:
        """OR one new transaction's bits in at position ``size``."""
        self._store.append(transaction)

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """OR an increment's bits in, shifted past the current size."""
        self._store.extend(transactions)

    def delete_tids(self, tids: Sequence[int]) -> None:
        """Compact the given TID bits out of every mask.

        *tids* must be strictly increasing and within ``range(size)`` — the
        order :meth:`TransactionDatabase.remove_batch` discovers them in.
        Every surviving bit above a deleted position slides down so that bit
        ``t`` keeps meaning "transaction ``t``" of the compacted sequence.
        The cost is O(segments × items) whole-mask operations, where the
        segments are the maximal runs of surviving TIDs between deletions —
        a contiguous deleted range (the sliding-window case) is a single
        shift per mask, while heavily scattered deletions approach the cost
        of a rebuild.
        """
        if not tids:
            return
        size = self._store.size
        previous = -1
        for tid in tids:
            if tid <= previous:
                raise ValueError(f"tids must be strictly increasing, got {list(tids)!r}")
            if tid >= size:
                raise ValueError(f"tid {tid} out of range for size {size}")
            previous = tid
        self._store.delete_tids(tids)

    # ------------------------------------------------------------------ #
    # Process-boundary export
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """Export the index as plain picklable data.

        The payload is what crosses a process boundary when a shard is
        shipped to a counting worker: rebuilding the index on the far side
        via :meth:`from_payload` never re-scans the shard's transactions.
        The numpy kernel ships its lanes as one contiguous buffer instead
        of pickling per-item big-ints.
        """
        return {
            "version": _PAYLOAD_VERSION,
            "kernel": self._store.name,
            "data": self._store.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict | tuple) -> "VerticalIndex":
        """Rebuild an index from :meth:`to_payload` data.

        Accepts the legacy ``(masks, size)`` tuple shape for payloads
        produced before the kernel seam existed.
        """
        if isinstance(payload, tuple):  # pre-kernel payload shape
            masks, size = payload
            return cls(dict(masks), size)
        store = kernel_class(payload["kernel"]).from_payload(payload["data"])
        return cls._wrap(store)

    # ------------------------------------------------------------------ #
    # Derivation (non-mutating)
    # ------------------------------------------------------------------ #
    def copy(self) -> "VerticalIndex":
        """Independent clone under the same kernel."""
        return self._wrap(self._store.copy())

    def concatenate(self, other: "VerticalIndex") -> "VerticalIndex":
        """Index of ``self's transactions + other's transactions``."""
        other_store = other._store
        if type(other_store) is not type(self._store):
            other_store = type(self._store).from_masks(
                other_store.masks(), other_store.size
            )
        return self._wrap(self._store.concatenate(other_store))

    def slice(self, start: int, stop: int | None = None) -> "VerticalIndex":
        """Index of transactions ``[start:stop)`` (list-slicing semantics)."""
        start, stop, _ = slice(start, stop).indices(self._store.size)
        return self._wrap(self._store.slice(start, stop))

"""The incrementally-maintained vertical (item → TID-bitmask) index.

The vertical layout — per item, an ``int`` bitmask in which bit ``t`` is set
when transaction ``t`` contains the item — is the data structure behind the
library's fastest counting engine.  Rebuilding it from scratch costs a full
pass over every transaction, which is exactly the kind of re-derivation the
paper's FUP algorithm exists to avoid; this module therefore applies FUP's
own insight to the index layer.  :class:`VerticalIndex` is a first-class
object that is *maintained by delta*:

* **append/extend** OR the increment's bits in at positions shifted by the
  old size — O(Σ|tᵢ|) work for an increment of transactions ``tᵢ``, never a
  function of the database size;
* **delete_tids** compacts the deleted TID bits out of every mask with
  segment-wise bitmask arithmetic (shift/mask/OR of whole masks, each a
  C-speed big-int operation over D/64 machine words) — deletions are the
  hard case because every surviving bit above a deleted position must slide
  down to keep bit ``t`` meaning "transaction ``t``";
* **concatenate** merges two already-built indexes by shifting the second
  operand's masks by the first operand's size;
* **slice** (and through it :meth:`TransactionDatabase.partition`) derives a
  child index from the parent's masks with one shift-and-mask per item
  instead of re-scanning the child's transactions;
* **copy** clones the mask table (the masks themselves are immutable ints
  and are shared).

:class:`~repro.db.transaction_db.TransactionDatabase` owns one of these and
keeps it current through every mutation, so a k-batch maintenance session
builds the index once and then pays only O(Σ dᵢ) for all subsequent batches
— the paper's Figure-2 claim applied to our own data structures.

The class implements the read-only :class:`collections.abc.Mapping` protocol
(item → mask), so every consumer of the previous plain-``dict`` vertical
representation keeps working unchanged.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from typing import Iterable, Iterator, Sequence

from ..itemsets import Item, Itemset

Transaction = tuple[Item, ...]

__all__ = ["VerticalIndex"]


class VerticalIndex(Mapping):
    """Item → TID-bitmask index maintained by delta instead of rebuilt.

    Invariant: for every item, bit ``t`` of its mask is set exactly when
    transaction ``t`` of the indexed sequence contains the item, and items
    appearing in no transaction carry no entry at all (so two indexes over
    equal transaction sequences compare equal).  ``size`` is the number of
    indexed transactions — one more than the highest usable bit position.
    """

    __slots__ = ("_masks", "_size")

    def __init__(self, masks: dict[Item, int] | None = None, size: int = 0) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._masks: dict[Item, int] = {} if masks is None else masks
        self._size = size

    @classmethod
    def build(cls, transactions: Sequence[Transaction]) -> "VerticalIndex":
        """Build the index from scratch in one pass over *transactions*."""
        masks: dict[Item, int] = {}
        for tid, transaction in enumerate(transactions):
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
        return cls(masks, len(transactions))

    # ------------------------------------------------------------------ #
    # Mapping protocol (read side)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of indexed transactions (bit positions in use)."""
        return self._size

    def __getitem__(self, item: Item) -> int:
        return self._masks[item]

    def __iter__(self) -> Iterator[Item]:
        return iter(self._masks)

    def __len__(self) -> int:
        return len(self._masks)

    def get(self, item: Item, default: int = 0) -> int:
        """Mask of *item*, or *default* when the item appears nowhere."""
        return self._masks.get(item, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VerticalIndex items={len(self._masks)} size={self._size}>"

    # ------------------------------------------------------------------ #
    # Counting queries
    # ------------------------------------------------------------------ #
    def support(self, candidate: Itemset) -> int:
        """Number of indexed transactions containing every item of *candidate*."""
        bits = -1  # all-ones: the identity of bitwise AND
        for item in candidate:
            item_bits = self._masks.get(item)
            if not item_bits:
                return 0
            bits &= item_bits
            if not bits:
                return 0
        # An empty candidate would leave ``bits == -1``; treat it as
        # contained in every transaction, matching set.issubset semantics.
        return self._size if bits < 0 else bits.bit_count()

    def item_counts(self) -> Counter[Item]:
        """Per-item support counts (one popcount per item)."""
        return Counter({item: mask.bit_count() for item, mask in self._masks.items()})

    # ------------------------------------------------------------------ #
    # Delta maintenance (mutating)
    # ------------------------------------------------------------------ #
    def append(self, transaction: Transaction) -> None:
        """OR one new transaction's bits in at position ``size``."""
        bit = 1 << self._size
        masks = self._masks
        for item in transaction:
            masks[item] = masks.get(item, 0) | bit
        self._size += 1

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """OR an increment's bits in, shifted past the current size."""
        masks = self._masks
        tid = self._size
        for transaction in transactions:
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
            tid += 1
        self._size = tid

    def delete_tids(self, tids: Sequence[int]) -> None:
        """Compact the given TID bits out of every mask.

        *tids* must be strictly increasing and within ``range(size)`` — the
        order :meth:`TransactionDatabase.remove_batch` discovers them in.
        Every surviving bit above a deleted position slides down so that bit
        ``t`` keeps meaning "transaction ``t``" of the compacted sequence.
        The cost is O(segments × items) whole-mask operations, where the
        segments are the maximal runs of surviving TIDs between deletions —
        a contiguous deleted range (the sliding-window case) is a single
        shift per mask, while heavily scattered deletions approach the cost
        of a rebuild.
        """
        if not tids:
            return
        # Kept segments between deletions: (start, window-mask, width).
        segments: list[tuple[int, int, int]] = []
        previous = 0
        for tid in tids:
            if tid < previous:
                raise ValueError(f"tids must be strictly increasing, got {list(tids)!r}")
            if tid >= self._size:
                raise ValueError(f"tid {tid} out of range for size {self._size}")
            if tid > previous:
                width = tid - previous
                segments.append((previous, (1 << width) - 1, width))
            previous = tid + 1
        tail_start = previous  # everything at or above this survives unbounded

        masks = self._masks
        if not segments:
            # Contiguous prefix deletion (the sliding-window case): every
            # mask compacts with a single shift.
            self._masks = {
                item: shifted
                for item, mask in masks.items()
                if (shifted := mask >> tail_start)
            }
        elif len(segments) == 1 and segments[0][0] == 0:
            # One contiguous deleted range: keep the low window, slide the
            # tail down — two shifts and an OR per mask.
            _, window, width = segments[0]
            self._masks = {
                item: compacted
                for item, mask in masks.items()
                if (compacted := (mask & window) | ((mask >> tail_start) << width))
            }
        else:
            first_deleted = 1 << tids[0]
            for item in list(masks):
                mask = masks[item]
                if mask < first_deleted:
                    continue  # every set bit sits below the first deletion
                compacted = 0
                offset = 0
                for start, window, width in segments:
                    compacted |= ((mask >> start) & window) << offset
                    offset += width
                compacted |= (mask >> tail_start) << offset
                if compacted:
                    masks[item] = compacted
                else:
                    del masks[item]
        self._size -= len(tids)

    # ------------------------------------------------------------------ #
    # Process-boundary export
    # ------------------------------------------------------------------ #
    def to_payload(self) -> tuple[dict[Item, int], int]:
        """Export the index as plain picklable data (mask table, size).

        The payload is what crosses a process boundary when a shard is
        shipped to a counting worker: rebuilding the index on the far side
        via :meth:`from_payload` is O(items) dictionary construction, never a
        re-scan of the shard's transactions.
        """
        return dict(self._masks), self._size

    @classmethod
    def from_payload(cls, payload: tuple[dict[Item, int], int]) -> "VerticalIndex":
        """Rebuild an index from :meth:`to_payload` data."""
        masks, size = payload
        return cls(dict(masks), size)

    # ------------------------------------------------------------------ #
    # Derivation (non-mutating)
    # ------------------------------------------------------------------ #
    def copy(self) -> "VerticalIndex":
        """Independent clone (mask table copied; the int masks are shared)."""
        return VerticalIndex(dict(self._masks), self._size)

    def concatenate(self, other: "VerticalIndex") -> "VerticalIndex":
        """Index of ``self's transactions + other's transactions``."""
        masks = dict(self._masks)
        shift = self._size
        for item, mask in other._masks.items():
            masks[item] = masks.get(item, 0) | (mask << shift)
        return VerticalIndex(masks, self._size + other._size)

    def slice(self, start: int, stop: int | None = None) -> "VerticalIndex":
        """Index of transactions ``[start:stop)`` (list-slicing semantics)."""
        start, stop, _ = slice(start, stop).indices(self._size)
        width = max(0, stop - start)
        window = (1 << width) - 1
        masks: dict[Item, int] = {}
        for item, mask in self._masks.items():
            part = (mask >> start) & window
            if part:
                masks[item] = part
        return VerticalIndex(masks, width)

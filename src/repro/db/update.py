"""Update batches and the update log.

The paper's setting is an *append-only* update: an increment ``db`` of new
transactions is added to the original database ``DB``.  Section 5 notes that
deletion and modification of transactions were also investigated; the
maintenance manager therefore models a general :class:`UpdateBatch` carrying
both insertions and deletions, and an :class:`UpdateLog` recording the
sequence of batches applied so far (useful for audits, replay and the
sliding-window example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import InvalidTransactionError
from ..itemsets import Item
from .transaction_db import Transaction, TransactionDatabase, _canonical_transaction

__all__ = ["UpdateBatch", "UpdateLog"]


@dataclass(frozen=True)
class UpdateBatch:
    """One maintenance step: transactions to insert and transactions to delete.

    Attributes
    ----------
    insertions:
        New transactions to append (the paper's increment ``db``).
    deletions:
        Transactions to remove from the original database (the FUP2-style
        extension).  Deletion is by value: each listed transaction removes one
        matching stored transaction.
    label:
        Free-form tag used in reports (e.g. ``"day-17"``).
    """

    insertions: tuple[Transaction, ...] = ()
    deletions: tuple[Transaction, ...] = ()
    label: str = ""

    @classmethod
    def from_iterables(
        cls,
        insertions: Iterable[Iterable[Item]] = (),
        deletions: Iterable[Iterable[Item]] = (),
        label: str = "",
    ) -> "UpdateBatch":
        """Canonicalise raw item iterables into an update batch."""
        try:
            canon_ins = tuple(_canonical_transaction(raw) for raw in insertions)
            canon_del = tuple(_canonical_transaction(raw) for raw in deletions)
        except InvalidTransactionError:
            raise
        return cls(insertions=canon_ins, deletions=canon_del, label=label)

    @property
    def is_insert_only(self) -> bool:
        """True when the batch matches the paper's pure-insertion setting."""
        return bool(self.insertions) and not self.deletions

    @property
    def is_delete_only(self) -> bool:
        """True when the batch only removes transactions."""
        return bool(self.deletions) and not self.insertions

    @property
    def is_empty(self) -> bool:
        """True when the batch changes nothing."""
        return not self.insertions and not self.deletions

    def insertions_database(self, name: str = "increment") -> TransactionDatabase:
        """Return the insertions as a :class:`TransactionDatabase` (the ``db`` of the paper)."""
        return TransactionDatabase(self.insertions, name=name)

    def deletions_database(self, name: str = "deletions") -> TransactionDatabase:
        """Return the deletions as a :class:`TransactionDatabase`."""
        return TransactionDatabase(self.deletions, name=name)

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)


@dataclass
class UpdateLog:
    """Ordered record of every update batch applied to a maintained database."""

    batches: list[UpdateBatch] = field(default_factory=list)

    def record(self, batch: UpdateBatch) -> None:
        """Append *batch* to the log."""
        self.batches.append(batch)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self.batches)

    @property
    def total_insertions(self) -> int:
        """Total number of transactions inserted across all recorded batches."""
        return sum(len(batch.insertions) for batch in self.batches)

    @property
    def total_deletions(self) -> int:
        """Total number of transactions deleted across all recorded batches."""
        return sum(len(batch.deletions) for batch in self.batches)

    def replay(self, database: TransactionDatabase) -> TransactionDatabase:
        """Apply every recorded batch, in order, to a copy of *database*.

        The copy inherits *database*'s vertical index (when built) and every
        replayed batch maintains it by delta, so replaying k batches costs
        the batches themselves — O(Σ dᵢ) — not k index rebuilds.
        """
        result = database.copy()
        for batch in self.batches:
            if batch.deletions:
                result.remove_batch(batch.deletions)
            if batch.insertions:
                result.extend(batch.insertions)
        return result

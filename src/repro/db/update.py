"""Update batches and the update log.

The paper's setting is an *append-only* update: an increment ``db`` of new
transactions is added to the original database ``DB``.  Section 5 notes that
deletion and modification of transactions were also investigated; the
maintenance manager therefore models a general :class:`UpdateBatch` carrying
both insertions and deletions, and an :class:`UpdateLog` recording the
sequence of batches applied so far (useful for audits, replay and the
sliding-window example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import InvalidTransactionError
from ..itemsets import Item
from .transaction_db import Transaction, TransactionDatabase, _canonical_transaction

__all__ = ["UpdateBatch", "UpdateLog"]


@dataclass(frozen=True)
class UpdateBatch:
    """One maintenance step: transactions to insert and transactions to delete.

    Attributes
    ----------
    insertions:
        New transactions to append (the paper's increment ``db``).
    deletions:
        Transactions to remove from the original database (the FUP2-style
        extension).  Deletion is by value: each listed transaction removes one
        matching stored transaction.
    label:
        Free-form tag used in reports (e.g. ``"day-17"``).
    """

    insertions: tuple[Transaction, ...] = ()
    deletions: tuple[Transaction, ...] = ()
    label: str = ""

    @classmethod
    def from_iterables(
        cls,
        insertions: Iterable[Iterable[Item]] = (),
        deletions: Iterable[Iterable[Item]] = (),
        label: str = "",
    ) -> "UpdateBatch":
        """Canonicalise raw item iterables into an update batch."""
        try:
            canon_ins = tuple(_canonical_transaction(raw) for raw in insertions)
            canon_del = tuple(_canonical_transaction(raw) for raw in deletions)
        except InvalidTransactionError:
            raise
        return cls(insertions=canon_ins, deletions=canon_del, label=label)

    @property
    def is_insert_only(self) -> bool:
        """True when the batch matches the paper's pure-insertion setting."""
        return bool(self.insertions) and not self.deletions

    @property
    def is_delete_only(self) -> bool:
        """True when the batch only removes transactions."""
        return bool(self.deletions) and not self.insertions

    @property
    def is_empty(self) -> bool:
        """True when the batch changes nothing."""
        return not self.insertions and not self.deletions

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form (the update-log journal's record format)."""
        return {
            "label": self.label,
            "insertions": [list(transaction) for transaction in self.insertions],
            "deletions": [list(transaction) for transaction in self.deletions],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "UpdateBatch":
        """Rebuild a batch from :meth:`as_dict` output (re-validating items)."""
        return cls.from_iterables(
            insertions=payload.get("insertions", ()),  # type: ignore[arg-type]
            deletions=payload.get("deletions", ()),  # type: ignore[arg-type]
            label=str(payload.get("label", "")),
        )

    def insertions_database(self, name: str = "increment") -> TransactionDatabase:
        """Return the insertions as a :class:`TransactionDatabase` (the ``db`` of the paper)."""
        return TransactionDatabase(self.insertions, name=name)

    def deletions_database(self, name: str = "deletions") -> TransactionDatabase:
        """Return the deletions as a :class:`TransactionDatabase`."""
        return TransactionDatabase(self.deletions, name=name)

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)


@dataclass
class UpdateLog:
    """Ordered record of every update batch applied to a maintained database."""

    batches: list[UpdateBatch] = field(default_factory=list)

    def record(self, batch: UpdateBatch) -> None:
        """Append *batch* to the log."""
        self.batches.append(batch)

    def clear(self) -> None:
        """Forget every recorded batch.

        The durable session calls this when it compacts its on-disk journal
        into a snapshot: the in-memory log mirrors the journal tail, and
        without the truncation a long-lived session would retain every batch
        ever applied.
        """
        self.batches.clear()

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self.batches)

    @property
    def total_insertions(self) -> int:
        """Total number of transactions inserted across all recorded batches."""
        return sum(len(batch.insertions) for batch in self.batches)

    @property
    def total_deletions(self) -> int:
        """Total number of transactions deleted across all recorded batches."""
        return sum(len(batch.deletions) for batch in self.batches)

    def as_dicts(self) -> list[dict[str, object]]:
        """The whole log as JSON-serialisable batch records, in order."""
        return [batch.as_dict() for batch in self.batches]

    @classmethod
    def from_dicts(cls, payloads: Iterable[dict[str, object]]) -> "UpdateLog":
        """Rebuild a log from :meth:`as_dicts` output."""
        return cls(batches=[UpdateBatch.from_dict(payload) for payload in payloads])

    def replay(self, database: TransactionDatabase, strict: bool = True) -> TransactionDatabase:
        """Apply every recorded batch, in order, to a copy of *database*.

        Replay is **strict** by default: every recorded deletion must name a
        transaction actually present at that point of the replay, and a
        mismatch raises :class:`~repro.errors.StaleStateError` identifying the
        missing transaction(s).  A log replayed against the wrong base
        database therefore fails loudly instead of silently "deleting"
        phantom rows and desyncing from the maintained database (which
        refuses such batches outright).  Pass ``strict=False`` to get the old
        best-effort behaviour in which unknown deletions are skipped.

        The copy inherits *database*'s vertical index (when built) and every
        replayed batch maintains it by delta, so replaying k batches costs
        the batches themselves — O(Σ dᵢ) — not k index rebuilds.
        """
        result = database.copy()
        for batch in self.batches:
            if batch.deletions:
                result.remove_batch(batch.deletions, strict=strict)
            if batch.insertions:
                result.extend(batch.insertions)
        return result

"""Summary statistics over transaction databases.

The synthetic-data generator tests and the benchmark reports both need to
check that a generated workload actually looks like ``Tx.Iy.Dm.dn`` — i.e.
that the transaction count and mean transaction size match the requested
parameters.  :func:`compute_stats` gathers those figures in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from .transaction_db import TransactionDatabase

__all__ = ["DatabaseStats", "compute_stats"]


@dataclass(frozen=True)
class DatabaseStats:
    """One-pass summary of a transaction database."""

    transaction_count: int
    distinct_items: int
    total_item_occurrences: int
    min_transaction_size: int
    max_transaction_size: int
    mean_transaction_size: float

    def as_dict(self) -> dict[str, float | int]:
        """Return the statistics as a plain dictionary (handy for reports)."""
        return {
            "transaction_count": self.transaction_count,
            "distinct_items": self.distinct_items,
            "total_item_occurrences": self.total_item_occurrences,
            "min_transaction_size": self.min_transaction_size,
            "max_transaction_size": self.max_transaction_size,
            "mean_transaction_size": self.mean_transaction_size,
        }


def compute_stats(database: TransactionDatabase) -> DatabaseStats:
    """Compute :class:`DatabaseStats` for *database* in a single scan."""
    count = 0
    total_items = 0
    min_size: int | None = None
    max_size = 0
    items: set[int] = set()
    for transaction in database:
        count += 1
        size = len(transaction)
        total_items += size
        items.update(transaction)
        max_size = max(max_size, size)
        min_size = size if min_size is None else min(min_size, size)
    return DatabaseStats(
        transaction_count=count,
        distinct_items=len(items),
        total_item_occurrences=total_items,
        min_transaction_size=min_size if min_size is not None else 0,
        max_transaction_size=max_size,
        mean_transaction_size=(total_items / count) if count else 0.0,
    )

"""Frequent-itemset mining substrate and the two baseline miners.

The paper compares FUP against re-running **Apriori** (Agrawal & Srikant,
VLDB '94) and **DHP** (Park, Chen & Yu, SIGMOD '95) on the updated database,
so both baselines are implemented here in full, sharing the same hash-tree
counting machinery that FUP uses.  Rule generation from large itemsets — the
second sub-problem of association-rule mining — lives in :mod:`repro.mining.rules`.
"""

from .result import ItemsetLattice, MiningResult
from .hash_tree import HashTree
from .backends import (
    BACKEND_NAMES,
    EXECUTOR_NAMES,
    CountingBackend,
    HorizontalBackend,
    MiningOptions,
    PartitionedBackend,
    VerticalBackend,
    make_backend,
)
from .candidates import apriori_gen, generate_level_one_candidates, prune_by_subsets
from .apriori import AprioriMiner, mine_apriori
from .dhp import DhpMiner, DhpOptions, mine_dhp
from .counting import count_candidates, count_items
from .rules import (
    AssociationRule,
    generate_rules,
    rule_confidence,
    rule_lift,
    rule_leverage,
    rule_conviction,
)

__all__ = [
    "ItemsetLattice",
    "MiningResult",
    "HashTree",
    "apriori_gen",
    "generate_level_one_candidates",
    "prune_by_subsets",
    "AprioriMiner",
    "mine_apriori",
    "DhpMiner",
    "DhpOptions",
    "mine_dhp",
    "count_candidates",
    "count_items",
    "BACKEND_NAMES",
    "EXECUTOR_NAMES",
    "CountingBackend",
    "HorizontalBackend",
    "VerticalBackend",
    "PartitionedBackend",
    "MiningOptions",
    "make_backend",
    "AssociationRule",
    "generate_rules",
    "rule_confidence",
    "rule_lift",
    "rule_leverage",
    "rule_conviction",
]

"""The partitioned (sharded, parallel) counting engine.

The database is split into ``shards`` contiguous partitions; each partition
is counted independently by an inner engine and the per-shard counts are
summed.  Support counting is embarrassingly parallel over disjoint
partitions — ``support(C, DB) = Σ_i support(C, shard_i)`` — which makes this
engine the library's sharding seam: the same split/merge shape scales out to
multi-machine execution without touching any algorithm code.

Shards of a :class:`~repro.db.transaction_db.TransactionDatabase` come from
``db.partition()``, which caches the shard views per shard count, so
repeated counting passes (every level of a mining run, every batch of a
maintenance session) reuse the same shard objects instead of re-splitting
the database on every call — and with them any per-shard state the inner
engine keeps, such as a shard's vertical index.

Two executors run the shards:

* ``executor="threads"`` (default) — a
  :class:`concurrent.futures.ThreadPoolExecutor`.  In pure CPython the GIL
  serialises the Python-level inner scans, so this mode is about the seam's
  *semantics* (deterministic merge, shard-boundary correctness) and about
  workloads whose inner engine releases the GIL; it adds no process overhead
  and needs no picklability.
* ``executor="processes"`` — a :class:`.process_pool.ShardWorkerPool` of
  dedicated worker processes, one lane per shard slot (capped by
  ``workers``).  This is real parallelism for pure-Python scans.  Shards
  cross the process boundary as picklable payloads
  (:meth:`TransactionDatabase.shard_payload`) and are cached per worker
  keyed by the shard's content fingerprint, so a k-level mining run or a
  k-batch maintenance session ships each shard generation across the
  boundary once, not once per counting pass.

Both executors merge per-shard results in shard order, so they are
bit-for-bit interchangeable — the executor-equivalence tests
(``tests/mining/test_executors.py``, ``tests/property``) assert it, and
``benchmarks/test_executor_scaling.py`` races them.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from ...db.transaction_db import Transaction, TransactionDatabase, shard_bounds
from ...itemsets import Item, Itemset
from .base import CountingBackend, TransactionSource
from .horizontal import HorizontalBackend
from .process_pool import DEFAULT_EXECUTOR, EXECUTOR_NAMES, ShardWorkerPool
from .vertical import VerticalBackend

__all__ = ["PartitionedBackend", "split_into_shards"]

#: Default number of partitions (and worker lanes).
DEFAULT_SHARDS = 4


def split_into_shards(
    transactions: Sequence[Transaction], shards: int
) -> list[Sequence[Transaction]]:
    """Split *transactions* into at most *shards* contiguous, balanced parts.

    Empty parts are dropped, so fewer than *shards* parts come back when the
    input is smaller than the shard count.  The split semantics are
    :func:`repro.db.transaction_db.shard_bounds` — the same bounds
    :meth:`TransactionDatabase.partition` uses.
    """
    return [
        transactions[start:stop] for start, stop in shard_bounds(len(transactions), shards)
    ]


class PartitionedBackend(CountingBackend):
    """Count each shard in parallel with an inner engine, then merge.

    Parameters
    ----------
    shards:
        Partition count the database is split into.
    inner:
        The engine counting each shard (default: the horizontal hash-tree
        scan, or the vertical engine when *kernel* is given).  In process
        mode the inner engine is pickled to the workers, so it must be
        picklable — the registry engines all are.
    executor:
        ``"threads"`` (default) or ``"processes"`` — see the module
        docstring for the trade-off.
    workers:
        Cap on concurrent execution lanes.  ``None`` (default) uses one lane
        per shard.  With fewer lanes than shards, shard ``i`` runs on lane
        ``i % workers`` (process mode pins that mapping, so per-worker shard
        caches stay warm).
    kernel:
        Bitmap kernel for the per-shard counting core.  Selecting a kernel
        implies a vertical inner engine (unless *inner* is given
        explicitly); the kernel name is resolved here, so pickled workers
        count with the same kernel as the parent.

    A process-mode backend owns worker processes; it is a context manager,
    and :meth:`close` releases the workers explicitly (garbage collection
    also reclaims them).  Thread mode holds no resources.
    """

    name = "partitioned"
    supports_transaction_pruning = False

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        inner: CountingBackend | None = None,
        executor: str = DEFAULT_EXECUTOR,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.shards = shards
        if inner is None:
            inner = VerticalBackend(kernel) if kernel is not None else HorizontalBackend()
        self.inner = inner
        self.kernel = getattr(self.inner, "kernel", None)
        self.executor = executor
        self.workers = workers
        self._pool: ShardWorkerPool | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle (process mode owns worker processes)
    # ------------------------------------------------------------------ #
    @property
    def lanes(self) -> int:
        """Number of concurrent execution lanes."""
        return min(self.workers, self.shards) if self.workers else self.shards

    def _ensure_pool(self) -> ShardWorkerPool:
        if self._pool is None:
            self._pool = ShardWorkerPool(self.lanes)
        return self._pool

    def close(self) -> None:
        """Release the worker processes of process mode (no-op otherwise)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "PartitionedBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # A live worker pool cannot cross a process boundary (an inner
        # partitioned engine is legal, if exotic): ship the configuration,
        # respawn lanes on demand on the far side.
        return {slot: getattr(self, slot) for slot in
                ("shards", "inner", "executor", "workers", "kernel")}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._pool = None

    # ------------------------------------------------------------------ #
    def _shards(self, transactions: TransactionSource) -> list[TransactionSource]:
        if isinstance(transactions, TransactionDatabase):
            # The shard *databases* (not their raw transaction lists) go to
            # the inner engine: the database caches these views per shard
            # count, so per-shard engine state — a vertical inner engine's
            # TID-bitset index, a worker process's cached copy — survives
            # across counting calls.
            return list(transactions.partition(self.shards))
        return list(split_into_shards(self.materialize(transactions), self.shards))

    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        parts = self._shards(transactions)
        merged: Counter[Item] = Counter()
        if not parts:
            return merged
        if self.executor == "processes":
            pool = self._ensure_pool()
            futures = [
                pool.submit_count_items(slot, part, self.inner)
                for slot, part in enumerate(parts)
            ]
            for future in futures:
                merged.update(future.result())
            return merged
        with ThreadPoolExecutor(max_workers=min(self.lanes, len(parts))) as executor:
            for shard_counts in executor.map(self.inner.count_items, parts):
                merged.update(shard_counts)
        return merged

    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        candidate_list = list(candidates)
        counts: dict[Itemset, int] = {candidate: 0 for candidate in candidate_list}
        if not counts:
            return counts
        parts = self._shards(transactions)
        if not parts:
            return counts
        if self.executor == "processes":
            pool = self._ensure_pool()
            futures = [
                pool.submit_count_candidates(slot, part, self.inner, candidate_list)
                for slot, part in enumerate(parts)
            ]
            shard_results: Iterable[dict[Itemset, int]] = (
                future.result() for future in futures
            )
        else:
            thread_pool = ThreadPoolExecutor(max_workers=min(self.lanes, len(parts)))
            with thread_pool as executor:
                shard_results = list(
                    executor.map(
                        lambda part: self.inner.count_candidates(part, candidate_list),
                        parts,
                    )
                )
        for shard_counts in shard_results:
            for candidate, count in shard_counts.items():
                if count:
                    counts[candidate] += count
        return counts

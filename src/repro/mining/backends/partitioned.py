"""The partitioned (sharded, parallel) counting engine.

The database is split into ``shards`` contiguous partitions; each partition
is counted independently by an inner engine and the per-shard counts are
summed.  Support counting is embarrassingly parallel over disjoint
partitions — ``support(C, DB) = Σ_i support(C, shard_i)`` — which makes this
engine the library's first sharding seam: the same split/merge shape scales
out to multi-process or multi-machine execution by swapping the executor,
without touching any algorithm code.

Shards of a :class:`~repro.db.transaction_db.TransactionDatabase` come from
``db.partition()``, which caches the shard views per shard count, so
repeated counting passes (every level of a mining run, every batch of a
maintenance session) reuse the same shard objects instead of re-splitting
the database on every call — and with them any per-shard state the inner
engine keeps, such as a shard's vertical index.

Shards run on a :class:`concurrent.futures.ThreadPoolExecutor`.  In pure
CPython the GIL serialises the Python-level inner scans, so this engine is
about the *seam* (deterministic merge semantics, shard-boundary correctness,
an executor swap away from real parallelism) rather than single-process
speed; the benchmark suite records both so the trade-off stays visible.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from ...db.transaction_db import Transaction, TransactionDatabase, shard_bounds
from ...itemsets import Item, Itemset
from .base import CountingBackend, TransactionSource
from .horizontal import HorizontalBackend

__all__ = ["PartitionedBackend", "split_into_shards"]

#: Default number of partitions (and worker threads).
DEFAULT_SHARDS = 4


def split_into_shards(
    transactions: Sequence[Transaction], shards: int
) -> list[Sequence[Transaction]]:
    """Split *transactions* into at most *shards* contiguous, balanced parts.

    Empty parts are dropped, so fewer than *shards* parts come back when the
    input is smaller than the shard count.  The split semantics are
    :func:`repro.db.transaction_db.shard_bounds` — the same bounds
    :meth:`TransactionDatabase.partition` uses.
    """
    return [
        transactions[start:stop] for start, stop in shard_bounds(len(transactions), shards)
    ]


class PartitionedBackend(CountingBackend):
    """Count each shard in parallel with an inner engine, then merge."""

    name = "partitioned"
    supports_transaction_pruning = False

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        inner: CountingBackend | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = shards
        self.inner = inner if inner is not None else HorizontalBackend()

    # ------------------------------------------------------------------ #
    def _shards(self, transactions: TransactionSource) -> list[TransactionSource]:
        if isinstance(transactions, TransactionDatabase):
            # The shard *databases* (not their raw transaction lists) go to
            # the inner engine: the database caches these views per shard
            # count, so per-shard engine state — a vertical inner engine's
            # TID-bitset index above all — survives across counting calls.
            return list(transactions.partition(self.shards))
        return list(split_into_shards(self.materialize(transactions), self.shards))

    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        parts = self._shards(transactions)
        merged: Counter[Item] = Counter()
        if not parts:
            return merged
        with ThreadPoolExecutor(max_workers=len(parts)) as executor:
            for shard_counts in executor.map(self.inner.count_items, parts):
                merged.update(shard_counts)
        return merged

    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        candidate_list = list(candidates)
        counts: dict[Itemset, int] = {candidate: 0 for candidate in candidate_list}
        if not counts:
            return counts
        parts = self._shards(transactions)
        if not parts:
            return counts
        with ThreadPoolExecutor(max_workers=len(parts)) as executor:
            shard_results = executor.map(
                lambda part: self.inner.count_candidates(part, candidate_list), parts
            )
            for shard_counts in shard_results:
                for candidate, count in shard_counts.items():
                    if count:
                        counts[candidate] += count
        return counts

"""Process-pool execution for the partitioned counting engine.

The partitioned engine's merge shape — ``support(C, DB) = Σ_i support(C,
shard_i)`` — is embarrassingly parallel, but Python threads cannot exploit it
for the pure-Python inner scans: the GIL serialises them.  This module
supplies the process-level executor that turns the seam into real
parallelism, built around two constraints:

* **Shards must cross the process boundary as data.**  Workers receive
  *payloads* (:meth:`TransactionDatabase.shard_payload` — the transaction
  list plus, when built, the vertical index's mask table), never live
  database objects, so what is shipped is exactly what the worker needs and
  nothing else.
* **Each shard should cross that boundary once, not once per counting
  pass.**  A k-level mining run counts the same shards k times, and a
  k-batch maintenance session counts each post-batch shard generation at
  every level of its update.  :class:`ShardWorkerPool` therefore pins shard
  *slots* to worker *lanes* (single-worker pools; shard ``i`` always lands on
  lane ``i % lanes``) and mirrors, on the parent side, the fingerprint-keyed
  shard cache each worker keeps — so a submit ships the payload only when the
  lane has not cached that shard's :meth:`TransactionDatabase.fingerprint`
  yet.  Because a lane executes its tasks in submission order, the mirror and
  the worker cache evolve in lockstep and can never disagree.

Merging stays deterministic: the parent collects per-shard results in shard
order, exactly like the thread path, so the two executors are
bit-for-bit interchangeable (the equivalence tests assert it).

Start method: ``fork`` where available (Linux — cheap, no re-import of
``__main__``), otherwise ``spawn``.  Set ``REPRO_MP_START_METHOD`` to
override; with ``spawn``/``forkserver``, scripts that count through a
process-mode engine at import time must guard with ``if __name__ ==
"__main__"`` (the standard :mod:`multiprocessing` caveat).
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from collections import Counter
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Sequence

from ...db.transaction_db import Transaction, TransactionDatabase
from ...itemsets import Item, Itemset

__all__ = ["EXECUTOR_NAMES", "DEFAULT_EXECUTOR", "ShardWorkerPool", "SHARD_CACHE_LIMIT"]

#: Valid ``executor=`` values for the partitioned engine (and the CLI flag).
EXECUTOR_NAMES = ("threads", "processes")

#: The executor the partitioned engine uses when none is selected.
DEFAULT_EXECUTOR = "threads"

#: How many distinct shards one worker process caches before evicting the
#: oldest (FIFO).  A maintenance session advances every shard's fingerprint
#: each batch, so without a bound a long session would pin every generation
#: of every shard in worker memory.  The parent mirrors this policy exactly.
SHARD_CACHE_LIMIT = 8


def _start_method() -> str:
    """The multiprocessing start method the shard pools use."""
    override = os.environ.get("REPRO_MP_START_METHOD", "")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# --------------------------------------------------------------------- #
# Worker side (runs inside the child processes)
# --------------------------------------------------------------------- #
#: Per-process shard cache: fingerprint → rebuilt shard database.  Plain
#: module global — each worker process has its own copy.
_WORKER_SHARDS: dict[str, TransactionDatabase] = {}


def _cached_shard(fingerprint: str, payload: dict | None) -> TransactionDatabase:
    """Return the shard for *fingerprint*, rebuilding and caching from *payload*.

    Eviction is FIFO over insertion order, capped at
    :data:`SHARD_CACHE_LIMIT` — the exact policy the parent-side mirror
    replays, which is what makes "payload is None" a safe contract: the
    parent only omits the payload when this cache is guaranteed to hold the
    fingerprint.
    """
    shard = _WORKER_SHARDS.get(fingerprint)
    if shard is None:
        if payload is None:
            raise RuntimeError(
                f"shard {fingerprint} was never shipped to this worker "
                f"(parent/worker cache desync)"
            )
        shard = TransactionDatabase.from_shard_payload(payload)
        # Module state is the whole point here: the cache must survive
        # across task invocations inside one worker process, and workers
        # never share an interpreter, so there is no cross-thread race.
        while len(_WORKER_SHARDS) >= SHARD_CACHE_LIMIT:
            del _WORKER_SHARDS[next(iter(_WORKER_SHARDS))]  # repro: ignore[RPR002]
        _WORKER_SHARDS[fingerprint] = shard  # repro: ignore[RPR002]
    return shard


def _worker_count_candidates(
    fingerprint: str | None,
    payload: dict | None,
    inner,
    candidates: list[Itemset],
) -> dict[Itemset, int]:
    """Count *candidates* over one shard inside a worker process."""
    if fingerprint is None:  # ad-hoc transaction list: never cached
        shard = TransactionDatabase.from_shard_payload(payload)
    else:
        shard = _cached_shard(fingerprint, payload)
    return inner.count_candidates(shard, candidates)


def _worker_count_items(
    fingerprint: str | None,
    payload: dict | None,
    inner,
) -> Counter[Item]:
    """Count per-item supports over one shard inside a worker process."""
    if fingerprint is None:
        shard = TransactionDatabase.from_shard_payload(payload)
    else:
        shard = _cached_shard(fingerprint, payload)
    return inner.count_items(shard)


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
def _shutdown_lanes(lanes: list[ProcessPoolExecutor]) -> None:
    """Tear the worker processes down (GC finalizer and explicit close path)."""
    for lane in lanes:
        lane.shutdown(wait=False, cancel_futures=True)
    lanes.clear()


class ShardWorkerPool:
    """A fixed set of worker *lanes*, each a dedicated single-worker process.

    Shard slot ``i`` is pinned to lane ``i % lanes``, so the same shard keeps
    hitting the same worker and its cached copy.  Lanes are spun up lazily on
    the first submit; :meth:`close` (or garbage collection of the pool)
    terminates them.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be positive, got {lanes}")
        self.lanes = lanes
        self._executors: list[ProcessPoolExecutor] = []
        #: Per-lane mirror of the worker's shard cache (insertion-ordered
        #: fingerprints, FIFO-evicted at SHARD_CACHE_LIMIT).
        self._shipped: list[dict[str, None]] = []
        self._finalizer = weakref.finalize(self, _shutdown_lanes, self._executors)

    # ------------------------------------------------------------------ #
    def _make_executor(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(_start_method())
        return ProcessPoolExecutor(max_workers=1, mp_context=context)

    def _lane_index(self, slot: int) -> int:
        if not self._executors:
            for _ in range(self.lanes):
                self._executors.append(self._make_executor())
                self._shipped.append({})
        return slot % self.lanes

    def _respawn_lane(self, index: int) -> None:
        """Replace a broken lane with a fresh worker (empty shard cache)."""
        self._executors[index].shutdown(wait=False, cancel_futures=True)
        self._executors[index] = self._make_executor()
        self._shipped[index].clear()

    def _shard_args(
        self, shard: "TransactionDatabase | Sequence[Transaction]", shipped: dict[str, None]
    ) -> tuple[str | None, dict | None]:
        """Fingerprint + payload for one submit (the mirror is NOT updated
        here — only a successfully queued task may commit it, or a failed
        submit would leave the parent believing a shard the worker never
        received was shipped)."""
        if not isinstance(shard, TransactionDatabase):
            # Ad-hoc transaction list: shipped every time, cached never.
            return None, {"transactions": list(shard), "name": ""}
        fingerprint = shard.fingerprint()
        if fingerprint in shipped:
            return fingerprint, None
        return fingerprint, shard.shard_payload()

    def _submit(self, slot: int, shard, task, *arguments) -> Future:
        """Queue *task* on the shard's pinned lane, respawning it if broken.

        A worker killed from outside (OOM, signal) breaks its
        ProcessPoolExecutor permanently; without the respawn every later
        count through this pool would keep raising BrokenProcessPool.  One
        respawn attempt per submit is enough — a freshly spawned lane that
        still cannot accept work is a real environmental failure worth
        propagating.
        """
        index = self._lane_index(slot)
        for attempt in (0, 1):
            shipped = self._shipped[index]
            fingerprint, payload = self._shard_args(shard, shipped)
            try:
                future = self._executors[index].submit(
                    task, fingerprint, payload, *arguments
                )
            except (BrokenExecutor, RuntimeError):
                if attempt:
                    raise
                self._respawn_lane(index)
                continue
            if fingerprint is not None and payload is not None:
                # Mirror the worker's miss-insert (same FIFO eviction rule).
                while len(shipped) >= SHARD_CACHE_LIMIT:
                    del shipped[next(iter(shipped))]
                shipped[fingerprint] = None
            return future
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    def submit_count_candidates(
        self,
        slot: int,
        shard: "TransactionDatabase | Sequence[Transaction]",
        inner,
        candidates: list[Itemset],
    ) -> "Future[dict[Itemset, int]]":
        """Queue a candidate-counting pass over *shard* on its pinned lane."""
        return self._submit(slot, shard, _worker_count_candidates, inner, candidates)

    def submit_count_items(
        self,
        slot: int,
        shard: "TransactionDatabase | Sequence[Transaction]",
        inner,
    ) -> "Future[Counter[Item]]":
        """Queue an item-counting pass over *shard* on its pinned lane."""
        return self._submit(slot, shard, _worker_count_items, inner)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down.  Safe to call twice; the pool
        re-spawns lanes if used again afterwards."""
        _shutdown_lanes(self._executors)
        self._shipped.clear()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executors else "idle"
        return f"<ShardWorkerPool lanes={self.lanes} {state}>"

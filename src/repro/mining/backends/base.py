"""The counting-backend contract every support-counting engine implements.

Every algorithm in this library — Apriori, DHP, FUP and FUP2 — spends almost
all of its time in the same primitive: *given a pool of candidate itemsets and
a pile of transactions, what is the absolute support count of each candidate?*
:class:`CountingBackend` turns that primitive into a pluggable seam.  The
miners and updaters call the backend for every counting pass and never touch
the scan machinery directly, so the horizontal hash-tree scan, the vertical
TID-set engine and the partitioned engine — threaded or genuinely
process-parallel — (and whatever future engines — multi-machine shards,
external stores, accelerators — come later) are interchangeable without
touching algorithm code.

Backends accept either a :class:`~repro.db.transaction_db.TransactionDatabase`
or any sequence of canonical transactions (sorted tuples of ints).  Passing
the database object is preferred: engines that maintain a per-database index
(the vertical engine's TID bitsets) can then reuse the cached representation
across counting passes instead of rebuilding it per call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Collection, Iterable, Sequence, Union

from ...db.transaction_db import Transaction, TransactionDatabase
from ...itemsets import Item, Itemset

#: What a backend counts over: the database object itself (preferred — lets
#: engines reuse cached per-database indexes) or any sequence of canonical
#: transactions (the miners' trimmed working lists).
TransactionSource = Union[TransactionDatabase, Sequence[Transaction]]

__all__ = ["CountingBackend", "TransactionSource"]


class CountingBackend(ABC):
    """Interface of a support-counting engine.

    Subclasses implement the two scan primitives; everything else (pool
    splitting, fraction conversion) has shared default implementations.

    Attributes
    ----------
    name:
        Registry key and display name of the engine (``"horizontal"``,
        ``"vertical"``, ``"partitioned"``, ...).
    supports_transaction_pruning:
        True when the engine drives an explicit per-transaction loop, so a
        caller can interleave per-transaction work (DHP's transaction
        trimming, FUP's ``Reduce-db``/``Reduce-DB`` passes) with the counting
        scan.  Engines that count without visiting transactions one by one
        (the vertical TID-set engine) report False, and callers fall back to
        plain counting — the reductions are a lossless optimisation, so
        support counts are identical either way.
    """

    name: str = "abstract"
    supports_transaction_pruning: bool = False

    # ------------------------------------------------------------------ #
    # Scan primitives
    # ------------------------------------------------------------------ #
    @abstractmethod
    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        """Count per-item occurrences (supports of all 1-itemsets) in one scan."""

    @abstractmethod
    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        """Count the support of *candidates* over *transactions*.

        The candidates may be of mixed sizes.  The result holds an entry for
        **every** candidate, including those with zero support — callers
        frequently need the explicit zero.
        """

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def count_pools(
        self,
        transactions: TransactionSource,
        pools: Sequence[Collection[Itemset]],
    ) -> list[dict[Itemset, int]]:
        """Count several disjoint candidate pools over the same transactions.

        FUP's later iterations count two pools per increment scan (the old
        winners ``W`` and the new candidates ``C``).  The default counts the
        union in one pass and splits the result, so engines pay for a single
        scan / index lookup rather than one per pool.
        """
        merged: list[Itemset] = []
        for pool in pools:
            merged.extend(pool)
        counts = self.count_candidates(transactions, merged)
        return [{candidate: counts[candidate] for candidate in pool} for pool in pools]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"

    # ------------------------------------------------------------------ #
    @staticmethod
    def materialize(transactions: TransactionSource) -> Sequence[Transaction]:
        """Return *transactions* as an indexable sequence without copying
        when the source already is one (databases expose their list view)."""
        if isinstance(transactions, TransactionDatabase):
            return transactions.transactions()
        if isinstance(transactions, Sequence):
            return transactions
        return list(transactions)

"""The vertical (TID-set) counting engine.

Instead of walking transactions and asking "which candidates are inside?",
the vertical layout stores, per item, the set of transaction ids containing
that item, and answers "how many transactions contain this candidate?" by
intersecting the TID sets of the candidate's items.  TID sets are represented
as Python ``int`` bitmasks — bit ``t`` is set when transaction ``t`` contains
the item — so an intersection is a single C-speed ``&`` and a support count is
one ``int.bit_count()``, regardless of how many candidates share a scan.

When the source is a :class:`~repro.db.transaction_db.TransactionDatabase`
the database's cached :class:`~repro.db.vertical_index.VerticalIndex` is
used.  That index is built once and then *maintained by delta* through every
database mutation, so its cost is amortised not just over every level of
every mining run but over a whole multi-batch maintenance session — the
engine never pays a rebuild that the update stream didn't force.  Ad-hoc
transaction lists (the updaters' trimmed working copies) get a throwaway
index per call, which is still a net win whenever the candidate pool is
non-trivial.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from ...db.transaction_db import TransactionDatabase, build_vertical_index
from ...itemsets import Item, Itemset
from .base import CountingBackend, TransactionSource

__all__ = ["VerticalBackend", "build_vertical_index"]


class VerticalBackend(CountingBackend):
    """Support counting by TID-bitmask intersection."""

    name = "vertical"
    supports_transaction_pruning = False

    def _index(self, transactions: TransactionSource) -> Mapping[Item, int]:
        if isinstance(transactions, TransactionDatabase):
            return transactions.vertical()
        return build_vertical_index(self.materialize(transactions))

    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        index = self._index(transactions)
        return Counter({item: bits.bit_count() for item, bits in index.items()})

    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        index = self._index(transactions)
        counts: dict[Itemset, int] = {}
        for candidate in candidates:
            bits = -1  # all-ones: the identity of bitwise AND
            for item in candidate:
                item_bits = index.get(item)
                if not item_bits:
                    bits = 0
                    break
                bits &= item_bits
                if not bits:
                    break
            # An empty candidate would leave ``bits == -1``; candidates are
            # always non-empty itemsets, so ``bits`` is a finite mask here.
            counts[candidate] = bits.bit_count() if bits > 0 else 0
        return counts

"""The vertical (TID-set) counting engine.

Instead of walking transactions and asking "which candidates are inside?",
the vertical layout stores, per item, the set of transaction ids containing
that item, and answers "how many transactions contain this candidate?" by
intersecting the TID sets of the candidate's items.  The physical bitmap
representation is pluggable (:mod:`repro.kernels`): big-int masks — one
C-speed ``&`` per intersection, one ``int.bit_count()`` per support — by
default, or numpy ``uint64`` lanes that count a whole candidate level per
vectorized kernel call when ``kernel="numpy"`` (or ``"auto"``) is selected.

When the source is a :class:`~repro.db.transaction_db.TransactionDatabase`
the database's cached :class:`~repro.db.vertical_index.VerticalIndex` is
used.  That index is built once and then *maintained by delta* through every
database mutation, so its cost is amortised not just over every level of
every mining run but over a whole multi-batch maintenance session — the
engine never pays a rebuild that the update stream didn't force.  Ad-hoc
transaction lists (the updaters' trimmed working copies) get a throwaway
index per call, which is still a net win whenever the candidate pool is
non-trivial.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ...db.transaction_db import TransactionDatabase, build_vertical_index
from ...db.vertical_index import VerticalIndex
from ...itemsets import Item, Itemset
from ...kernels import resolve_kernel_name
from .base import CountingBackend, TransactionSource

__all__ = ["VerticalBackend", "build_vertical_index"]


class VerticalBackend(CountingBackend):
    """Support counting by TID-bitmask intersection.

    *kernel* selects the bitmap kernel (``"bigint"``, ``"numpy"``, or
    ``"auto"``); it is resolved eagerly so a backend pickled into a worker
    process counts with the same kernel as its parent.
    """

    name = "vertical"
    supports_transaction_pruning = False

    def __init__(self, kernel: str | None = None) -> None:
        self.kernel = resolve_kernel_name(kernel)

    def _index(self, transactions: TransactionSource) -> VerticalIndex:
        if isinstance(transactions, TransactionDatabase):
            return transactions.vertical(kernel=self.kernel)
        return VerticalIndex.build(
            self.materialize(transactions), kernel=self.kernel
        )

    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        if isinstance(transactions, TransactionDatabase):
            # The database's delta-maintained cache already holds the
            # answer; don't redo |items| popcounts per counting pass.
            return transactions.item_counts()
        return self._index(transactions).item_counts()

    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        return self._index(transactions).count_candidates(list(candidates))

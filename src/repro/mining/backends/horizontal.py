"""The horizontal (transaction-at-a-time) hash-tree counting engine.

This is the classic Apriori counting pass — the ``Subset(C, T)`` primitive of
Agrawal & Srikant driven over every transaction — extracted verbatim from the
original ``repro.mining.counting`` scan loops.  It is the reference engine:
the one the paper's algorithms describe, the only one that can interleave
per-transaction work (DHP trimming, FUP's Reduce-db/Reduce-DB) with the scan,
and the baseline the vertical and partitioned engines are benchmarked
against.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ...itemsets import Item, Itemset
from ..hash_tree import HashTree
from .base import CountingBackend, TransactionSource

__all__ = ["HorizontalBackend"]


class HorizontalBackend(CountingBackend):
    """Hash-tree scan over transactions, one transaction at a time."""

    name = "horizontal"
    supports_transaction_pruning = True

    def count_items(self, transactions: TransactionSource) -> Counter[Item]:
        counts: Counter[Item] = Counter()
        for transaction in self.materialize(transactions):
            counts.update(transaction)
        return counts

    def count_candidates(
        self,
        transactions: TransactionSource,
        candidates: Iterable[Itemset],
    ) -> dict[Itemset, int]:
        candidate_list = list(candidates)
        counts: dict[Itemset, int] = {candidate: 0 for candidate in candidate_list}
        if not counts:
            return counts
        by_size: dict[int, list[Itemset]] = {}
        for candidate in counts:
            by_size.setdefault(len(candidate), []).append(candidate)
        trees = [HashTree(group) for group in by_size.values()]
        for transaction in self.materialize(transactions):
            for tree in trees:
                for match in tree.subsets_in(transaction):
                    counts[match] += 1
        return counts

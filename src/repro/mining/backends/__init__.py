"""Pluggable support-counting engines.

Three interchangeable engines implement the :class:`CountingBackend`
contract:

* ``"horizontal"`` — the classic transaction-at-a-time hash-tree scan
  (:class:`HorizontalBackend`), extracted from the original counting module.
  The reference engine, and the only one supporting per-transaction
  interleaving (DHP trimming, FUP database reductions).
* ``"vertical"`` — per-item TID bitsets intersected per candidate
  (:class:`VerticalBackend`).  The order-of-magnitude win on
  counting-dominated workloads.
* ``"partitioned"`` — the database split into N shards counted in parallel
  and merged (:class:`PartitionedBackend`).  The library's sharding seam,
  with two executors: GIL-bound threads (the default) and a real
  process-parallel mode (``executor="processes"``) that ships each shard to
  a dedicated worker process once and caches it there by content
  fingerprint.

Use :func:`make_backend` (or :meth:`MiningOptions.make_backend`) to construct
an engine from a configuration, :data:`BACKEND_NAMES` for the CLI
``--backend`` choices and :data:`EXECUTOR_NAMES` for ``--executor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ReproError
from ...kernels import KERNEL_NAMES
from .base import CountingBackend, TransactionSource
from .horizontal import HorizontalBackend
from .partitioned import DEFAULT_SHARDS, PartitionedBackend, split_into_shards
from .process_pool import DEFAULT_EXECUTOR, EXECUTOR_NAMES, ShardWorkerPool
from .vertical import VerticalBackend, build_vertical_index

__all__ = [
    "CountingBackend",
    "TransactionSource",
    "HorizontalBackend",
    "VerticalBackend",
    "PartitionedBackend",
    "ShardWorkerPool",
    "MiningOptions",
    "BACKEND_NAMES",
    "EXECUTOR_NAMES",
    "KERNEL_NAMES",
    "DEFAULT_SHARDS",
    "DEFAULT_EXECUTOR",
    "make_backend",
    "build_vertical_index",
    "split_into_shards",
]

#: Engine registry: name → zero-config factory.  ``make_backend`` adds the
#: shard-count and executor knobs on top.
_FACTORIES = {
    HorizontalBackend.name: HorizontalBackend,
    VerticalBackend.name: VerticalBackend,
    PartitionedBackend.name: PartitionedBackend,
}

#: Valid ``--backend`` values, in registry order.
BACKEND_NAMES = tuple(_FACTORIES)


def make_backend(
    backend: "str | CountingBackend" = HorizontalBackend.name,
    shards: int = DEFAULT_SHARDS,
    executor: str = DEFAULT_EXECUTOR,
    workers: int | None = None,
    kernel: str | None = None,
) -> CountingBackend:
    """Build a counting engine from a name (or pass an instance through).

    Parameters
    ----------
    backend:
        Engine name from :data:`BACKEND_NAMES`, or an already-constructed
        :class:`CountingBackend` (returned unchanged — lets callers inject
        custom engines anywhere a name is accepted).
    shards:
        Partition count for the ``"partitioned"`` engine; ignored by the
        single-partition engines.
    executor:
        Shard executor for the ``"partitioned"`` engine
        (:data:`EXECUTOR_NAMES`): ``"threads"`` or ``"processes"``.
    workers:
        Cap on the ``"partitioned"`` engine's concurrent lanes (``None``:
        one per shard).
    kernel:
        Bitmap kernel for the ``"vertical"`` engine — also the default
        inner engine of ``"partitioned"`` (:data:`KERNEL_NAMES`):
        ``"bigint"``, ``"numpy"``, or ``"auto"``.  ``None`` keeps the
        default; the horizontal engine ignores it.
    """
    if isinstance(backend, CountingBackend):
        return backend
    try:
        factory = _FACTORIES[backend]
    except KeyError:
        raise ReproError(
            f"unknown counting backend {backend!r}; expected one of {', '.join(BACKEND_NAMES)}"
        ) from None
    if factory is PartitionedBackend:
        return PartitionedBackend(
            shards=shards, executor=executor, workers=workers, kernel=kernel
        )
    if factory is VerticalBackend:
        return VerticalBackend(kernel=kernel)
    return factory()


@dataclass(frozen=True)
class MiningOptions:
    """Engine configuration shared by every miner and updater.

    Attributes
    ----------
    backend:
        Counting-engine name (see :data:`BACKEND_NAMES`).
    shards:
        Partition count used by the ``"partitioned"`` engine.
    executor:
        Shard executor used by the ``"partitioned"`` engine (see
        :data:`EXECUTOR_NAMES`): ``"threads"`` (GIL-bound, zero overhead) or
        ``"processes"`` (real parallelism; shards shipped to worker
        processes once and cached there).
    workers:
        Cap on the ``"partitioned"`` engine's concurrent lanes (``None``:
        one per shard).
    kernel:
        Bitmap kernel for the vertical counting core (see
        :data:`KERNEL_NAMES`): ``"bigint"``, ``"numpy"``, ``"auto"``, or
        ``None`` for the default.
    """

    backend: str = HorizontalBackend.name
    shards: int = DEFAULT_SHARDS
    executor: str = DEFAULT_EXECUTOR
    workers: int | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ReproError(
                f"unknown counting backend {self.backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.executor not in EXECUTOR_NAMES:
            raise ReproError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ReproError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {', '.join(KERNEL_NAMES)}"
            )

    def make_backend(self) -> CountingBackend:
        """Construct the configured engine."""
        return make_backend(
            self.backend,
            shards=self.shards,
            executor=self.executor,
            workers=self.workers,
            kernel=self.kernel,
        )

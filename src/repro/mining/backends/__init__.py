"""Pluggable support-counting engines.

Three interchangeable engines implement the :class:`CountingBackend`
contract:

* ``"horizontal"`` — the classic transaction-at-a-time hash-tree scan
  (:class:`HorizontalBackend`), extracted from the original counting module.
  The reference engine, and the only one supporting per-transaction
  interleaving (DHP trimming, FUP database reductions).
* ``"vertical"`` — per-item TID bitsets intersected per candidate
  (:class:`VerticalBackend`).  The order-of-magnitude win on
  counting-dominated workloads.
* ``"partitioned"`` — the database split into N shards counted in parallel
  and merged (:class:`PartitionedBackend`).  The library's sharding seam.

Use :func:`make_backend` (or :meth:`MiningOptions.make_backend`) to construct
an engine from a configuration, and :data:`BACKEND_NAMES` for the CLI
choices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ReproError
from .base import CountingBackend, TransactionSource
from .horizontal import HorizontalBackend
from .partitioned import DEFAULT_SHARDS, PartitionedBackend, split_into_shards
from .vertical import VerticalBackend, build_vertical_index

__all__ = [
    "CountingBackend",
    "TransactionSource",
    "HorizontalBackend",
    "VerticalBackend",
    "PartitionedBackend",
    "MiningOptions",
    "BACKEND_NAMES",
    "DEFAULT_SHARDS",
    "make_backend",
    "build_vertical_index",
    "split_into_shards",
]

#: Engine registry: name → zero-config factory.  ``make_backend`` adds the
#: shard-count knob on top.
_FACTORIES = {
    HorizontalBackend.name: HorizontalBackend,
    VerticalBackend.name: VerticalBackend,
    PartitionedBackend.name: PartitionedBackend,
}

#: Valid ``--backend`` values, in registry order.
BACKEND_NAMES = tuple(_FACTORIES)


def make_backend(
    backend: "str | CountingBackend" = HorizontalBackend.name,
    shards: int = DEFAULT_SHARDS,
) -> CountingBackend:
    """Build a counting engine from a name (or pass an instance through).

    Parameters
    ----------
    backend:
        Engine name from :data:`BACKEND_NAMES`, or an already-constructed
        :class:`CountingBackend` (returned unchanged — lets callers inject
        custom engines anywhere a name is accepted).
    shards:
        Partition count for the ``"partitioned"`` engine; ignored by the
        single-partition engines.
    """
    if isinstance(backend, CountingBackend):
        return backend
    try:
        factory = _FACTORIES[backend]
    except KeyError:
        raise ReproError(
            f"unknown counting backend {backend!r}; expected one of {', '.join(BACKEND_NAMES)}"
        ) from None
    if factory is PartitionedBackend:
        return PartitionedBackend(shards=shards)
    return factory()


@dataclass(frozen=True)
class MiningOptions:
    """Engine configuration shared by every miner and updater.

    Attributes
    ----------
    backend:
        Counting-engine name (see :data:`BACKEND_NAMES`).
    shards:
        Partition count used by the ``"partitioned"`` engine.
    """

    backend: str = HorizontalBackend.name
    shards: int = DEFAULT_SHARDS

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ReproError(
                f"unknown counting backend {self.backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")

    def make_backend(self) -> CountingBackend:
        """Construct the configured engine."""
        return make_backend(self.backend, shards=self.shards)

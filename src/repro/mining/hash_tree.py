"""Hash tree for subset counting — the ``Subset(C, T)`` primitive.

Apriori, DHP and FUP all need the same inner operation: given a set of
candidate k-itemsets ``C`` and a transaction ``T``, find every candidate that
is contained in ``T`` and bump its support counter.  Agrawal & Srikant store
the candidates in a *hash tree*: interior nodes hash on the next item, leaves
hold small buckets of candidates, and a recursive descent enumerates only the
candidates that can still match the transaction.  The paper's FUP pseudo-code
calls this operation ``Subset(W, T)`` / ``Subset(C, T)`` and cites [2] for it,
so it is reproduced here as a first-class substrate.

The implementation keeps the classic structure (interior hash nodes, leaf
buckets that split once they overflow) because the *number of candidate
comparisons avoided* is part of what makes the relative algorithm costs
realistic, even in pure Python.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..itemsets import Item, Itemset

__all__ = ["HashTree"]


class _Node:
    """One hash-tree node; either a leaf bucket or an interior hash node."""

    __slots__ = ("children", "bucket", "depth")

    def __init__(self, depth: int) -> None:
        self.children: dict[int, "_Node"] | None = None
        self.bucket: list[Itemset] | None = []
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """A hash tree over a set of equal-size candidate itemsets.

    Parameters
    ----------
    candidates:
        Candidate itemsets, all of the same size ``k`` (size-0 trees are
        permitted and simply match nothing).
    branching:
        Number of hash buckets per interior node.
    leaf_capacity:
        Maximum number of candidates a leaf holds before it splits into an
        interior node (leaves at depth ``k`` never split — the hash path is
        exhausted).
    """

    __slots__ = ("_root", "_size", "_k", "_branching", "_leaf_capacity")

    def __init__(
        self,
        candidates: Iterable[Itemset] = (),
        branching: int = 8,
        leaf_capacity: int = 16,
    ) -> None:
        if branching < 2:
            raise ValueError(f"branching must be at least 2, got {branching}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be at least 1, got {leaf_capacity}")
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._root = _Node(depth=0)
        self._size = 0
        self._k = 0
        for candidate in candidates:
            self.insert(candidate)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Itemset]:
        return self._iterate(self._root)

    @property
    def itemset_size(self) -> int:
        """The common size ``k`` of the stored candidates (0 when empty)."""
        return self._k

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def insert(self, candidate: Itemset) -> None:
        """Insert one candidate itemset (must match the size of prior inserts)."""
        if self._size == 0:
            self._k = len(candidate)
        elif len(candidate) != self._k:
            raise ValueError(
                f"all candidates must have size {self._k}, got {candidate!r}"
            )
        self._insert(self._root, candidate)
        self._size += 1

    def _hash(self, item: Item) -> int:
        return item % self._branching

    def _insert(self, node: _Node, candidate: Itemset) -> None:
        while not node.is_leaf:
            assert node.children is not None
            key = self._hash(candidate[node.depth])
            child = node.children.get(key)
            if child is None:
                child = _Node(depth=node.depth + 1)
                node.children[key] = child
            node = child
        assert node.bucket is not None
        node.bucket.append(candidate)
        if len(node.bucket) > self._leaf_capacity and node.depth < self._k:
            self._split(node)

    def _split(self, node: _Node) -> None:
        """Convert an overflowing leaf into an interior node."""
        assert node.bucket is not None
        pending = node.bucket
        node.bucket = None
        node.children = {}
        for candidate in pending:
            key = self._hash(candidate[node.depth])
            child = node.children.get(key)
            if child is None:
                child = _Node(depth=node.depth + 1)
                node.children[key] = child
            self._insert(child, candidate)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def subsets_in(self, transaction: Sequence[Item]) -> list[Itemset]:
        """Return every stored candidate contained in *transaction*.

        *transaction* must be sorted in increasing item order (which is how
        :class:`~repro.db.transaction_db.TransactionDatabase` stores them).
        """
        if self._size == 0 or len(transaction) < self._k:
            return []
        matches: list[Itemset] = []
        members = set(transaction)
        self._collect(self._root, transaction, 0, members, matches)
        return matches

    def contains(self, candidate: Itemset) -> bool:
        """Return True if *candidate* was inserted into the tree."""
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            child = node.children.get(self._hash(candidate[node.depth]))
            if child is None:
                return False
            node = child
        assert node.bucket is not None
        return candidate in node.bucket

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _collect(
        self,
        node: _Node,
        transaction: Sequence[Item],
        start: int,
        members: set[Item],
        matches: list[Itemset],
    ) -> None:
        if node.is_leaf:
            assert node.bucket is not None
            for candidate in node.bucket:
                if all(item in members for item in candidate):
                    matches.append(candidate)
            return
        assert node.children is not None
        # Descend once per distinct hash bucket reachable from the remaining
        # transaction items; a candidate whose next item is transaction[i]
        # lives under hash(transaction[i]).
        remaining_needed = self._k - node.depth
        limit = len(transaction) - remaining_needed + 1
        seen_buckets: set[int] = set()
        for index in range(start, limit):
            key = self._hash(transaction[index])
            if key in seen_buckets:
                continue
            seen_buckets.add(key)
            child = node.children.get(key)
            if child is not None:
                self._collect(child, transaction, index + 1, members, matches)

    def _iterate(self, node: _Node) -> Iterator[Itemset]:
        if node.is_leaf:
            assert node.bucket is not None
            yield from node.bucket
            return
        assert node.children is not None
        for child in node.children.values():
            yield from self._iterate(child)

"""The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB '94).

Apriori is the first of the two baselines the paper re-runs on the updated
database ``DB ∪ db`` to compare against FUP.  The structure is the classic
level-wise loop:

1. Scan the database once to count every item; keep those with support ≥
   ``minsup`` as ``L_1``.
2. At level ``k`` ≥ 2, build ``C_k = apriori_gen(L_{k-1})``, scan the database
   once counting each candidate with the hash tree, and keep the candidates
   meeting ``minsup`` as ``L_k``.
3. Stop when ``L_k`` is empty.

The miner is instrumented: it records the number of candidate itemsets whose
support had to be counted (the quantity Figure 3 of the paper compares),
the number of database scans, and the number of transactions read.
"""

from __future__ import annotations

import time

from ..db.transaction_db import TransactionDatabase
from ..itemsets import Itemset
from .backends import (
    BACKEND_NAMES,
    DEFAULT_EXECUTOR,
    DEFAULT_SHARDS,
    CountingBackend,
    MiningOptions,
    make_backend,
)
from .candidates import apriori_gen
from .result import (
    ItemsetLattice,
    MiningResult,
    required_support_count,
    validate_min_support,
)

__all__ = ["AprioriMiner", "mine_apriori"]


class AprioriMiner:
    """Level-wise Apriori miner over a :class:`TransactionDatabase`.

    Parameters
    ----------
    min_support:
        Relative minimum support threshold ``s`` in ``(0, 1]``.  An itemset is
        large when its absolute support count is at least ``ceil(s * D)`` —
        i.e. ``support >= s * D`` using exact integer arithmetic, matching the
        paper's ``X.support >= s × D`` definition.
    max_itemset_size:
        Optional cap on the itemset size explored (useful in tests and
        ablations); ``None`` means run until no large itemsets are found.
    options:
        Counting-engine configuration (:class:`MiningOptions`); the default
        uses the horizontal hash-tree scan.  A ready
        :class:`~repro.mining.backends.CountingBackend` instance or a
        registry name is also accepted.
    """

    algorithm_name = "apriori"

    def __init__(
        self,
        min_support: float,
        max_itemset_size: int | None = None,
        options: MiningOptions | CountingBackend | str | None = None,
    ) -> None:
        self.min_support = validate_min_support(min_support)
        if max_itemset_size is not None and max_itemset_size < 1:
            raise ValueError(f"max_itemset_size must be positive, got {max_itemset_size}")
        self.max_itemset_size = max_itemset_size
        if options is None or isinstance(options, MiningOptions):
            self.options: MiningOptions | None = (
                options if options is not None else MiningOptions()
            )
            self.backend = self.options.make_backend()
        else:
            # A backend name or ready engine: resolve it first, then describe
            # it in `options` so the two attributes never disagree.  Custom
            # engines outside the registry cannot be described by
            # MiningOptions, so `options` is None for them.
            self.backend = make_backend(options)
            self.options = (
                MiningOptions(
                    backend=self.backend.name,
                    shards=getattr(self.backend, "shards", DEFAULT_SHARDS),
                    executor=getattr(self.backend, "executor", DEFAULT_EXECUTOR),
                    workers=getattr(self.backend, "workers", None),
                    kernel=getattr(self.backend, "kernel", None),
                )
                if self.backend.name in BACKEND_NAMES
                else None
            )

    # ------------------------------------------------------------------ #
    def required_count(self, database_size: int) -> int:
        """Absolute support threshold for the given database size."""
        return required_support_count(self.min_support, database_size)

    def mine(self, database: TransactionDatabase) -> MiningResult:
        """Run the level-wise mining loop and return the large itemsets."""
        start = time.perf_counter()
        database_size = len(database)
        threshold = self.required_count(database_size)
        lattice = ItemsetLattice(database_size=database_size)
        candidates_per_level: dict[int, int] = {}
        scans = 0
        transactions_read = 0

        # --- level 1: count every item in one scan --------------------- #
        item_counts = self.backend.count_items(database)
        scans += 1
        transactions_read += database_size
        candidates_per_level[1] = len(item_counts)
        current_level: set[Itemset] = set()
        for item, count in item_counts.items():
            if count >= threshold:
                candidate = (item,)
                lattice.add(candidate, count)
                current_level.add(candidate)

        # --- levels 2..k ------------------------------------------------ #
        size = 2
        while current_level and (self.max_itemset_size is None or size <= self.max_itemset_size):
            candidates = apriori_gen(current_level)
            if not candidates:
                break
            candidates_per_level[size] = len(candidates)
            counts: dict[Itemset, int] = self.backend.count_candidates(database, candidates)
            scans += 1
            transactions_read += database_size

            current_level = set()
            for candidate, count in counts.items():
                if count >= threshold:
                    lattice.add(candidate, count)
                    current_level.add(candidate)
            size += 1

        elapsed = time.perf_counter() - start
        return MiningResult(
            lattice=lattice,
            min_support=self.min_support,
            algorithm=self.algorithm_name,
            candidates_generated=sum(candidates_per_level.values()),
            candidates_per_level=candidates_per_level,
            database_scans=scans,
            increment_scans=0,
            transactions_read=transactions_read,
            elapsed_seconds=elapsed,
        )


def mine_apriori(
    database: TransactionDatabase,
    min_support: float,
    max_itemset_size: int | None = None,
    options: MiningOptions | CountingBackend | str | None = None,
) -> MiningResult:
    """Convenience wrapper: mine *database* with Apriori at *min_support*."""
    return AprioriMiner(
        min_support, max_itemset_size=max_itemset_size, options=options
    ).mine(database)

"""Mining results: the itemset lattice and the per-run summary.

Every miner in the library (Apriori, DHP, FUP, FUP2) returns a
:class:`MiningResult`.  Its heart is the :class:`ItemsetLattice` — the set of
large itemsets organised by size, with their absolute support counts.  FUP
consumes the lattice of the *previous* mining run as its starting state, so
the lattice also records the database size the counts were measured against;
that is what lets :class:`~repro.core.maintenance.RuleMaintainer` detect stale
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Iterable, Iterator, Mapping

from ..errors import InvalidItemsetError, InvalidThresholdError
from ..itemsets import Itemset, is_canonical, itemset, support_fraction

__all__ = [
    "ItemsetLattice",
    "MiningResult",
    "validate_min_support",
    "required_support_count",
]

#: Tolerance used when converting a relative support threshold into an
#: absolute count.  ``s * D`` computed in floating point can land a hair above
#: the true product (e.g. ``0.03 * 1100 == 33.000000000000004``); without the
#: tolerance an itemset with exactly the threshold count would be rejected.
_THRESHOLD_EPSILON = 1e-9


def required_support_count(min_support: float, database_size: int) -> int:
    """Smallest absolute support count that satisfies ``count >= s * D``.

    This is the paper's largeness test ``X.support >= s × D`` turned into an
    integer threshold, guarded against floating-point round-up.
    """
    if database_size <= 0:
        return 0
    return max(0, ceil(min_support * database_size - _THRESHOLD_EPSILON))


def validate_min_support(min_support: float) -> float:
    """Validate a relative minimum-support threshold (``0 < s <= 1``)."""
    if not isinstance(min_support, (int, float)) or isinstance(min_support, bool):
        raise InvalidThresholdError(f"minimum support must be a number, got {min_support!r}")
    if not 0.0 < float(min_support) <= 1.0:
        raise InvalidThresholdError(
            f"minimum support must be in (0, 1], got {min_support!r}"
        )
    return float(min_support)


class ItemsetLattice:
    """Large itemsets organised by size, with absolute support counts.

    Parameters
    ----------
    supports:
        Mapping from canonical itemset to its support *count* (number of
        transactions containing it).
    database_size:
        Number of transactions the counts were measured against (``D`` or
        ``D + d`` in the paper's notation).
    """

    __slots__ = ("_levels", "_supports", "database_size")

    def __init__(
        self,
        supports: Mapping[Itemset, int] | None = None,
        database_size: int = 0,
    ) -> None:
        self._supports: dict[Itemset, int] = {}
        self._levels: dict[int, set[Itemset]] = {}
        self.database_size = int(database_size)
        if supports:
            for candidate, count in supports.items():
                self.add(candidate, count)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, candidate: Itemset, support_count: int) -> None:
        """Insert (or overwrite) *candidate* with its absolute support count."""
        if not is_canonical(candidate):
            candidate = itemset(candidate)
        if support_count < 0:
            raise InvalidItemsetError(
                f"support count must be non-negative, got {support_count} for {candidate}"
            )
        self._supports[candidate] = int(support_count)
        self._levels.setdefault(len(candidate), set()).add(candidate)

    def discard(self, candidate: Itemset) -> None:
        """Remove *candidate* if present (no error when absent)."""
        if candidate in self._supports:
            del self._supports[candidate]
            level = self._levels.get(len(candidate))
            if level is not None:
                level.discard(candidate)
                if not level:
                    del self._levels[len(candidate)]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, candidate: Itemset) -> bool:
        return candidate in self._supports

    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._supports)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemsetLattice):
            return NotImplemented
        return self._supports == other._supports

    def support_count(self, candidate: Itemset) -> int:
        """Absolute support count of *candidate* (0 when not recorded)."""
        return self._supports.get(candidate, 0)

    def support(self, candidate: Itemset) -> float:
        """Relative support of *candidate* with respect to ``database_size``."""
        return support_fraction(self._supports.get(candidate, 0), self.database_size)

    def level(self, size: int) -> set[Itemset]:
        """Return the set of recorded itemsets of the given *size* (``L_k``)."""
        return set(self._levels.get(size, set()))

    def max_size(self) -> int:
        """Largest itemset size present (0 for an empty lattice)."""
        return max(self._levels) if self._levels else 0

    def sizes(self) -> list[int]:
        """Sorted list of the sizes present in the lattice."""
        return sorted(self._levels)

    def itemsets(self) -> list[Itemset]:
        """All recorded itemsets, sorted by (size, lexicographic order)."""
        return sorted(self._supports, key=lambda candidate: (len(candidate), candidate))

    def supports(self) -> dict[Itemset, int]:
        """A copy of the itemset → support-count mapping."""
        return dict(self._supports)

    def copy(self) -> "ItemsetLattice":
        """Return an independent copy of the lattice."""
        clone = ItemsetLattice(database_size=self.database_size)
        clone._supports = dict(self._supports)
        clone._levels = {size: set(level) for size, level in self._levels.items()}
        return clone

    # ------------------------------------------------------------------ #
    # Invariant checks (used heavily by the test suite)
    # ------------------------------------------------------------------ #
    def violates_downward_closure(self) -> list[Itemset]:
        """Return itemsets that have a missing proper subset (should be empty)."""
        offenders: list[Itemset] = []
        for candidate in self._supports:
            if len(candidate) == 1:
                continue
            for index in range(len(candidate)):
                subset = candidate[:index] + candidate[index + 1 :]
                if subset not in self._supports:
                    offenders.append(candidate)
                    break
        return offenders


@dataclass
class MiningResult:
    """Outcome of one mining (or maintenance) run.

    Attributes
    ----------
    lattice:
        The large itemsets found, with support counts measured against
        ``lattice.database_size`` transactions.
    min_support:
        The relative minimum support threshold used.
    algorithm:
        Short algorithm label (``"apriori"``, ``"dhp"``, ``"fup"``, ...).
    candidates_generated:
        Total number of candidate itemsets whose support was counted against
        a database scan, summed over every iteration.  This is the quantity
        Figure 3 of the paper compares.
    candidates_per_level:
        Breakdown of ``candidates_generated`` per itemset size.
    database_scans:
        Number of full passes over the original database performed.
    increment_scans:
        Number of passes over the increment (0 for the non-incremental miners).
    transactions_read:
        Total transactions touched across all scans (a proxy for I/O).
    elapsed_seconds:
        Wall-clock time of the run.
    """

    lattice: ItemsetLattice
    min_support: float
    algorithm: str
    candidates_generated: int = 0
    candidates_per_level: dict[int, int] = field(default_factory=dict)
    database_scans: int = 0
    increment_scans: int = 0
    transactions_read: int = 0
    elapsed_seconds: float = 0.0

    @property
    def large_itemsets(self) -> list[Itemset]:
        """All large itemsets, sorted by size then lexicographically."""
        return self.lattice.itemsets()

    @property
    def database_size(self) -> int:
        """Number of transactions the result's support counts refer to."""
        return self.lattice.database_size

    def level(self, size: int) -> set[Itemset]:
        """Return ``L_k`` for the given size ``k``."""
        return self.lattice.level(size)

    def support_count(self, candidate: Iterable[int]) -> int:
        """Absolute support count of *candidate* in this result."""
        return self.lattice.support_count(itemset(candidate))

    def support(self, candidate: Iterable[int]) -> float:
        """Relative support of *candidate* in this result."""
        return self.lattice.support(itemset(candidate))

    def summary(self) -> dict[str, float | int | str]:
        """Compact run summary used by the experiment harness reports."""
        return {
            "algorithm": self.algorithm,
            "min_support": self.min_support,
            "database_size": self.database_size,
            "large_itemsets": len(self.lattice),
            "max_itemset_size": self.lattice.max_size(),
            "candidates_generated": self.candidates_generated,
            "database_scans": self.database_scans,
            "increment_scans": self.increment_scans,
            "transactions_read": self.transactions_read,
            "elapsed_seconds": self.elapsed_seconds,
        }

"""Association-rule generation from large itemsets.

The paper (after [1]) decomposes association-rule mining into (1) finding the
large itemsets and (2) generating the rules from them.  FUP solves the
maintenance problem for step (1); this module provides step (2) so that the
library actually delivers maintained *rules*, not just itemsets.

A rule ``X ⇒ Y`` (X, Y disjoint, X ∪ Y large) is *strong* when

* ``support(X ∪ Y) ≥ minsup`` — guaranteed because X ∪ Y is a large itemset,
* ``confidence = support(X ∪ Y) / support(X) ≥ minconf``.

Besides confidence the module computes the standard interestingness measures
(lift, leverage, conviction) as a small extension; they are not part of the
1996 paper but are what a downstream user of a rule-maintenance library
expects to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import InvalidThresholdError
from ..itemsets import Itemset, format_itemset, proper_subsets
from .result import ItemsetLattice

__all__ = [
    "AssociationRule",
    "generate_rules",
    "rule_confidence",
    "rule_lift",
    "rule_leverage",
    "rule_conviction",
]


@dataclass(frozen=True)
class AssociationRule:
    """One association rule ``antecedent ⇒ consequent`` with its statistics.

    ``support`` and ``confidence`` are fractions in ``[0, 1]``;
    ``support_count`` is the absolute number of transactions containing
    ``antecedent ∪ consequent``.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    support_count: int
    lift: float
    leverage: float
    conviction: float

    @property
    def items(self) -> Itemset:
        """The full itemset ``antecedent ∪ consequent`` the rule was derived from."""
        return tuple(sorted(set(self.antecedent) | set(self.consequent)))

    def __str__(self) -> str:
        return (
            f"{format_itemset(self.antecedent)} => {format_itemset(self.consequent)} "
            f"(support={self.support:.4f}, confidence={self.confidence:.4f})"
        )


def rule_confidence(joint_support: float, antecedent_support: float) -> float:
    """``P(Y | X)``: confidence of the rule ``X ⇒ Y``."""
    if antecedent_support <= 0.0:
        return 0.0
    return joint_support / antecedent_support


def rule_lift(joint_support: float, antecedent_support: float, consequent_support: float) -> float:
    """Lift ``P(X ∪ Y) / (P(X)·P(Y))``; 1.0 means independence."""
    denominator = antecedent_support * consequent_support
    if denominator <= 0.0:
        return 0.0
    return joint_support / denominator


def rule_leverage(
    joint_support: float, antecedent_support: float, consequent_support: float
) -> float:
    """Leverage ``P(X ∪ Y) − P(X)·P(Y)``; 0.0 means independence."""
    return joint_support - antecedent_support * consequent_support


def rule_conviction(confidence: float, consequent_support: float) -> float:
    """Conviction ``(1 − P(Y)) / (1 − confidence)``; ``inf`` for exact rules."""
    if confidence >= 1.0:
        return float("inf")
    return (1.0 - consequent_support) / (1.0 - confidence)


def _validate_min_confidence(min_confidence: float) -> float:
    if not isinstance(min_confidence, (int, float)) or isinstance(min_confidence, bool):
        raise InvalidThresholdError(
            f"minimum confidence must be a number, got {min_confidence!r}"
        )
    if not 0.0 < float(min_confidence) <= 1.0:
        raise InvalidThresholdError(
            f"minimum confidence must be in (0, 1], got {min_confidence!r}"
        )
    return float(min_confidence)


def generate_rules(
    lattice: ItemsetLattice,
    min_confidence: float,
    max_consequent_size: int | None = None,
) -> list[AssociationRule]:
    """Derive every strong rule from the large itemsets in *lattice*.

    Parameters
    ----------
    lattice:
        Large itemsets with support counts (output of any miner or of FUP).
    min_confidence:
        Minimum confidence threshold in ``(0, 1]``.
    max_consequent_size:
        Optional cap on the consequent size (``None`` generates every split).

    Returns
    -------
    list[AssociationRule]
        Rules sorted by descending confidence, then descending support.
    """
    min_confidence = _validate_min_confidence(min_confidence)
    rules = list(_iter_rules(lattice, min_confidence, max_consequent_size))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.antecedent))
    return rules


def _iter_rules(
    lattice: ItemsetLattice,
    min_confidence: float,
    max_consequent_size: int | None,
) -> Iterator[AssociationRule]:
    database_size = lattice.database_size
    if database_size <= 0:
        return
    for joint in lattice.itemsets():
        if len(joint) < 2:
            continue
        joint_count = lattice.support_count(joint)
        joint_support = joint_count / database_size
        for antecedent in proper_subsets(joint):
            consequent = tuple(item for item in joint if item not in antecedent)
            if max_consequent_size is not None and len(consequent) > max_consequent_size:
                continue
            antecedent_count = lattice.support_count(antecedent)
            if antecedent_count <= 0:
                # The lattice violates downward closure; skip rather than emit
                # a rule with undefined confidence.
                continue
            confidence = joint_count / antecedent_count
            if confidence < min_confidence:
                continue
            antecedent_support = antecedent_count / database_size
            consequent_support = lattice.support_count(consequent) / database_size
            yield AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=joint_support,
                confidence=confidence,
                support_count=joint_count,
                lift=rule_lift(joint_support, antecedent_support, consequent_support),
                leverage=rule_leverage(joint_support, antecedent_support, consequent_support),
                conviction=rule_conviction(confidence, consequent_support),
            )

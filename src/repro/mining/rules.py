"""Association-rule generation from large itemsets.

The paper (after [1]) decomposes association-rule mining into (1) finding the
large itemsets and (2) generating the rules from them.  FUP solves the
maintenance problem for step (1); this module provides step (2) so that the
library actually delivers maintained *rules*, not just itemsets.

A rule ``X ⇒ Y`` (X, Y disjoint, X ∪ Y large) is *strong* when

* ``support(X ∪ Y) ≥ minsup`` — guaranteed because X ∪ Y is a large itemset,
* ``confidence = support(X ∪ Y) / support(X) ≥ minconf``.

Besides confidence the module computes the standard interestingness measures
(lift, leverage, conviction) as a small extension; they are not part of the
1996 paper but are what a downstream user of a rule-maintenance library
expects to find.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import InvalidThresholdError
from ..itemsets import Itemset, format_itemset, proper_subsets
from .result import ItemsetLattice

__all__ = [
    "AssociationRule",
    "RulesDiff",
    "diff_rules",
    "generate_rules",
    "rule_as_dict",
    "rule_confidence",
    "rule_conviction",
    "rule_from_dict",
    "rule_key",
    "rule_leverage",
    "rule_lift",
    "validate_min_confidence",
]


@dataclass(frozen=True)
class AssociationRule:
    """One association rule ``antecedent ⇒ consequent`` with its statistics.

    ``support`` and ``confidence`` are fractions in ``[0, 1]``;
    ``support_count`` is the absolute number of transactions containing
    ``antecedent ∪ consequent``.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    support_count: int
    lift: float
    leverage: float
    conviction: float

    @property
    def items(self) -> Itemset:
        """The full itemset ``antecedent ∪ consequent`` the rule was derived from."""
        return tuple(sorted(set(self.antecedent) | set(self.consequent)))

    def __str__(self) -> str:
        return (
            f"{format_itemset(self.antecedent)} => {format_itemset(self.consequent)} "
            f"(support={self.support:.4f}, confidence={self.confidence:.4f})"
        )


def rule_key(rule: AssociationRule) -> tuple[Itemset, Itemset]:
    """Identity of a rule — its antecedent/consequent pair, statistics aside.

    Two rule objects with the same key describe the same implication; whether
    their *statistics* agree is a separate question (:func:`diff_rules`
    answers both).
    """
    return (rule.antecedent, rule.consequent)


def rule_as_dict(rule: AssociationRule) -> dict[str, object]:
    """JSON-safe dictionary form of a rule.

    An exact rule's conviction is ``inf``, which ``json.dumps`` renders as the
    bare token ``Infinity`` — not valid JSON, so downstream parsers choke.
    Non-finite statistics are therefore written as strings (``"inf"``), which
    :func:`rule_from_dict` turns back into the float, so the round trip is
    lossless and the payload stays strict JSON.
    """

    def _number(value: float) -> float | str:
        return value if math.isfinite(value) else str(value)

    return {
        "antecedent": list(rule.antecedent),
        "consequent": list(rule.consequent),
        "support": rule.support,
        "confidence": rule.confidence,
        "support_count": rule.support_count,
        "lift": rule.lift,
        "leverage": rule.leverage,
        "conviction": _number(rule.conviction),
    }


def rule_from_dict(payload: dict[str, object]) -> AssociationRule:
    """Inverse of :func:`rule_as_dict` (``float("inf")`` parses the sentinel)."""
    return AssociationRule(
        antecedent=tuple(payload["antecedent"]),  # type: ignore[arg-type]
        consequent=tuple(payload["consequent"]),  # type: ignore[arg-type]
        support=float(payload["support"]),  # type: ignore[arg-type]
        confidence=float(payload["confidence"]),  # type: ignore[arg-type]
        support_count=int(payload["support_count"]),  # type: ignore[arg-type]
        lift=float(payload["lift"]),  # type: ignore[arg-type]
        leverage=float(payload["leverage"]),  # type: ignore[arg-type]
        conviction=float(payload["conviction"]),  # type: ignore[arg-type]
    )


@dataclass(frozen=True)
class RulesDiff:
    """What changed between two rule sets, keyed by :func:`rule_key`.

    ``updated`` holds the rules whose key survived but whose statistics
    drifted, as ``(before, after)`` pairs — the change a key-only comparison
    silently misses.
    """

    added: list[AssociationRule] = field(default_factory=list)
    removed: list[AssociationRule] = field(default_factory=list)
    updated: list[tuple[AssociationRule, AssociationRule]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """True when anything at all differs between the two sets."""
        return bool(self.added or self.removed or self.updated)


def diff_rules(
    old: Iterable[AssociationRule], new: Iterable[AssociationRule]
) -> RulesDiff:
    """Compare two rule sets: appeared, disappeared, and statistics drift.

    A rule counts as *updated* when any field of the (frozen) dataclass
    differs — confidence, support, support count, or any derived measure —
    so a consumer caching rule statistics can rely on ``changed`` being False
    only when the served numbers are identical.  All three lists are sorted
    by rule key, so the diff is deterministic.
    """
    old_by_key = {rule_key(rule): rule for rule in old}
    new_by_key = {rule_key(rule): rule for rule in new}
    diff = RulesDiff(
        added=[new_by_key[key] for key in sorted(new_by_key.keys() - old_by_key.keys())],
        removed=[old_by_key[key] for key in sorted(old_by_key.keys() - new_by_key.keys())],
    )
    for key in sorted(old_by_key.keys() & new_by_key.keys()):
        before, after = old_by_key[key], new_by_key[key]
        if before != after:
            diff.updated.append((before, after))
    return diff


def rule_confidence(joint_support: float, antecedent_support: float) -> float:
    """``P(Y | X)``: confidence of the rule ``X ⇒ Y``."""
    if antecedent_support <= 0.0:
        return 0.0
    return joint_support / antecedent_support


def rule_lift(joint_support: float, antecedent_support: float, consequent_support: float) -> float:
    """Lift ``P(X ∪ Y) / (P(X)·P(Y))``; 1.0 means independence."""
    denominator = antecedent_support * consequent_support
    if denominator <= 0.0:
        return 0.0
    return joint_support / denominator


def rule_leverage(
    joint_support: float, antecedent_support: float, consequent_support: float
) -> float:
    """Leverage ``P(X ∪ Y) − P(X)·P(Y)``; 0.0 means independence."""
    return joint_support - antecedent_support * consequent_support


def rule_conviction(confidence: float, consequent_support: float) -> float:
    """Conviction ``(1 − P(Y)) / (1 − confidence)``; ``inf`` for exact rules."""
    if confidence >= 1.0:
        return float("inf")
    return (1.0 - consequent_support) / (1.0 - confidence)


def validate_min_confidence(min_confidence: float) -> float:
    """Validate and normalise a minimum-confidence threshold.

    The single validator every confidence-accepting entry point routes
    through (:func:`generate_rules`, :class:`~repro.core.maintenance.RuleMaintainer`),
    so they cannot drift apart: booleans are rejected (``True`` is an ``int``
    to ``isinstance`` but never a sensible threshold), as is anything outside
    ``(0, 1]``.
    """
    if not isinstance(min_confidence, (int, float)) or isinstance(min_confidence, bool):
        raise InvalidThresholdError(
            f"minimum confidence must be a number, got {min_confidence!r}"
        )
    if not 0.0 < float(min_confidence) <= 1.0:
        raise InvalidThresholdError(
            f"minimum confidence must be in (0, 1], got {min_confidence!r}"
        )
    return float(min_confidence)


def generate_rules(
    lattice: ItemsetLattice,
    min_confidence: float,
    max_consequent_size: int | None = None,
) -> list[AssociationRule]:
    """Derive every strong rule from the large itemsets in *lattice*.

    Parameters
    ----------
    lattice:
        Large itemsets with support counts (output of any miner or of FUP).
    min_confidence:
        Minimum confidence threshold in ``(0, 1]``.
    max_consequent_size:
        Optional cap on the consequent size (``None`` generates every split).

    Returns
    -------
    list[AssociationRule]
        Rules sorted by descending confidence, then descending support.
    """
    min_confidence = validate_min_confidence(min_confidence)
    rules = list(_iter_rules(lattice, min_confidence, max_consequent_size))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.antecedent))
    return rules


def _iter_rules(
    lattice: ItemsetLattice,
    min_confidence: float,
    max_consequent_size: int | None,
) -> Iterator[AssociationRule]:
    database_size = lattice.database_size
    if database_size <= 0:
        return
    for joint in lattice.itemsets():
        if len(joint) < 2:
            continue
        joint_count = lattice.support_count(joint)
        joint_support = joint_count / database_size
        for antecedent in proper_subsets(joint):
            consequent = tuple(item for item in joint if item not in antecedent)
            if max_consequent_size is not None and len(consequent) > max_consequent_size:
                continue
            antecedent_count = lattice.support_count(antecedent)
            if antecedent_count <= 0:
                # The lattice violates downward closure; skip rather than emit
                # a rule with undefined confidence.
                continue
            confidence = joint_count / antecedent_count
            if confidence < min_confidence:
                continue
            antecedent_support = antecedent_count / database_size
            consequent_support = lattice.support_count(consequent) / database_size
            yield AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=joint_support,
                confidence=confidence,
                support_count=joint_count,
                lift=rule_lift(joint_support, antecedent_support, consequent_support),
                leverage=rule_leverage(joint_support, antecedent_support, consequent_support),
                conviction=rule_conviction(confidence, consequent_support),
            )

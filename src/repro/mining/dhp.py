"""The DHP miner — Direct Hashing and Pruning (Park, Chen & Yu, SIGMOD '95).

DHP is the second baseline the paper re-runs on the updated database.  It
improves on Apriori in two ways:

* **Direct hashing** — while counting the size-1 candidates in the first scan,
  every size-2 subset of each transaction is hashed into a bucket counter.
  When generating ``C_2``, a candidate pair is kept only if its bucket count
  reaches the support threshold; buckets below the threshold prove that every
  pair hashing into them is small.  The paper's experiments use a hash table
  of 100 buckets and apply hashing *only* to size-2 candidate generation
  ("the same policy used in [9]"), and this implementation follows that
  policy by default.
* **Transaction trimming** — during the level-``k`` counting scan, an item is
  kept for the next level only if it appears in at least ``k`` of the
  candidates matched inside that transaction; transactions shorter than
  ``k+1`` items are dropped entirely.  This progressively shrinks the database
  that later scans read.

Both features are instrumented and can be disabled individually, which the
ablation benchmark uses to quantify their contribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations

from ..db.transaction_db import Transaction, TransactionDatabase
from ..itemsets import Itemset
from .backends import (
    BACKEND_NAMES,
    DEFAULT_EXECUTOR,
    DEFAULT_SHARDS,
    EXECUTOR_NAMES,
    KERNEL_NAMES,
    CountingBackend,
    HorizontalBackend,
    make_backend,
)
from .candidates import apriori_gen
from .hash_tree import HashTree
from .result import (
    ItemsetLattice,
    MiningResult,
    required_support_count,
    validate_min_support,
)

__all__ = ["DhpMiner", "DhpOptions", "mine_dhp"]


@dataclass(frozen=True)
class DhpOptions:
    """Feature switches for the DHP miner (defaults follow the paper)."""

    #: Number of buckets in the direct-hashing table (the paper uses 100).
    hash_table_size: int = 100
    #: Apply the hash filter when generating size-2 candidates.
    use_hash_filter: bool = True
    #: Trim items / drop transactions between levels.  Only the horizontal
    #: engine can interleave trimming with the counting scan; other engines
    #: count without trimming (the counts are identical — trimming is a
    #: lossless optimisation).
    use_transaction_trimming: bool = True
    #: Counting engine for the level-k support scans (see
    #: :data:`repro.mining.backends.BACKEND_NAMES`).
    backend: str = HorizontalBackend.name
    #: Partition count used by the ``"partitioned"`` engine.
    shards: int = DEFAULT_SHARDS
    #: Shard executor used by the ``"partitioned"`` engine (``"threads"`` or
    #: the process-parallel ``"processes"``).
    executor: str = DEFAULT_EXECUTOR
    #: Cap on the ``"partitioned"`` engine's concurrent lanes (``None``: one
    #: per shard).
    workers: int | None = None
    #: Bitmap kernel for the vertical counting core (``"bigint"``,
    #: ``"numpy"``, ``"auto"``, or ``None`` for the default).
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.hash_table_size < 1:
            raise ValueError(
                f"hash_table_size must be positive, got {self.hash_table_size}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown counting backend {self.backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.kernel is not None and self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {', '.join(KERNEL_NAMES)}"
            )

    @classmethod
    def from_mining(cls, mining, **overrides) -> "DhpOptions":
        """DHP options carrying a MiningOptions engine selection.

        The single place the engine-selection tuple is projected onto this
        class — new engine knobs are threaded here once instead of at every
        call site.
        """
        return cls(
            backend=mining.backend,
            shards=mining.shards,
            executor=mining.executor,
            workers=mining.workers,
            kernel=mining.kernel,
            **overrides,
        )


def _hash_pair(pair: Itemset, buckets: int) -> int:
    """Hash a size-2 itemset into one of *buckets* buckets.

    The original DHP paper uses ``h(x, y) = (x * 10 + y) mod buckets``; any
    deterministic function works, and this one keeps the classic flavour while
    spreading ids generated by the synthetic workload reasonably well.
    """
    return (pair[0] * 10 + pair[1]) % buckets


class DhpMiner:
    """DHP frequent-itemset miner over a :class:`TransactionDatabase`."""

    algorithm_name = "dhp"

    def __init__(
        self,
        min_support: float,
        options: DhpOptions | None = None,
        max_itemset_size: int | None = None,
        backend: CountingBackend | None = None,
    ) -> None:
        self.min_support = validate_min_support(min_support)
        self.options = options or DhpOptions()
        if max_itemset_size is not None and max_itemset_size < 1:
            raise ValueError(f"max_itemset_size must be positive, got {max_itemset_size}")
        self.max_itemset_size = max_itemset_size
        # An explicit *backend* instance wins over the options-described
        # engine — callers sharing one (stateful) engine across several
        # miners inject it here.
        self.backend = backend if backend is not None else make_backend(
            self.options.backend,
            shards=self.options.shards,
            executor=self.options.executor,
            workers=self.options.workers,
            kernel=self.options.kernel,
        )

    # ------------------------------------------------------------------ #
    def required_count(self, database_size: int) -> int:
        """Absolute support threshold for the given database size."""
        return required_support_count(self.min_support, database_size)

    def mine(self, database: TransactionDatabase) -> MiningResult:
        """Run the DHP level-wise loop and return the large itemsets."""
        start = time.perf_counter()
        database_size = len(database)
        threshold = self.required_count(database_size)
        lattice = ItemsetLattice(database_size=database_size)
        candidates_per_level: dict[int, int] = {}
        scans = 0
        transactions_read = 0
        options = self.options

        # --- scan 1: count items and hash size-2 subsets ---------------- #
        item_counts: dict[int, int] = {}
        bucket_counts = [0] * options.hash_table_size if options.use_hash_filter else []
        working: list[Transaction] = []
        for transaction in database:
            working.append(transaction)
            for item in transaction:
                item_counts[item] = item_counts.get(item, 0) + 1
            if options.use_hash_filter:
                for pair in combinations(transaction, 2):
                    bucket_counts[_hash_pair(pair, options.hash_table_size)] += 1
        scans += 1
        transactions_read += database_size
        candidates_per_level[1] = len(item_counts)

        current_level: set[Itemset] = set()
        for item, count in item_counts.items():
            if count >= threshold:
                candidate = (item,)
                lattice.add(candidate, count)
                current_level.add(candidate)

        # --- levels 2..k ------------------------------------------------ #
        size = 2
        while current_level and (self.max_itemset_size is None or size <= self.max_itemset_size):
            candidates = apriori_gen(current_level)
            if size == 2 and options.use_hash_filter:
                candidates = {
                    candidate
                    for candidate in candidates
                    if bucket_counts[_hash_pair(candidate, options.hash_table_size)] >= threshold
                }
            if not candidates:
                break
            candidates_per_level[size] = len(candidates)

            if self.backend.supports_transaction_pruning:
                tree = HashTree(candidates)
                counts: dict[Itemset, int] = {candidate: 0 for candidate in candidates}
                next_working: list[Transaction] = []
                for transaction in working:
                    matches = tree.subsets_in(transaction)
                    for match in matches:
                        counts[match] += 1
                    if options.use_transaction_trimming:
                        trimmed = _trim_transaction(transaction, matches, size)
                        if trimmed:
                            next_working.append(trimmed)
                    else:
                        next_working.append(transaction)
            else:
                # Engines without a per-transaction loop cannot interleave the
                # trimming, so the working set stays the full database (which
                # also lets index-building engines reuse their cached per-
                # database index).  The supports are identical because trimming
                # only removes provably small items.
                counts = self.backend.count_candidates(database, candidates)
                next_working = working
            scans += 1
            transactions_read += len(working)
            working = next_working

            current_level = set()
            for candidate, count in counts.items():
                if count >= threshold:
                    lattice.add(candidate, count)
                    current_level.add(candidate)
            size += 1

        elapsed = time.perf_counter() - start
        return MiningResult(
            lattice=lattice,
            min_support=self.min_support,
            algorithm=self.algorithm_name,
            candidates_generated=sum(candidates_per_level.values()),
            candidates_per_level=candidates_per_level,
            database_scans=scans,
            increment_scans=0,
            transactions_read=transactions_read,
            elapsed_seconds=elapsed,
        )


def _trim_transaction(
    transaction: Transaction, matches: list[Itemset], size: int
) -> Transaction:
    """DHP transaction trimming after the level-*size* counting pass.

    An item can only contribute to a large (size+1)-itemset if it occurs in at
    least *size* of the size-*size* candidates matched within the transaction
    (every (size+1)-itemset containing the item has ``size`` subsets of size
    ``size`` that contain it).  Items failing the test are removed; a
    transaction that can no longer hold a (size+1)-itemset is dropped.
    """
    if not matches:
        return ()
    occurrence: dict[int, int] = {}
    for match in matches:
        for item in match:
            occurrence[item] = occurrence.get(item, 0) + 1
    kept = tuple(item for item in transaction if occurrence.get(item, 0) >= size)
    if len(kept) <= size:
        return ()
    return kept


def mine_dhp(
    database: TransactionDatabase,
    min_support: float,
    options: DhpOptions | None = None,
    max_itemset_size: int | None = None,
) -> MiningResult:
    """Convenience wrapper: mine *database* with DHP at *min_support*."""
    return DhpMiner(min_support, options=options, max_itemset_size=max_itemset_size).mine(database)

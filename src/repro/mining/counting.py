"""Support-counting passes shared by the miners.

Each function performs one scan over an iterable of transactions and returns
absolute support counts.  The miners keep their own per-run instrumentation
(scan counts, transactions read); these helpers only do the counting so that
Apriori, DHP and FUP cannot drift apart in how a "scan" is defined.

The actual scan machinery lives in the pluggable engines of
:mod:`repro.mining.backends`; the module-level functions here are thin fronts
over a backend (the classic horizontal hash-tree scan by default) kept for
API stability and for callers that do not care which engine runs the scan.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from ..db.transaction_db import TransactionDatabase
from ..itemsets import Item, Itemset
from .backends import CountingBackend, HorizontalBackend, TransactionSource, make_backend
from .hash_tree import HashTree

__all__ = ["count_items", "count_candidates", "count_candidates_with_tree"]

#: Stateless default engine shared by the module-level helpers.
_DEFAULT_BACKEND = HorizontalBackend()


def count_items(
    transactions: Iterable[tuple[Item, ...]],
    backend: CountingBackend | str | None = None,
) -> Counter[Item]:
    """Count per-item occurrences (supports of all 1-itemsets) in one scan."""
    engine = _DEFAULT_BACKEND if backend is None else make_backend(backend)
    return engine.count_items(_as_source(transactions))


def count_candidates(
    transactions: Iterable[tuple[Item, ...]],
    candidates: Iterable[Itemset],
    backend: CountingBackend | str | None = None,
) -> dict[Itemset, int]:
    """Count the support of *candidates* over *transactions*.

    The candidates may be of mixed sizes.  Returns a mapping that contains an
    entry for **every** candidate, including those with zero support —
    callers frequently need the explicit zero.  The optional *backend* picks
    the counting engine (a :class:`~repro.mining.backends.CountingBackend`
    instance or registry name); the default is the horizontal hash-tree scan.
    """
    engine = _DEFAULT_BACKEND if backend is None else make_backend(backend)
    return engine.count_candidates(_as_source(transactions), candidates)


def count_candidates_with_tree(
    transactions: Iterable[tuple[Item, ...]],
    tree: HashTree,
    counts: dict[Itemset, int],
) -> None:
    """Accumulate support counts for the candidates already stored in *tree*.

    Used when the caller wants to interleave counting with other per-transaction
    work (for example DHP's bucket hashing or FUP's transaction trimming) and
    therefore drives the scan loop itself — this variant simply documents the
    shared idiom and keeps it in one place for the simple cases.  It is
    inherently horizontal: interleaving requires visiting transactions one at
    a time, which is exactly what non-horizontal engines avoid.
    """
    for transaction in transactions:
        for match in tree.subsets_in(transaction):
            counts[match] += 1


def _as_source(transactions: Iterable[tuple[Item, ...]]) -> TransactionSource:
    """Backends index their input; materialise one-shot iterators once here.

    Databases and sequences pass through untouched — in particular a
    :class:`TransactionDatabase` must reach the engine as itself so that
    index-building engines can reuse its cached vertical representation.
    """
    if isinstance(transactions, (TransactionDatabase, Sequence)):
        return transactions
    return list(transactions)


def supports_as_fractions(
    counts: Mapping[Itemset, int], database_size: int
) -> dict[Itemset, float]:
    """Convert absolute counts to relative supports."""
    if database_size <= 0:
        return {candidate: 0.0 for candidate in counts}
    return {candidate: count / database_size for candidate, count in counts.items()}

"""Support-counting passes shared by the miners.

Each function performs one scan over an iterable of transactions and returns
absolute support counts.  The miners keep their own per-run instrumentation
(scan counts, transactions read); these helpers only do the counting so that
Apriori, DHP and FUP cannot drift apart in how a "scan" is defined.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from ..itemsets import Item, Itemset
from .hash_tree import HashTree

__all__ = ["count_items", "count_candidates", "count_candidates_with_tree"]


def count_items(transactions: Iterable[tuple[Item, ...]]) -> Counter[Item]:
    """Count per-item occurrences (supports of all 1-itemsets) in one scan."""
    counts: Counter[Item] = Counter()
    for transaction in transactions:
        counts.update(transaction)
    return counts


def count_candidates(
    transactions: Iterable[tuple[Item, ...]],
    candidates: Iterable[Itemset],
) -> dict[Itemset, int]:
    """Count the support of *candidates* over *transactions* using hash trees.

    The candidates may be of mixed sizes (one hash tree is built per size).
    Returns a mapping that contains an entry for **every** candidate, including
    those with zero support — callers frequently need the explicit zero.
    """
    candidate_list = list(candidates)
    counts: dict[Itemset, int] = {candidate: 0 for candidate in candidate_list}
    if not candidate_list:
        return counts
    by_size: dict[int, list[Itemset]] = {}
    for candidate in candidate_list:
        by_size.setdefault(len(candidate), []).append(candidate)
    trees = [HashTree(group) for group in by_size.values()]
    for transaction in transactions:
        for tree in trees:
            for match in tree.subsets_in(transaction):
                counts[match] += 1
    return counts


def count_candidates_with_tree(
    transactions: Iterable[tuple[Item, ...]],
    tree: HashTree,
    counts: dict[Itemset, int],
) -> None:
    """Accumulate support counts for the candidates already stored in *tree*.

    Used when the caller wants to interleave counting with other per-transaction
    work (for example DHP's bucket hashing or FUP's transaction trimming) and
    therefore drives the scan loop itself — this variant simply documents the
    shared idiom and keeps it in one place for the simple cases.
    """
    for transaction in transactions:
        for match in tree.subsets_in(transaction):
            counts[match] += 1


def supports_as_fractions(
    counts: Mapping[Itemset, int], database_size: int
) -> dict[Itemset, float]:
    """Convert absolute counts to relative supports."""
    if database_size <= 0:
        return {candidate: 0.0 for candidate in counts}
    return {candidate: count / database_size for candidate, count in counts.items()}

"""Candidate generation: ``apriori_gen`` and friends.

``apriori_gen`` (Agrawal & Srikant, VLDB '94) takes the large (k−1)-itemsets
``L_{k-1}`` and produces the candidate k-itemsets ``C_k`` in two steps:

1. **Join** — merge every pair of (k−1)-itemsets that share their first k−2
   items, producing a k-itemset.
2. **Prune** — drop any candidate that has a (k−1)-subset not present in
   ``L_{k-1}`` (downward closure: all subsets of a large itemset are large).

FUP reuses the same function but seeds it with the *new* large (k−1)-itemsets
``L'_{k-1}`` and then removes the itemsets already handled in ``L_k``
(paper, Section 3.2 step 2), which is why the join and prune steps are exposed
separately here.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Set

from ..itemsets import Item, Itemset

__all__ = [
    "apriori_gen",
    "join_step",
    "prune_by_subsets",
    "generate_level_one_candidates",
]


def generate_level_one_candidates(items: Iterable[Item]) -> list[Itemset]:
    """Return the size-1 candidate itemsets for the given item universe."""
    return [(item,) for item in sorted(set(items))]


def join_step(previous_level: Set[Itemset]) -> set[Itemset]:
    """Join step of ``apriori_gen``: merge (k−1)-itemsets sharing a (k−2)-prefix."""
    if not previous_level:
        return set()
    by_prefix: dict[Itemset, list[Itemset]] = defaultdict(list)
    for candidate in previous_level:
        by_prefix[candidate[:-1]].append(candidate)
    joined: set[Itemset] = set()
    for prefix, group in by_prefix.items():
        if len(group) < 2:
            continue
        tails = sorted(candidate[-1] for candidate in group)
        for index, first in enumerate(tails):
            for second in tails[index + 1 :]:
                joined.add(prefix + (first, second))
    return joined


def prune_by_subsets(candidates: Iterable[Itemset], previous_level: Set[Itemset]) -> set[Itemset]:
    """Prune step: keep only candidates whose every (k−1)-subset is in *previous_level*."""
    surviving: set[Itemset] = set()
    for candidate in candidates:
        keep = True
        for index in range(len(candidate)):
            subset = candidate[:index] + candidate[index + 1 :]
            if subset not in previous_level:
                keep = False
                break
        if keep:
            surviving.add(candidate)
    return surviving


def apriori_gen(previous_level: Set[Itemset]) -> set[Itemset]:
    """Generate the candidate k-itemsets from the large (k−1)-itemsets.

    This is the ``apriori-gen`` function of [2] that the FUP pseudo-code calls
    directly (``C = apriori-gen(L'_{k-1}) − L_k``).
    """
    return prune_by_subsets(join_step(previous_level), set(previous_level))

"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch every library failure with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidItemsetError(ReproError):
    """An itemset argument is malformed (empty, wrong type, negative item id)."""


class InvalidTransactionError(ReproError):
    """A transaction contains invalid items or cannot be parsed."""


class InvalidThresholdError(ReproError):
    """A support or confidence threshold is outside the valid ``(0, 1]`` range."""


class EmptyDatabaseError(ReproError):
    """An operation that requires transactions was given an empty database."""


class StaleStateError(ReproError):
    """The mined state handed to an incremental update does not match the database.

    FUP requires the support counts of every previously-large itemset measured
    against the *original* database.  If the recorded database size disagrees
    with the state, the update would silently compute wrong supports; we
    refuse instead.
    """


class StorageError(ReproError):
    """A database file could not be read or written."""


class GeneratorConfigError(ReproError):
    """A synthetic-data generator configuration is inconsistent."""


class ExperimentError(ReproError):
    """An experiment harness configuration or execution failure."""


class AnalysisError(ReproError):
    """A static-analysis (``repro lint``) input or configuration failure."""


class PolicyError(ReproError):
    """A maintenance-policy spec, parameter set, or persisted form is invalid."""


class IngestError(ReproError):
    """An event-stream record is malformed or an ingest source is unusable.

    A *torn final record* (the producer died mid-write, so the last line
    never got its newline) is **not** an error — the readers buffer it and
    either complete it on a later poll or report it as the stream's torn
    tail.  This exception covers everything else: unparseable records with
    more data after them, invalid event fields, unknown formats.
    """

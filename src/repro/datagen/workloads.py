"""Named workloads: the paper's ``Tx.Iy.Dm.dn`` databases and scaled variants.

The evaluation section uses a small family of workloads —
``T10.I4.D100.d1`` for Figures 2 and 3, ``T10.I4.D100.dm`` with growing ``m``
for Figure 4 and Section 4.4, and ``T10.I4.D1000.d10`` for the scale-up test
of Section 4.6.  This module turns those names into
:class:`~repro.datagen.synthetic.SyntheticConfig` objects and provides the
*scaled* variants the benchmark harness runs by default so that every figure
regenerates in minutes of pure-Python time (pass ``scale=1.0`` for the paper's
full sizes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import GeneratorConfigError
from .synthetic import SyntheticConfig, SyntheticDataGenerator
from ..db.transaction_db import TransactionDatabase

__all__ = [
    "Workload",
    "parse_workload_name",
    "make_workload",
    "paper_workload",
    "scaled_paper_workload",
    "DEFAULT_BENCH_SCALE",
]

#: Default down-scaling factor applied to the paper's database sizes when the
#: benchmark harness builds a workload.  0.1 turns D100 (100k transactions)
#: into 10k transactions — large enough for the algorithmic trade-offs to show,
#: small enough for pure Python.
DEFAULT_BENCH_SCALE = 0.1

_NAME_PATTERN = re.compile(
    r"^T(?P<t>\d+(?:\.\d+)?)\.I(?P<i>\d+(?:\.\d+)?)\.D(?P<d>\d+(?:\.\d+)?)\.d(?P<n>\d+(?:\.\d+)?)$"
)


@dataclass(frozen=True)
class Workload:
    """A named synthetic workload together with its generated data."""

    name: str
    config: SyntheticConfig
    original: TransactionDatabase
    increment: TransactionDatabase

    @property
    def updated(self) -> TransactionDatabase:
        """The updated database ``DB ∪ db``."""
        return self.original.concatenate(self.increment, name=f"{self.name}.updated")


def parse_workload_name(name: str) -> SyntheticConfig:
    """Parse the paper's ``Tx.Iy.Dm.dn`` notation into a config.

    ``D`` and ``d`` are in thousands of transactions, as in the paper
    (``T10.I4.D100.d1`` means 100,000 transactions plus a 1,000-transaction
    increment).
    """
    match = _NAME_PATTERN.match(name.strip())
    if match is None:
        raise GeneratorConfigError(
            f"workload name {name!r} does not match the Tx.Iy.Dm.dn pattern"
        )
    return SyntheticConfig(
        mean_transaction_size=float(match.group("t")),
        mean_pattern_size=float(match.group("i")),
        database_size=int(round(float(match.group("d")) * 1000)),
        increment_size=int(round(float(match.group("n")) * 1000)),
    )


def make_workload(config: SyntheticConfig, name: str | None = None) -> Workload:
    """Generate the data for *config* and wrap it as a :class:`Workload`."""
    original, increment = SyntheticDataGenerator(config).generate()
    return Workload(
        name=name or config.name,
        config=config,
        original=original,
        increment=increment,
    )


def paper_workload(name: str, seed: int | None = None) -> Workload:
    """Build a paper workload at its full published size (e.g. ``T10.I4.D100.d1``)."""
    config = parse_workload_name(name)
    if seed is not None:
        config = SyntheticConfig(**{**config.__dict__, "seed": seed})
    return make_workload(config, name=name)


def scaled_paper_workload(
    name: str,
    scale: float = DEFAULT_BENCH_SCALE,
    seed: int | None = None,
    item_count: int | None = None,
    pattern_count: int | None = None,
) -> Workload:
    """Build a paper workload with its transaction counts scaled by *scale*.

    Only the database and increment sizes are scaled; the per-transaction
    statistics (``|T|``, ``|I|``) stay at the paper's values so the relative
    behaviour of the algorithms is preserved.  The item universe and pattern
    pool can optionally be shrunk too, which keeps the number of large
    itemsets (and hence the mining workload) proportionate at small scales.
    """
    if scale <= 0:
        raise GeneratorConfigError(f"scale must be positive, got {scale}")
    config = parse_workload_name(name)
    updates: dict[str, object] = {
        "database_size": max(1, int(round(config.database_size * scale))),
        "increment_size": max(1, int(round(config.increment_size * scale))) if config.increment_size else 0,
    }
    if seed is not None:
        updates["seed"] = seed
    if item_count is not None:
        updates["item_count"] = item_count
    if pattern_count is not None:
        updates["pattern_count"] = pattern_count
    scaled = SyntheticConfig(**{**config.__dict__, **updates})
    label = f"{name}@x{scale:g}"
    return make_workload(scaled, name=label)

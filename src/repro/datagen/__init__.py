"""Synthetic transaction data in the style of the paper's Section 4.1.

The paper generates its workloads with the IBM Quest technique introduced in
Agrawal & Srikant (VLDB '94) and modified by Park, Chen & Yu (SIGMOD '95):
a pool of "potentially large itemsets" is drawn first, and every transaction
is filled by picking itemsets from that pool (with corruption), so that the
data contains genuine correlations for the miners to find.  The increment
``db`` is created exactly as the paper describes — a database of ``D + d``
transactions is generated and the first ``D`` become ``DB`` while the last
``d`` become ``db`` — so the increment follows the same statistical pattern
as the original database.
"""

from .patterns import PatternPool, PotentialItemset
from .synthetic import SyntheticConfig, SyntheticDataGenerator, generate_database
from .workloads import (
    Workload,
    make_workload,
    parse_workload_name,
    paper_workload,
    scaled_paper_workload,
)

__all__ = [
    "PatternPool",
    "PotentialItemset",
    "SyntheticConfig",
    "SyntheticDataGenerator",
    "generate_database",
    "Workload",
    "make_workload",
    "parse_workload_name",
    "paper_workload",
    "scaled_paper_workload",
]

"""The pool of potentially large itemsets (the "pattern pool" of the Quest model).

In the Quest synthetic-data model the correlations planted in the data come
from a pool of *potentially large itemsets*: each pool member is an itemset
whose items tend to be bought together, with a weight that controls how often
it seeds a transaction and a corruption level that controls how often only a
part of it makes it into a transaction.  Consecutive pool members share a
fraction of their items (controlled by the clustering behaviour), which is
what produces the overlapping itemset structure real market-basket data has.

The paper uses ``|L| = 2000`` potentially large itemsets over ``N = 1000``
items, with a clustering size ``S_c = 5``, a pool size ``P_s = 50`` and a
multiplying factor ``M_f = 2000`` (Section 4.1); those knobs are surfaced in
:class:`~repro.datagen.synthetic.SyntheticConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import GeneratorConfigError
from ..itemsets import Item, Itemset

__all__ = ["PotentialItemset", "PatternPool"]


@dataclass(frozen=True)
class PotentialItemset:
    """One member of the pool of potentially large itemsets."""

    items: Itemset
    weight: float
    corruption: float

    def __post_init__(self) -> None:
        if not self.items:
            raise GeneratorConfigError("a potential itemset cannot be empty")
        if self.weight < 0:
            raise GeneratorConfigError(f"weight must be non-negative, got {self.weight}")
        if not 0.0 <= self.corruption < 1.0:
            raise GeneratorConfigError(
                f"corruption must be in [0, 1), got {self.corruption}"
            )


class PatternPool:
    """Builds and samples the pool of potentially large itemsets.

    Parameters
    ----------
    rng:
        The random generator driving the whole synthesis (one generator per
        database keeps runs reproducible from a single seed).
    item_count:
        Number of distinct items ``N``.
    pool_size:
        Number of potentially large itemsets ``|L|``.
    mean_pattern_size:
        Mean size ``|I|`` of the potentially large itemsets (Poisson
        distributed, at least one item).
    correlation:
        Fraction of items a pattern re-uses from its predecessor, which
        produces the clustered / overlapping structure of the Quest model.
    corruption_mean, corruption_deviation:
        Parameters of the per-pattern corruption level (normal, clamped to
        ``[0, 1)``): when a pattern is planted into a transaction, each run of
        items may be cut short with this probability.
    item_skew:
        Skew of the item-popularity distribution used when drawing pattern
        items.  ``0.0`` selects items uniformly (the plain Quest behaviour);
        larger values bias selection toward low item ids, producing the
        Zipf-like head-heavy item supports real market-basket data shows —
        which is what gives the support sweep of the paper's Figure 2 its
        shape (some itemsets are still large at a 6 % threshold while the
        bulk of the tail stays small at 0.75 %).
    """

    def __init__(
        self,
        rng: random.Random,
        item_count: int,
        pool_size: int,
        mean_pattern_size: float,
        correlation: float = 0.5,
        corruption_mean: float = 0.5,
        corruption_deviation: float = 0.1,
        item_skew: float = 0.0,
    ) -> None:
        if item_count < 1:
            raise GeneratorConfigError(f"item_count must be positive, got {item_count}")
        if pool_size < 1:
            raise GeneratorConfigError(f"pool_size must be positive, got {pool_size}")
        if mean_pattern_size < 1:
            raise GeneratorConfigError(
                f"mean_pattern_size must be at least 1, got {mean_pattern_size}"
            )
        if not 0.0 <= correlation <= 1.0:
            raise GeneratorConfigError(f"correlation must be in [0, 1], got {correlation}")
        if item_skew < 0.0:
            raise GeneratorConfigError(f"item_skew must be non-negative, got {item_skew}")
        self._rng = rng
        self._item_count = item_count
        self._item_skew = item_skew
        self.patterns: list[PotentialItemset] = []
        self._cumulative_weights: list[float] = []
        self._build(pool_size, mean_pattern_size, correlation, corruption_mean, corruption_deviation)

    # ------------------------------------------------------------------ #
    def _build(
        self,
        pool_size: int,
        mean_pattern_size: float,
        correlation: float,
        corruption_mean: float,
        corruption_deviation: float,
    ) -> None:
        rng = self._rng
        previous_items: Itemset = ()
        # Exponentially distributed weights, normalised afterwards — this is
        # the Quest model's way of making a few patterns dominate.
        raw_weights = [rng.expovariate(1.0) for _ in range(pool_size)]
        total_weight = sum(raw_weights) or 1.0

        for index in range(pool_size):
            size = max(1, self._poisson(mean_pattern_size))
            size = min(size, self._item_count)
            items: set[Item] = set()
            if previous_items and correlation > 0.0:
                reuse = min(len(previous_items), int(round(correlation * size)))
                if reuse:
                    items.update(rng.sample(previous_items, reuse))
            while len(items) < size:
                items.add(self._draw_item())
            corruption = rng.gauss(corruption_mean, corruption_deviation)
            corruption = min(max(corruption, 0.0), 0.99)
            pattern = PotentialItemset(
                items=tuple(sorted(items)),
                weight=raw_weights[index] / total_weight,
                corruption=corruption,
            )
            self.patterns.append(pattern)
            previous_items = pattern.items

        running = 0.0
        for pattern in self.patterns:
            running += pattern.weight
            self._cumulative_weights.append(running)

    def _draw_item(self) -> Item:
        """Draw one item id, biased toward low ids when ``item_skew`` > 0."""
        uniform = self._rng.random()
        if self._item_skew <= 0.0:
            return int(uniform * self._item_count)
        skewed = uniform ** (1.0 + self._item_skew)
        return min(self._item_count - 1, int(skewed * self._item_count))

    def _poisson(self, mean: float) -> int:
        """Sample a Poisson variate with the library's ``random.Random`` only."""
        # Knuth's algorithm is fine for the small means used here (2-8).
        limit = pow(2.718281828459045, -mean)
        product = 1.0
        count = 0
        while True:
            product *= self._rng.random()
            if product <= limit:
                return count
            count += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.patterns)

    def sample(self) -> PotentialItemset:
        """Draw one pattern with probability proportional to its weight."""
        point = self._rng.random() * self._cumulative_weights[-1]
        low, high = 0, len(self._cumulative_weights) - 1
        while low < high:
            middle = (low + high) // 2
            if self._cumulative_weights[middle] < point:
                low = middle + 1
            else:
                high = middle
        return self.patterns[low]

    def planted_items(self, pattern: PotentialItemset) -> list[Item]:
        """Items of *pattern* that survive corruption for one transaction."""
        items = list(pattern.items)
        # Quest-style corruption: keep dropping items while a coin toss stays
        # below the pattern's corruption level.
        while items and self._rng.random() < pattern.corruption:
            items.pop(self._rng.randrange(len(items)))
        return items

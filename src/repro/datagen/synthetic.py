"""The Tx.Iy.Dm.dn synthetic database generator.

The configuration mirrors Table 1 of the paper:

========  =====================================================
``|D|``   number of transactions in the database ``DB``
``|d|``   number of transactions in the increment ``db``
``|T|``   mean size of the transactions
``|I|``   mean size of the maximal potentially large itemsets
``|L|``   number of potentially large itemsets (paper: 2000)
``N``     number of items (paper: 1000)
========  =====================================================

plus the secondary Quest parameters the paper lists in Section 4.1
(``S_c = 5`` clustering size, ``P_s = 50`` pool size for transaction filling,
``M_f = 2000`` multiplying factor).  The increment is produced exactly the way
the paper describes: a database of ``D + d`` transactions is generated in one
run, the first ``D`` transactions become ``DB`` and the remaining ``d`` become
``db``, so both parts follow the same statistical pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..db.transaction_db import Transaction, TransactionDatabase
from ..errors import GeneratorConfigError
from .patterns import PatternPool

__all__ = ["SyntheticConfig", "SyntheticDataGenerator", "generate_database"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic workload (paper Table 1 + Section 4.1)."""

    #: Number of transactions in the original database ``DB``.
    database_size: int = 10_000
    #: Number of transactions in the increment ``db``.
    increment_size: int = 1_000
    #: Mean transaction size ``|T|``.
    mean_transaction_size: float = 10.0
    #: Mean size ``|I|`` of the maximal potentially large itemsets.
    mean_pattern_size: float = 4.0
    #: Number of potentially large itemsets ``|L|`` (paper: 2000).
    pattern_count: int = 2_000
    #: Number of items ``N`` (paper: 1000).
    item_count: int = 1_000
    #: Clustering size ``S_c`` — how strongly consecutive patterns overlap.
    clustering_size: int = 5
    #: Pool size ``P_s`` — patterns drawn per transaction-filling window.
    pool_size: int = 50
    #: Multiplying factor ``M_f`` associated with the pool.
    multiplying_factor: int = 2_000
    #: Skew of the item-popularity distribution (0 = uniform, larger values
    #: give the Zipf-like head-heavy supports real basket data exhibits).
    item_skew: float = 1.0
    #: Seed for reproducible generation.
    seed: int = 19960226  # the first day of ICDE 1996

    def __post_init__(self) -> None:
        if self.database_size < 0:
            raise GeneratorConfigError(f"database_size must be >= 0, got {self.database_size}")
        if self.increment_size < 0:
            raise GeneratorConfigError(f"increment_size must be >= 0, got {self.increment_size}")
        if self.mean_transaction_size < 1:
            raise GeneratorConfigError(
                f"mean_transaction_size must be >= 1, got {self.mean_transaction_size}"
            )
        if self.mean_pattern_size < 1:
            raise GeneratorConfigError(
                f"mean_pattern_size must be >= 1, got {self.mean_pattern_size}"
            )
        if self.pattern_count < 1:
            raise GeneratorConfigError(f"pattern_count must be >= 1, got {self.pattern_count}")
        if self.item_count < 1:
            raise GeneratorConfigError(f"item_count must be >= 1, got {self.item_count}")
        if self.clustering_size < 1:
            raise GeneratorConfigError(f"clustering_size must be >= 1, got {self.clustering_size}")
        if self.pool_size < 1:
            raise GeneratorConfigError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.item_skew < 0:
            raise GeneratorConfigError(f"item_skew must be >= 0, got {self.item_skew}")

    @property
    def name(self) -> str:
        """The paper's ``Tx.Iy.Dm.dn`` notation (sizes in thousands where possible)."""
        return (
            f"T{self.mean_transaction_size:g}."
            f"I{self.mean_pattern_size:g}."
            f"D{_kilo(self.database_size)}."
            f"d{_kilo(self.increment_size)}"
        )

    def with_increment_size(self, increment_size: int) -> "SyntheticConfig":
        """Return a copy with a different increment size (same seed and pool)."""
        return replace(self, increment_size=increment_size)

    def with_database_size(self, database_size: int) -> "SyntheticConfig":
        """Return a copy with a different database size (same seed and pool)."""
        return replace(self, database_size=database_size)


def _kilo(count: int) -> str:
    """Render a transaction count the way the paper's workload names do."""
    if count and count % 1000 == 0:
        return str(count // 1000)
    return f"{count / 1000:g}"


class SyntheticDataGenerator:
    """Generates ``(DB, db)`` pairs from a :class:`SyntheticConfig`.

    The generator is deterministic given the config (including its seed), so
    every benchmark run sees the same data and the paper-style comparisons are
    apples-to-apples across algorithms.
    """

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._pool = PatternPool(
            rng=self._rng,
            item_count=config.item_count,
            pool_size=config.pattern_count,
            mean_pattern_size=config.mean_pattern_size,
            correlation=min(1.0, config.clustering_size / max(config.mean_pattern_size * 2, 1.0)),
            item_skew=config.item_skew,
        )

    # ------------------------------------------------------------------ #
    def generate(self) -> tuple[TransactionDatabase, TransactionDatabase]:
        """Generate the ``(DB, db)`` pair for the configured workload.

        A single stream of ``D + d`` transactions is produced and split, as in
        the paper ("the first D transactions are stored in the database DB and
        the remaining d transactions is stored in the increment db").
        """
        config = self.config
        total = config.database_size + config.increment_size
        transactions = [self._transaction() for _ in range(total)]
        original = TransactionDatabase(name=config.name)
        original_list = transactions[: config.database_size]
        increment_list = transactions[config.database_size:]
        original_transactions = original
        original_transactions.extend(original_list)
        increment = TransactionDatabase(name=f"{config.name}.increment")
        increment.extend(increment_list)
        return original_transactions, increment

    def generate_updated(self) -> TransactionDatabase:
        """Generate the full updated database ``DB ∪ db`` in one piece."""
        original, increment = self.generate()
        return original.concatenate(increment, name=f"{self.config.name}.updated")

    # ------------------------------------------------------------------ #
    def _transaction(self) -> Transaction:
        """Fill one transaction from the pattern pool (Quest model)."""
        config = self.config
        rng = self._rng
        # Transaction size: Poisson around |T|, at least one item, capped by N.
        size = max(1, self._poisson(config.mean_transaction_size))
        size = min(size, config.item_count)
        items: set[int] = set()
        # Keep planting (possibly corrupted) patterns until the transaction is
        # full; an overshooting pattern is admitted with 50% probability, as in
        # the Quest description, otherwise it is dropped and filling stops.
        while len(items) < size:
            pattern = self._pool.sample()
            planted = self._pool.planted_items(pattern)
            if not planted:
                continue
            if len(items) + len(planted) > size:
                if rng.random() < 0.5:
                    items.update(planted[: size - len(items)])
                break
            items.update(planted)
        if not items:
            items.add(rng.randrange(config.item_count))
        return tuple(sorted(items))

    def _poisson(self, mean: float) -> int:
        limit = pow(2.718281828459045, -mean)
        product = 1.0
        count = 0
        while True:
            product *= self._rng.random()
            if product <= limit:
                return count
            count += 1


def generate_database(config: SyntheticConfig) -> tuple[TransactionDatabase, TransactionDatabase]:
    """Convenience wrapper: generate ``(DB, db)`` for *config*."""
    return SyntheticDataGenerator(config).generate()

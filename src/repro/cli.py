"""Command-line interface for the library.

The CLI covers the workflows a user of the original system would run from a
shell, each as a subcommand:

``generate``
    Produce a synthetic ``Tx.Iy.Dm.dn`` workload (Table 1 parameters) and
    write the database and increment to files.
``mine``
    Mine the large itemsets (and optionally the rules) of a transaction file
    with Apriori or DHP and write the itemsets to a state file.
``update``
    Apply an increment file to a database file with FUP, starting from a
    previously saved state file, and report what changed.
``rules``
    Derive the strong association rules from a saved itemset state file.
``compare``
    Run the paper's three-way comparison (FUP vs. re-running Apriori and DHP)
    on a database + increment pair and print the Figure-2/3 style numbers.
``maintain``
    Drive a multi-batch maintenance session: mine the database, split the
    increment (and, optionally, a deletion file) into ``--batches`` update
    batches, apply them one by one through the :class:`RuleMaintainer` and
    print the per-batch cost and state churn — the same scenario the
    maintenance-session benchmark measures, against any workload.
``reproduce``
    Run the declarative paper-reproduction experiment matrix (FUP/FUP2 vs.
    re-running Apriori/DHP across increment sizes × support thresholds ×
    counting engines/executors), print the speedup tables and charts, write
    ``BENCH_reproduction.json``, and maintain the generated block of
    ``docs/reproduction.md`` (``--update-docs`` / ``--check-docs``).
``docs``
    Render the CLI reference (``docs/cli.md``) from this very argparse tree,
    or ``--check`` the committed file for drift (the CI docs job does).
``serve``
    Serve the maintained rules over HTTP (``/rules``, ``/recommend``,
    ``/itemset``, ``/health``): either mine a transaction file and serve the
    result, or serve from a durable session directory — polling it (without
    the writer lock) so batches applied by other processes show up as new
    snapshot versions while the server keeps answering.  ``--frontend``
    picks the transport: ``threaded`` (stdlib, one thread per connection)
    or ``async`` (one asyncio event loop, keep-alive + batched ``POST
    /recommend``, a version-keyed response cache via ``--cache-size``,
    per-client token-bucket rate limiting via ``--rate-limit`` /
    ``--rate-burst``, and bounded-connection backpressure via
    ``--max-connections``).
``snapshot inspect | migrate``
    Operate on binary snapshot files: ``inspect`` prints the header fields of
    a v1 or v2 snapshot without loading the transactions (exit 2 on a corrupt
    or unrecognised file); ``migrate`` rewrites a v1 record-stream snapshot as
    the memory-mappable v2 format with the lane section included, so serving
    tiers reopen it in O(1).
``ingest``
    Stream intake events (JSONL or CSV: client key + operation +
    transaction) into an existing session with idempotent at-least-once
    delivery: events are micro-batched on count/time watermarks, each key
    is applied at most once (deduplicated through the durable intake
    ledger), and a crashed producer can simply replay its whole stream.
    Reads a file, stdin, or — with ``--follow`` — a file another process
    is appending to, tolerating a torn final record.
``pipeline``
    Compose ingest → maintain → serve over one session directory: the same
    intake loop, with the rule store subscribed to the session's
    maintainer so every applied micro-batch republishes the served
    snapshot immediately (no polling lag), and an HTTP front end
    (``--frontend threaded|async``) answering ``/rules``, ``/recommend``
    and ``/health`` the whole time.
``session init | apply | status | checkpoint``
    The durable flavour of ``maintain``: a
    :class:`~repro.core.session.MaintenanceSession` persisted to a session
    directory.  ``init`` mines a database into a fresh session; ``apply``
    reopens the session (recovering from any crash by strict journal
    replay), applies insertion/deletion files in batches and exits —
    process death between invocations loses nothing; ``status`` reports the
    on-disk state without replaying; ``checkpoint`` compacts the journal
    into a fresh snapshot.

All files use the plain-text transaction format (one transaction per line,
items as space-separated integers), so the CLI interoperates with the common
frequent-itemset benchmark datasets.  Itemset state files are JSON.

Run ``python -m repro.cli --help`` for the full usage.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from . import __version__
from .core.fup import FupUpdater
from .core.maintenance import RuleMaintainer
from .core.options import FupOptions
from .core.policy import SkipEstimator, parse_policy
from .core.session import (
    DEFAULT_CHECKPOINT_INTERVAL,
    MaintenanceSession,
    load_state,
    save_state,
)
from .datagen.synthetic import SyntheticConfig, SyntheticDataGenerator
from .db.store import (
    inspect_snapshot,
    load_database,
    migrate_snapshot,
    save_database,
)
from .db.transaction_db import shard_bounds
from .db.update import UpdateBatch
from .errors import ReproError
from .harness.reporting import format_table
from .ingest import DEFAULT_BATCH_EVENTS, FORMAT_NAMES
from .harness.runner import compare_update_strategies
from .mining.apriori import AprioriMiner
from .mining.backends import (
    BACKEND_NAMES,
    DEFAULT_SHARDS,
    EXECUTOR_NAMES,
    KERNEL_NAMES,
    MiningOptions,
)
from .mining.dhp import DhpMiner, DhpOptions
from .mining.rules import generate_rules

__all__ = ["main", "build_parser"]


# save_state / load_state live in repro.core.session; re-exported here
# because the state files are a CLI-facing format.


def _batched_updates(insertions, deletions, batches, label):
    """Split insertion/deletion databases into update batches.

    Each side is sliced into *batches* balanced contiguous chunks (via
    :func:`shard_bounds`); *label* maps the batch index to its label.  Shared
    by ``maintain`` and ``session apply`` so their splitting semantics cannot
    drift apart.
    """
    insert_bounds = shard_bounds(len(insertions), batches) if insertions else []
    delete_bounds = shard_bounds(len(deletions), batches) if deletions else []
    for index in range(max(len(insert_bounds), len(delete_bounds))):
        yield UpdateBatch.from_iterables(
            insertions=(
                insertions.transactions()[slice(*insert_bounds[index])]
                if index < len(insert_bounds)
                else ()
            ),
            deletions=(
                deletions.transactions()[slice(*delete_bounds[index])]
                if index < len(delete_bounds)
                else ()
            ),
            label=label(index),
        )


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        database_size=args.database_size,
        increment_size=args.increment_size,
        mean_transaction_size=args.transaction_size,
        mean_pattern_size=args.pattern_size,
        pattern_count=args.patterns,
        item_count=args.items,
        seed=args.seed,
    )
    original, increment = SyntheticDataGenerator(config).generate()
    save_database(original, args.database)
    print(f"wrote {len(original)} transactions to {args.database}")
    if args.increment:
        save_database(increment, args.increment)
        print(f"wrote {len(increment)} transactions to {args.increment}")
    return 0


def _mining_options(args: argparse.Namespace) -> MiningOptions:
    """The engine selection of the shared --backend/--shards/--executor flags."""
    return MiningOptions(
        backend=args.backend,
        shards=args.shards,
        executor=args.executor,
        workers=args.workers,
        kernel=args.kernel,
    )


def _fup_options(args: argparse.Namespace) -> FupOptions:
    """The same engine selection as FUP feature switches."""
    return FupOptions.from_mining(_mining_options(args))


def _make_miner(name: str, min_support: float, mining: MiningOptions):
    if name == "dhp":
        return DhpMiner(min_support, options=DhpOptions.from_mining(mining))
    return AprioriMiner(min_support, options=mining)


def _cmd_mine(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    result = _make_miner(
        args.algorithm, args.min_support, _mining_options(args)
    ).mine(database)
    print(
        f"{result.algorithm}: {len(result.lattice)} large itemsets "
        f"(max size {result.lattice.max_size()}) from {len(database)} transactions "
        f"in {result.elapsed_seconds:.3f}s"
    )
    if args.state:
        save_state(result, args.state)
        print(f"wrote itemset state to {args.state}")
    if args.min_confidence is not None:
        rules = generate_rules(result.lattice, args.min_confidence)
        print(f"{len(rules)} strong rules at confidence >= {args.min_confidence}")
        for rule in rules[: args.top]:
            print(f"  {rule}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    original = load_database(args.database)
    increment = load_database(args.increment)
    lattice, min_support = load_state(args.state)
    options = _fup_options(args)
    result = FupUpdater(min_support, options=options).update(original, lattice, increment)

    before = set(lattice.itemsets())
    after = set(result.lattice.itemsets())
    print(
        f"fup: updated {len(original)} + {len(increment)} transactions in "
        f"{result.elapsed_seconds:.3f}s; {len(result.lattice)} large itemsets "
        f"({len(after - before)} new, {len(before - after)} no longer large)"
    )
    if args.out_state:
        save_state(result, args.out_state)
        print(f"wrote updated itemset state to {args.out_state}")
    if args.out_database:
        save_database(original.concatenate(increment), args.out_database)
        print(f"wrote updated database to {args.out_database}")
    return 0


def _session_policy_overrides(session, args: argparse.Namespace) -> None:
    """Apply ``--policy`` / ``--skip-check`` overrides to an opened session.

    Flags left alone keep whatever the session manifest says; a passed flag
    durably switches the setting (``--policy unbounded`` resets the policy).
    """
    if args.policy is None and not args.skip_check:
        return
    session.set_policy(
        parse_policy(args.policy) if args.policy is not None else None,
        skip_check=True if args.skip_check else None,
    )


def _print_policy_summary(maintainer: RuleMaintainer, evicted: int, skipped: int) -> None:
    """One policy/skip line after a maintain or apply run (when informative)."""
    if maintainer.policy.name != "unbounded" or maintainer.skip_estimator is not None:
        line = f"policy: {maintainer.policy.describe()}"
        if evicted:
            line += f", {evicted} transaction(s) evicted"
        if maintainer.skip_estimator is not None:
            stats = maintainer.skip_estimator.stats
            line += (
                f"; skip-check: {stats.rounds_skipped}/{stats.rounds_checked} "
                f"round(s) skipped"
            )
        elif skipped:
            line += f"; {skipped} round(s) skipped"
        print(line)


def _cmd_maintain(args: argparse.Namespace) -> int:
    original = load_database(args.database)
    increment = load_database(args.increment)
    deletions = load_database(args.deletions) if args.deletions else None

    maintainer = RuleMaintainer(
        args.min_support,
        args.min_confidence,
        miner=args.miner,
        fup_options=_fup_options(args),
        policy=parse_policy(args.policy),
        skip_estimator=SkipEstimator() if args.skip_check else None,
    )
    began = time.perf_counter()
    maintainer.initialise(original)
    initial_seconds = time.perf_counter() - began

    rows: list[dict[str, object]] = []
    total_seconds = 0.0
    evicted_total = 0
    skipped_total = 0
    for batch in _batched_updates(
        increment, deletions, args.batches, label=lambda index: f"batch-{index}"
    ):
        began = time.perf_counter()
        report = maintainer.apply(batch)
        seconds = time.perf_counter() - began
        total_seconds += seconds
        evicted_total += report.evicted_transactions
        skipped_total += report.skipped
        rows.append(
            {
                "batch": report.batch_label,
                "algorithm": report.algorithm,
                "seconds": round(seconds, 4),
                "size": report.database_size,
                "itemsets +/-": f"+{len(report.itemsets_added)}/-{len(report.itemsets_removed)}",
                "rules +/-/~": f"+{len(report.rules_added)}/-{len(report.rules_removed)}/~{len(report.rules_updated)}",
            }
        )
    print(
        format_table(
            rows,
            title=(
                f"maintenance session: {len(rows)} batches over {args.database} "
                f"(initial {args.miner} mine: {initial_seconds:.3f}s)"
            ),
        )
    )
    print(
        f"applied {maintainer.update_log.total_insertions} insertions and "
        f"{maintainer.update_log.total_deletions} deletions in {total_seconds:.3f}s; "
        f"{len(maintainer.large_itemsets)} large itemsets, {len(maintainer.rules)} rules"
    )
    _print_policy_summary(maintainer, evicted_total, skipped_total)
    if args.out_state:
        save_state(maintainer.result, args.out_state)
        print(f"wrote final itemset state to {args.out_state}")
    return 0


def _cmd_session_init(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    with MaintenanceSession.create(
        args.session_dir,
        database,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        miner=args.miner,
        fup_options=_fup_options(args),
        checkpoint_interval=args.checkpoint_interval,
        policy=parse_policy(args.policy),
        skip_check=args.skip_check,
    ) as session:
        status = session.status()
    print(
        f"initialised session in {args.session_dir}: {status.database_size} "
        f"transactions, {status.itemsets} large itemsets, {status.rules} rules "
        f"(checkpoint every {status.checkpoint_interval} batches)"
    )
    if status.policy != "unbounded" or status.skip is not None:
        skip_note = "" if status.skip is None else "; skip-check on"
        print(f"policy: {status.policy}{skip_note}")
    return 0


def _cmd_session_apply(args: argparse.Namespace) -> int:
    insertions = load_database(args.insertions) if args.insertions else None
    deletions = load_database(args.deletions) if args.deletions else None
    if insertions is None and deletions is None:
        print("error: session apply needs --insertions and/or --deletions", file=sys.stderr)
        return 2
    with MaintenanceSession.open(args.session_dir) as session:
        recovered = session.pending_batches
        _session_policy_overrides(session, args)
        start_seq = session.applied_seq
        rows: list[dict[str, object]] = []
        total_seconds = 0.0
        evicted_total = 0
        skipped_total = 0
        for batch in _batched_updates(
            insertions,
            deletions,
            args.batches,
            label=lambda index: args.label or f"batch-{start_seq + index + 1}",
        ):
            began = time.perf_counter()
            report = session.apply(batch)
            seconds = time.perf_counter() - began
            total_seconds += seconds
            evicted_total += report.evicted_transactions
            skipped_total += report.skipped
            rows.append(
                {
                    "seq": session.applied_seq,
                    "algorithm": report.algorithm,
                    "seconds": round(seconds, 4),
                    "size": report.database_size,
                    "itemsets +/-": f"+{len(report.itemsets_added)}/-{len(report.itemsets_removed)}",
                    "rules +/-/~": f"+{len(report.rules_added)}/-{len(report.rules_removed)}"
                    f"/~{len(report.rules_updated)}",
                }
            )
        status = session.status()
        maintainer = session.maintainer
    print(
        format_table(
            rows,
            title=(
                f"session {args.session_dir}: applied {len(rows)} batch(es) "
                f"in {total_seconds:.3f}s (journal replayed {recovered} on open)"
            ),
        )
    )
    print(
        f"now at batch {status.applied_seq} (checkpoint {status.checkpoint_seq}, "
        f"{status.pending_batches} journaled); {status.database_size} transactions, "
        f"{status.itemsets} itemsets, {status.rules} rules"
    )
    _print_policy_summary(maintainer, evicted_total, skipped_total)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .serve import AsyncRuleServer, RuleServer, RuleStore, SessionFeed

    if bool(args.session) == bool(args.database):
        print(
            "error: serve needs exactly one of --session DIR or a database file",
            file=sys.stderr,
        )
        return 2
    if args.frontend != "async":
        # Cache, rate limiting and the connection bound are features of the
        # asyncio front end; silently accepting them for the threaded one
        # would make the limits *look* applied.
        async_only = [
            flag
            for flag, value in (
                ("--cache-size", args.cache_size),
                ("--rate-limit", args.rate_limit),
                ("--rate-burst", args.rate_burst),
                ("--max-connections", args.max_connections),
            )
            if value is not None
        ]
        if async_only:
            print(
                f"error: {', '.join(async_only)} only apply to the asyncio "
                f"front end; add --frontend async",
                file=sys.stderr,
            )
            return 2
    if args.rate_burst is not None and args.rate_limit is None:
        print("error: --rate-burst needs --rate-limit", file=sys.stderr)
        return 2
    if args.cache_size is not None and args.cache_size < 0:
        print(f"error: --cache-size must be >= 0, got {args.cache_size}", file=sys.stderr)
        return 2
    if args.rate_limit is not None and args.rate_limit <= 0:
        print(f"error: --rate-limit must be positive, got {args.rate_limit}", file=sys.stderr)
        return 2
    if args.rate_burst is not None and args.rate_burst < 1:
        print(f"error: --rate-burst must be >= 1, got {args.rate_burst}", file=sys.stderr)
        return 2

    store = RuleStore()
    feed = None
    maintainer = None  # database-mode maintainer, closed on exit
    if args.session:
        interval = 1.0 if args.refresh is None else args.refresh
        if interval <= 0:
            print(
                f"error: --refresh must be positive, got {args.refresh}",
                file=sys.stderr,
            )
            return 2
        # Session mode serves the configuration the session manifest records;
        # silently ignoring mining flags would make re-thresholding *look*
        # like it worked.  All these flags default to None, so any explicit
        # use — even at a flag's database-mode default value — is caught.
        ignored = [
            flag
            for flag, value in (
                ("--min-support", args.min_support),
                ("--min-confidence", args.min_confidence),
                ("--miner", args.miner),
                ("--backend", args.backend),
                ("--shards", args.shards),
                ("--executor", args.executor),
                ("--workers", args.workers),
                ("--kernel", args.kernel),
            )
            if value is not None
        ]
        if ignored:
            print(
                f"error: {', '.join(ignored)} only apply when mining a database "
                f"file; --session serves the thresholds and engine recorded in "
                f"the session manifest",
                file=sys.stderr,
            )
            return 2
        feed = SessionFeed(store, args.session, interval=interval)
        # The feed's first tick does the initial publication (and records the
        # freshness marker, so its polling loop does not redo the recovery).
        # One retry covers the transient window where the read races a
        # writer's checkpoint commit — the same race the polling loop
        # tolerates by design; a persistent failure raises the real
        # diagnosis, which main() turns into a clean CLI error.
        try:
            feed.refresh(strict=True)
        except (ReproError, OSError):
            time.sleep(min(interval, 0.2))
            try:
                feed.refresh(strict=True)
            except OSError as exc:
                # ReproError falls through to main()'s handler; a raw
                # filesystem error (unreadable directory) gets the same
                # clean exit-2 treatment here.
                print(
                    f"error: cannot read session {args.session}: {exc}",
                    file=sys.stderr,
                )
                return 2
    else:
        if args.refresh is not None:
            print(
                "error: --refresh only applies with --session (database mode "
                "serves one mined state)",
                file=sys.stderr,
            )
            return 2
        if args.min_support is None:
            print("error: serving a database file needs --min-support", file=sys.stderr)
            return 2
        maintainer = RuleMaintainer(
            args.min_support,
            0.5 if args.min_confidence is None else args.min_confidence,
            miner=args.miner or "apriori",
            fup_options=FupOptions.from_mining(
                MiningOptions(
                    backend=args.backend or "horizontal",
                    shards=DEFAULT_SHARDS if args.shards is None else args.shards,
                    executor=args.executor or "threads",
                    workers=args.workers,
                    kernel=args.kernel,
                )
            ),
        )
        store.attach(maintainer)  # publishes on initialise (and any later apply)
        maintainer.initialise(load_database(args.database))

    try:
        if args.frontend == "async":
            from .serve.async_server import DEFAULT_MAX_CONNECTIONS
            from .serve.cache import DEFAULT_CACHE_SIZE

            server = AsyncRuleServer(
                store,
                host=args.host,
                port=args.port,
                cache_size=(
                    DEFAULT_CACHE_SIZE if args.cache_size is None else args.cache_size
                ),
                rate_limit=args.rate_limit,
                rate_burst=args.rate_burst,
                max_connections=(
                    DEFAULT_MAX_CONNECTIONS
                    if args.max_connections is None
                    else args.max_connections
                ),
            )
        else:
            server = RuleServer(store, host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        if maintainer is not None:
            maintainer.close()  # reap any engine worker processes
        return 2
    if feed is not None:
        feed.start()
    print(
        f"serving rules on {server.url} via the {args.frontend} front end "
        f"({store.snapshot().describe()})",
        flush=True,
    )
    timer = None
    if args.max_seconds is not None:
        timer = threading.Timer(args.max_seconds, server.shutdown)
        # Daemonised so an early Ctrl-C exits immediately instead of the
        # interpreter waiting out the rest of the timeout.
        timer.daemon = True
        timer.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        if timer is not None:
            timer.cancel()
        server.close()
        if feed is not None:
            feed.stop()
        if maintainer is not None:
            maintainer.close()
    return 0


def _check_ingest_flags(args: argparse.Namespace) -> int:
    """Shared flag validation for ``ingest`` and ``pipeline`` (0 ok, 2 bad)."""
    if args.source == "-" and getattr(args, "follow", False):
        print(
            "error: --follow needs a file source (stdin already blocks until "
            "the producer closes the pipe)",
            file=sys.stderr,
        )
        return 2
    if args.batch_seconds is not None and args.batch_seconds <= 0:
        print(
            f"error: --batch-seconds must be positive, got {args.batch_seconds}",
            file=sys.stderr,
        )
        return 2
    if args.poll <= 0:
        print(f"error: --poll must be positive, got {args.poll}", file=sys.stderr)
        return 2
    return 0


def _print_intake_batch(report) -> None:
    line = (
        f"batch {report.seq}: {report.applied} applied, "
        f"{report.duplicates} duplicate(s) dropped"
    )
    evicted = getattr(report.report, "evicted_transactions", 0)
    if evicted:
        line += f", {evicted} evicted"
    if getattr(report.report, "skipped", False):
        line += " (round skipped)"
    print(line, flush=True)


def _print_ingest_summary(summary, status) -> None:
    print(
        f"ingested {summary.events} event(s) in {summary.batches} batch(es): "
        f"{summary.applied} applied, {summary.duplicates} deduplicated"
        + (f", {summary.recovered_keys} key(s) recovered on open" if summary.recovered_keys else "")
        + (f", {summary.torn_tail} torn byte(s) pending" if summary.torn_tail else "")
    )
    print(
        f"now at batch {status.applied_seq} (checkpoint {status.checkpoint_seq}); "
        f"{status.database_size} transactions, {status.itemsets} itemsets, "
        f"{status.rules} rules"
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .ingest import MicroBatcher, open_event_stream, run_ingest

    bad = _check_ingest_flags(args)
    if bad:
        return bad
    with open_event_stream(args.source, args.format) as reader:
        with MaintenanceSession.open(args.session_dir) as session:
            _session_policy_overrides(session, args)
            batcher = MicroBatcher(
                max_events=args.batch_size, max_seconds=args.batch_seconds
            )
            summary = run_ingest(
                session,
                reader,
                batcher,
                follow=args.follow,
                poll_interval=args.poll,
                max_seconds=args.max_seconds,
                on_batch=_print_intake_batch,
            )
            status = session.status()
    _print_ingest_summary(summary, status)
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .ingest import MicroBatcher, open_event_stream, run_ingest
    from .serve import AsyncRuleServer, RuleServer, RuleStore

    args.follow = not args.once
    bad = _check_ingest_flags(args)
    if bad:
        return bad
    with open_event_stream(args.source, args.format) as reader:
        with MaintenanceSession.open(args.session_dir) as session:
            _session_policy_overrides(session, args)
            # In-process composition: the store subscribes to the session's
            # maintainer, so every applied micro-batch republishes the rule
            # snapshot immediately — no SessionFeed polling loop, no
            # freshness lag between the writer and the server.
            store = RuleStore()
            store.attach(session.maintainer)
            try:
                if args.frontend == "async":
                    server = AsyncRuleServer(store, host=args.host, port=args.port)
                else:
                    server = RuleServer(store, host=args.host, port=args.port)
            except OSError as exc:
                print(
                    f"error: cannot serve on {args.host}:{args.port}: {exc}",
                    file=sys.stderr,
                )
                return 2
            server.start()
            print(
                f"pipeline serving on {server.url} via the {args.frontend} front "
                f"end ({store.snapshot().describe()}); ingesting {args.source}",
                flush=True,
            )
            try:
                batcher = MicroBatcher(
                    max_events=args.batch_size, max_seconds=args.batch_seconds
                )
                summary = run_ingest(
                    session,
                    reader,
                    batcher,
                    follow=args.follow,
                    poll_interval=args.poll,
                    max_seconds=args.max_seconds,
                    on_batch=_print_intake_batch,
                )
                status = session.status()
            except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
                return 0
            finally:
                server.close()
    _print_ingest_summary(summary, status)
    return 0


def _cmd_session_status(args: argparse.Namespace) -> int:
    status = MaintenanceSession.peek(args.session_dir)
    for key, value in status.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_session_checkpoint(args: argparse.Namespace) -> int:
    with MaintenanceSession.open(args.session_dir) as session:
        pending = session.pending_batches
        seq = session.checkpoint()
    print(
        f"checkpointed {args.session_dir} at batch {seq} "
        f"({pending} journaled batch(es) compacted into the snapshot)"
    )
    return 0


def _cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    info = inspect_snapshot(Path(args.snapshot))
    for key, value in info.as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_snapshot_migrate(args: argparse.Namespace) -> int:
    info = migrate_snapshot(Path(args.source), Path(args.destination))
    lanes = (
        f"{info.distinct_items} item lanes x {info.lane_words} words"
        if info.lanes_present
        else "no lane section"
    )
    print(
        f"migrated {args.source} -> {args.destination} (format v{info.format_version}, "
        f"{info.transactions} transactions, {lanes}, {info.byte_size} bytes)"
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .harness.experiments import (
        EngineSpec,
        ExperimentMatrix,
        embed_generated_block,
        generated_block_drift,
        run_matrix,
    )

    matrix = ExperimentMatrix.quick() if args.quick else ExperimentMatrix()
    overrides: dict[str, object] = {}
    if args.workload:
        overrides["workload"] = args.workload
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        if args.supports:
            overrides["supports"] = tuple(float(s) for s in args.supports.split(","))
        if args.increments:
            overrides["increment_fractions"] = tuple(
                float(f) for f in args.increments.split(",")
            )
    except ValueError as exc:
        raise ReproError(
            f"--supports/--increments must be comma-separated numbers: {exc}"
        ) from None
    if args.engines:
        overrides["engines"] = tuple(
            EngineSpec.parse(spec) for spec in args.engines.split(",")
        )
    if args.policies:
        overrides["policies"] = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
    if overrides:
        matrix = replace(matrix, **overrides, label="custom")

    report = run_matrix(matrix, progress=lambda message: print(f"  {message}"))
    print()
    print(report.timing_tables())
    print()
    print(report.timing_chart())
    print()
    print(report.work_tables())

    if args.out:
        report.write_json(args.out)
        print(f"\nwrote machine-readable results to {args.out}")
    if args.update_docs:
        path = Path(args.update_docs)
        path.write_text(
            embed_generated_block(
                _read_docs_file(path), report.deterministic_markdown()
            ),
            encoding="utf-8",
        )
        print(f"updated the generated block of {path}")
    if args.check_docs:
        path = Path(args.check_docs)
        drift = generated_block_drift(
            _read_docs_file(path), report.deterministic_markdown()
        )
        if drift:
            flags = matrix.cli_arguments()
            fix_command = f"repro reproduce {flags} --update-docs {path}".replace(
                "  ", " "
            )
            print(
                f"error: {path} drifted from the regenerated tables — run "
                f"`{fix_command}`\n{drift}",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is in sync with the regenerated tables")
    return 0


# --------------------------------------------------------------------- #
# CLI reference rendering (the `repro docs` helper behind docs/cli.md)
# --------------------------------------------------------------------- #
def _table_cell(text: str) -> str:
    """Escape one markdown-table cell (| would split the row)."""
    return text.replace("|", "\\|")


def _flag_signature(action: argparse.Action) -> str:
    """Deterministic display form of one option (no terminal-width wrapping)."""
    if action.choices is not None:
        value = "{" + ",".join(str(choice) for choice in action.choices) + "}"
    elif action.metavar is not None:
        value = str(action.metavar)
    else:
        value = action.dest.upper()
    if action.option_strings:
        flags = ", ".join(action.option_strings)
        if action.nargs == 0:
            return f"`{flags}`"
        return f"`{flags} {value}`"
    return f"`{action.dest}`"


def _render_parser_section(
    lines: list[str], parser: argparse.ArgumentParser, command: str, help_text: str
) -> None:
    """Append one command's reference section (recursing into subcommands)."""
    subparser_actions = [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    positionals = [
        action
        for action in parser._actions
        if not action.option_strings
        and not isinstance(action, argparse._SubParsersAction)
    ]
    options = [action for action in parser._actions if action.option_strings]

    lines.append(f"## `{command}`")
    lines.append("")
    description = help_text or (parser.description or "")
    if description:
        lines.append(description.strip())
        lines.append("")
    if positionals:
        lines.append("| positional | description |")
        lines.append("|---|---|")
        for action in positionals:
            lines.append(f"| {_flag_signature(action)} | {_table_cell(action.help or '')} |")
        lines.append("")
    if options:
        lines.append("| option | default | description |")
        lines.append("|---|---|---|")
        for action in options:
            if action.dest == "help":
                continue
            default = ""
            if (
                action.default is not None
                and action.default is not argparse.SUPPRESS
                and action.nargs != 0
            ):
                default = f"`{action.default}`"
            lines.append(
                f"| {_flag_signature(action)} | {default} | {_table_cell(action.help or '')} |"
            )
        lines.append("")
    for subparser_action in subparser_actions:
        helps = {
            choice.dest: choice.help or ""
            for choice in subparser_action._choices_actions
        }
        for name, subparser in subparser_action.choices.items():
            _render_parser_section(lines, subparser, f"{command} {name}", helps.get(name, ""))


def render_cli_markdown() -> str:
    """Render ``docs/cli.md`` from the live argparse tree.

    Deliberately avoids ``format_help()`` — argparse wraps its output to the
    terminal width, which would make the generated file depend on the
    environment.  Everything here derives from the parser's action metadata,
    so the same parser always renders the same bytes (which is what lets CI
    fail on drift).
    """
    parser = build_parser()
    lines = [
        "# CLI reference",
        "",
        "_Generated by `repro docs --out docs/cli.md` from the argparse tree in",
        "`src/repro/cli.py`.  Do **not** edit by hand — CI regenerates this file",
        "and fails when it drifts from the parser._",
        "",
        "Run any command with `--help` for the same information in the terminal.",
        "",
    ]
    _render_parser_section(lines, parser, "repro", "")
    return "\n".join(lines).rstrip() + "\n"


def _read_docs_file(path: Path) -> str:
    """Read a docs file for an update/check, failing as a clean CLI error."""
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read docs file {path}: {exc}") from exc


def _cmd_docs(args: argparse.Namespace) -> int:
    from .harness.experiments import first_divergence

    rendered = render_cli_markdown()
    if args.check:
        path = Path(args.check)
        committed = _read_docs_file(path)
        if committed != rendered:
            divergence = first_divergence(committed, rendered)
            print(
                f"error: {path} drifted from the argparse tree — run "
                f"`python -m repro.cli docs --out {path}`\n{divergence}",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is in sync with the argparse tree")
        return 0
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote CLI reference to {args.out}")
        return 0
    print(rendered, end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import Baseline, render_json, render_text, run_lint

    paths = [Path(entry) for entry in (args.paths or ["src"])]
    select = None
    if args.select:
        select = {
            code.strip().upper()
            for part in args.select
            for code in part.split(",")
            if code.strip()
        }
    baseline = Baseline.load(Path(args.baseline)) if args.baseline else Baseline()
    report = run_lint(paths, select=select, baseline=baseline)
    rendered = render_json(report) if args.format == "json" else render_text(report)
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote lint report to {args.out}")
    else:
        print(rendered, end="")
    return 0 if report.clean else 2


def _cmd_rules(args: argparse.Namespace) -> int:
    lattice, _ = load_state(args.state)
    rules = generate_rules(lattice, args.min_confidence)
    print(f"{len(rules)} strong rules at confidence >= {args.min_confidence}")
    for rule in rules[: args.top]:
        print(f"  {rule}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    original = load_database(args.database)
    increment = load_database(args.increment)
    comparison = compare_update_strategies(
        original,
        increment,
        args.min_support,
        workload=Path(args.database).stem,
        mining=_mining_options(args),
    )
    rows = [
        {
            "strategy": "fup",
            "seconds": comparison.fup.elapsed_seconds,
            "candidates": comparison.fup.candidates_generated,
        },
        {
            "strategy": "apriori (re-run)",
            "seconds": comparison.apriori.elapsed_seconds,
            "candidates": comparison.apriori.candidates_generated,
        },
        {
            "strategy": "dhp (re-run)",
            "seconds": comparison.dhp.elapsed_seconds,
            "candidates": comparison.dhp.candidates_generated,
        },
    ]
    print(format_table(rows, title=f"update comparison at support {args.min_support}"))
    print(
        f"speed-up of FUP: {comparison.against_apriori.speedup:.2f}x vs Apriori, "
        f"{comparison.against_dhp.speedup:.2f}x vs DHP"
    )
    print(
        f"candidate ratio: {comparison.against_apriori.candidate_ratio:.3f} of Apriori, "
        f"{comparison.against_dhp.candidate_ratio:.3f} of DHP"
    )
    return 0 if comparison.consistent() else 1


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental maintenance of association rules (FUP, ICDE 1996).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    def positive_int(value: str) -> int:
        number = int(value)
        if number < 1:
            raise argparse.ArgumentTypeError(f"must be a positive integer, got {number}")
        return number

    def add_backend_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default="horizontal",
            help="support-counting engine (default: horizontal hash-tree scan)",
        )
        subparser.add_argument(
            "--shards",
            type=positive_int,
            default=DEFAULT_SHARDS,
            help="partition count for the partitioned backend",
        )
        subparser.add_argument(
            "--executor",
            choices=list(EXECUTOR_NAMES),
            default="threads",
            help="shard executor for the partitioned backend: GIL-bound threads "
            "or real process parallelism",
        )
        subparser.add_argument(
            "--workers",
            type=positive_int,
            default=None,
            help="cap on the partitioned backend's concurrent lanes "
            "(default: one per shard)",
        )
        subparser.add_argument(
            "--kernel",
            choices=list(KERNEL_NAMES),
            default=None,
            help="bitmap kernel for the vertical counting core: pure-Python "
            "big integers, numpy uint64 lanes, or auto (numpy when "
            "installed; default: bigint)",
        )

    def add_policy_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--policy",
            metavar="SPEC",
            default=None,
            help="maintenance policy: unbounded (default), window:W "
            "(sliding window of W transactions), decay:HALFLIFE "
            "(time-decayed support), or topk:K (serve only the K best rules)",
        )
        subparser.add_argument(
            "--skip-check",
            action="store_true",
            help="run the DELI-style sampling pre-check and skip FUP rounds "
            "that provably cannot change the large-itemset collection",
        )

    generate = commands.add_parser("generate", help="generate a synthetic Tx.Iy.Dm.dn workload")
    generate.add_argument("database", help="output file for the original database DB")
    generate.add_argument("--increment", help="output file for the increment db")
    generate.add_argument("--database-size", type=int, default=10_000, help="|D| transactions")
    generate.add_argument("--increment-size", type=int, default=1_000, help="|d| transactions")
    generate.add_argument("--transaction-size", type=float, default=10.0, help="|T| mean size")
    generate.add_argument("--pattern-size", type=float, default=4.0, help="|I| mean pattern size")
    generate.add_argument("--patterns", type=int, default=2_000, help="|L| pattern pool size")
    generate.add_argument("--items", type=int, default=1_000, help="N distinct items")
    generate.add_argument("--seed", type=int, default=19960226, help="random seed")
    generate.set_defaults(handler=_cmd_generate)

    mine = commands.add_parser("mine", help="mine large itemsets from a transaction file")
    mine.add_argument("database", help="transaction file (one transaction per line)")
    mine.add_argument("--algorithm", choices=["apriori", "dhp"], default="apriori")
    mine.add_argument("--min-support", type=float, required=True, help="relative support in (0, 1]")
    mine.add_argument("--state", help="write the itemset state (JSON) to this file")
    mine.add_argument("--min-confidence", type=float, help="also print rules at this confidence")
    mine.add_argument("--top", type=int, default=10, help="number of rules to print")
    add_backend_flags(mine)
    mine.set_defaults(handler=_cmd_mine)

    update = commands.add_parser("update", help="apply an increment with FUP")
    update.add_argument("database", help="original database file")
    update.add_argument("increment", help="increment file")
    update.add_argument("state", help="itemset state file produced by 'mine'")
    update.add_argument("--out-state", help="write the updated itemset state here")
    update.add_argument("--out-database", help="write the concatenated database here")
    add_backend_flags(update)
    update.set_defaults(handler=_cmd_update)

    maintain = commands.add_parser(
        "maintain",
        help="drive a multi-batch maintenance session (mine, then apply updates in batches)",
    )
    maintain.add_argument("database", help="original database file")
    maintain.add_argument("increment", help="insertions file, split into --batches batches")
    maintain.add_argument("--deletions", help="deletions file, split into --batches batches")
    maintain.add_argument("--min-support", type=float, required=True)
    maintain.add_argument("--min-confidence", type=float, default=0.5)
    maintain.add_argument("--batches", type=positive_int, default=1, help="update batches to apply")
    maintain.add_argument("--miner", choices=["apriori", "dhp"], default="apriori")
    maintain.add_argument("--out-state", help="write the final itemset state here")
    add_backend_flags(maintain)
    add_policy_flags(maintain)
    maintain.set_defaults(handler=_cmd_maintain)

    serve = commands.add_parser(
        "serve",
        help="serve maintained rules over HTTP (query API + health endpoint)",
    )
    serve.add_argument(
        "database",
        nargs="?",
        help="transaction file to mine and serve (or use --session instead)",
    )
    serve.add_argument(
        "--session",
        metavar="DIR",
        help="serve from this durable session directory (lock-free; polled "
        "for batches applied by other processes)",
    )
    # Database-mode flags default to None (not their effective values) so
    # session mode can tell "explicitly passed" from "left alone" and refuse
    # flags the session manifest would silently override.
    serve.add_argument(
        "--min-support", type=float, help="relative support (database mode)"
    )
    serve.add_argument(
        "--min-confidence",
        type=float,
        help="rule confidence (database mode; default 0.5)",
    )
    serve.add_argument(
        "--miner",
        choices=["apriori", "dhp"],
        help="initial-mine algorithm (database mode; default apriori)",
    )
    serve.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        help="support-counting engine (database mode; default horizontal)",
    )
    serve.add_argument(
        "--shards",
        type=positive_int,
        help=f"partition count for the partitioned backend (database mode; "
        f"default {DEFAULT_SHARDS})",
    )
    serve.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        help="shard executor for the partitioned backend (database mode; "
        "default threads)",
    )
    serve.add_argument(
        "--workers",
        type=positive_int,
        help="cap on the partitioned backend's concurrent lanes (database mode)",
    )
    serve.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        help="bitmap kernel for the vertical counting core (database mode; "
        "default bigint)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="bind port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--frontend",
        choices=["threaded", "async"],
        default="threaded",
        help="HTTP front end: stdlib thread-per-request, or the asyncio "
        "event loop with keep-alive batching, response cache, rate limiting "
        "and connection backpressure",
    )
    # Async-only knobs default to None so the threaded front end can refuse
    # them instead of silently ignoring limits that are not being enforced.
    serve.add_argument(
        "--cache-size",
        type=int,
        metavar="N",
        help="response-cache entry bound (async front end; default 1024, "
        "0 disables caching)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        metavar="R",
        help="per-client request rate in requests/second; over-limit "
        "requests get 429 + Retry-After (async front end; default off)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        metavar="B",
        help="token-bucket burst capacity (async front end; default: one "
        "second of --rate-limit, at least 1)",
    )
    serve.add_argument(
        "--max-connections",
        type=positive_int,
        metavar="M",
        help="concurrent-connection bound; excess connections are rejected "
        "immediately with 503 (async front end; default 1024)",
    )
    serve.add_argument(
        "--refresh",
        type=float,
        metavar="SECONDS",
        help="freshness poll interval (session mode; default 1.0)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shut down after this long (smoke tests; default: serve until Ctrl-C)",
    )
    serve.set_defaults(handler=_cmd_serve)

    session = commands.add_parser(
        "session",
        help="durable maintenance sessions (crash-safe, resumable across processes)",
    )
    session_commands = session.add_subparsers(dest="session_command", required=True)

    session_init = session_commands.add_parser(
        "init", help="mine a database into a fresh session directory"
    )
    session_init.add_argument("session_dir", help="session directory (created if missing)")
    session_init.add_argument("database", help="transaction file to mine")
    session_init.add_argument("--min-support", type=float, required=True)
    session_init.add_argument("--min-confidence", type=float, default=0.5)
    session_init.add_argument("--miner", choices=["apriori", "dhp"], default="apriori")
    session_init.add_argument(
        "--checkpoint-interval",
        type=positive_int,
        default=DEFAULT_CHECKPOINT_INTERVAL,
        help="compact the journal into a fresh snapshot every N batches",
    )
    add_backend_flags(session_init)
    add_policy_flags(session_init)
    session_init.set_defaults(handler=_cmd_session_init)

    session_apply = session_commands.add_parser(
        "apply", help="apply insertion/deletion files to a session in batches"
    )
    session_apply.add_argument("session_dir", help="existing session directory")
    session_apply.add_argument("--insertions", help="insertions file, split into --batches")
    session_apply.add_argument("--deletions", help="deletions file, split into --batches")
    session_apply.add_argument(
        "--batches", type=positive_int, default=1, help="update batches to apply"
    )
    session_apply.add_argument("--label", help="label recorded on the journaled batches")
    add_policy_flags(session_apply)
    session_apply.set_defaults(handler=_cmd_session_apply)

    session_status = session_commands.add_parser(
        "status", help="report a session's on-disk state (no journal replay)"
    )
    session_status.add_argument("session_dir", help="existing session directory")
    session_status.set_defaults(handler=_cmd_session_status)

    session_checkpoint = session_commands.add_parser(
        "checkpoint", help="compact the journal into a fresh snapshot"
    )
    session_checkpoint.add_argument("session_dir", help="existing session directory")
    session_checkpoint.set_defaults(handler=_cmd_session_checkpoint)

    def add_ingest_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("session_dir", help="existing session directory")
        subparser.add_argument(
            "--source",
            default="-",
            metavar="FILE",
            help="event-stream file to read, or - for stdin (default)",
        )
        subparser.add_argument(
            "--format",
            choices=list(FORMAT_NAMES),
            help="record format (default: sniffed from the file suffix; "
            "jsonl on stdin)",
        )
        subparser.add_argument(
            "--batch-size",
            type=positive_int,
            default=DEFAULT_BATCH_EVENTS,
            metavar="N",
            help="count watermark: cut a batch every N events",
        )
        subparser.add_argument(
            "--batch-seconds",
            type=float,
            metavar="SECONDS",
            help="time watermark: cut a partial batch once its first event "
            "is this old (default: count watermark only)",
        )
        subparser.add_argument(
            "--poll",
            type=float,
            default=0.2,
            metavar="SECONDS",
            help="follow-mode interval between stream re-polls",
        )
        subparser.add_argument(
            "--max-seconds",
            type=float,
            metavar="SECONDS",
            help="stop after this long (smoke tests; default: run to stream "
            "end, or forever with --follow)",
        )
        add_policy_flags(subparser)

    ingest = commands.add_parser(
        "ingest",
        help="stream intake events into a session (idempotent, at-least-once)",
    )
    add_ingest_flags(ingest)
    ingest.add_argument(
        "--follow",
        action="store_true",
        help="keep polling the source file for appended records instead of "
        "stopping at end of stream",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    pipeline = commands.add_parser(
        "pipeline",
        help="compose ingest + maintain + serve over one session directory",
    )
    add_ingest_flags(pipeline)
    pipeline.add_argument(
        "--once",
        action="store_true",
        help="stop when the stream is exhausted (default: follow the file "
        "for appended records)",
    )
    pipeline.add_argument("--host", default="127.0.0.1", help="bind address")
    pipeline.add_argument(
        "--port", type=int, default=8000, help="bind port (0 picks an ephemeral port)"
    )
    pipeline.add_argument(
        "--frontend",
        choices=["threaded", "async"],
        default="threaded",
        help="HTTP front end serving the maintained rules while ingesting",
    )
    pipeline.set_defaults(handler=_cmd_pipeline)

    snapshot = commands.add_parser(
        "snapshot",
        help="inspect or migrate binary snapshot files (v1 record stream, "
        "v2 memory-mappable)",
    )
    snapshot_commands = snapshot.add_subparsers(dest="snapshot_command", required=True)

    snapshot_inspect = snapshot_commands.add_parser(
        "inspect",
        help="print a snapshot's header fields without loading the "
        "transactions (exit 2 on a corrupt or unrecognised file)",
    )
    snapshot_inspect.add_argument("snapshot", help="snapshot file to inspect")
    snapshot_inspect.set_defaults(handler=_cmd_snapshot_inspect)

    snapshot_migrate = snapshot_commands.add_parser(
        "migrate",
        help="rewrite a v1 snapshot as the memory-mappable v2 format "
        "(lane section included, so reopening is O(1))",
    )
    snapshot_migrate.add_argument("source", help="v1 snapshot file to migrate")
    snapshot_migrate.add_argument("destination", help="output v2 snapshot file")
    snapshot_migrate.set_defaults(handler=_cmd_snapshot_migrate)

    rules = commands.add_parser("rules", help="derive strong rules from a saved state")
    rules.add_argument("state", help="itemset state file")
    rules.add_argument("--min-confidence", type=float, required=True)
    rules.add_argument("--top", type=int, default=20)
    rules.set_defaults(handler=_cmd_rules)

    compare = commands.add_parser(
        "compare", help="compare FUP against re-running Apriori/DHP on an update"
    )
    compare.add_argument("database", help="original database file")
    compare.add_argument("increment", help="increment file")
    compare.add_argument("--min-support", type=float, required=True)
    add_backend_flags(compare)
    compare.set_defaults(handler=_cmd_compare)

    reproduce = commands.add_parser(
        "reproduce",
        help="run the paper-reproduction experiment matrix "
        "(increment size x support x algorithm x engine/executor x policy)",
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="run the small CI preset instead of the full default matrix",
    )
    reproduce.add_argument("--workload", help="Tx.Iy.Dm.dn workload name override")
    reproduce.add_argument(
        "--scale", type=float, default=None, help="workload scale factor override"
    )
    reproduce.add_argument(
        "--seed", type=int, default=None, help="workload generator seed override"
    )
    reproduce.add_argument(
        "--supports", help="comma-separated support thresholds (e.g. 0.03,0.02)"
    )
    reproduce.add_argument(
        "--increments",
        help="comma-separated increment fractions of the generated d (e.g. 0.5,1.0)",
    )
    reproduce.add_argument(
        "--engines",
        help="comma-separated engine specs backend[:shards[:executor[:workers]]] "
        "(e.g. horizontal,partitioned:4:processes)",
    )
    reproduce.add_argument(
        "--policies",
        help="comma-separated maintenance policies to sweep: unbounded "
        "(classic DB ∪ db) and/or window (sliding window of |DB| rows, "
        "evictions riding FUP2; consistency-checked against re-mining the "
        "window)",
    )
    reproduce.add_argument(
        "--out", help="write machine-readable results (BENCH_reproduction.json) here"
    )
    reproduce.add_argument(
        "--update-docs",
        help="rewrite the generated block of this markdown file (docs/reproduction.md)",
    )
    reproduce.add_argument(
        "--check-docs",
        help="fail (exit 1) if this markdown file's generated block drifted",
    )
    reproduce.set_defaults(handler=_cmd_reproduce)

    docs = commands.add_parser(
        "docs", help="render the CLI reference (docs/cli.md) from the argparse tree"
    )
    docs.add_argument("--out", help="write the rendered markdown here")
    docs.add_argument(
        "--check", help="fail (exit 1) if this file drifted from the parser"
    )
    docs.set_defaults(handler=_cmd_docs)

    lint = commands.add_parser(
        "lint",
        help="run the project's static invariant checkers (RPR0xx rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="grandfathered-findings file; a missing file means an empty "
        "baseline (default: lint-baseline.json)",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="RPRNNN[,RPRNNN...]",
        help="only report these rule codes (comma-separated, repeatable)",
    )
    lint.add_argument("--out", help="write the report here instead of stdout")
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Tier-1 gate: the committed tree passes its own invariant checkers.

This is the test that gives every ``RPR0xx`` rule teeth — a PR that
introduces a lock-discipline, durability, kernel-purity, layout, or
exception-hygiene violation fails here before CI even reaches the
dedicated lint job.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_committed_tree_lints_clean():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    report = run_lint([REPO_ROOT / "src"], baseline=baseline)
    assert report.files_checked > 0
    assert report.clean, "new lint findings:\n" + "\n".join(
        f"  {finding.path}:{finding.line} {finding.code} {finding.message}"
        for finding in report.findings
    )


def test_committed_baseline_stays_near_empty():
    # The baseline exists to absorb *historical* findings during an
    # incident, not to become a landfill; keep it effectively empty.
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert len(baseline.entries) <= 5

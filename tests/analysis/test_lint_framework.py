"""Framework semantics: suppressions, baseline, select, reporters, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, render_json, render_text, run_lint, rules_catalog
from repro.analysis.framework import JSON_REPORT_VERSION
from repro.cli import main
from repro.errors import AnalysisError

BAD_MODULE = (
    "def risky():\n"
    "    try:\n"
    "        return work()\n"
    "    except:\n"
    "        return None\n"
)


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_MODULE)
    return tmp_path


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_matching_code_suppresses(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            BAD_MODULE.replace("except:", "except:  # repro: ignore[RPR040]")
        )
        report = run_lint([tmp_path])
        assert report.clean
        assert report.suppressed == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            BAD_MODULE.replace("except:", "except:  # repro: ignore[RPR041]")
        )
        report = run_lint([tmp_path])
        assert [finding.code for finding in report.findings] == ["RPR040"]

    def test_comma_separated_codes(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "def feed():\n"
            "    while True:\n"
            "        try:\n"
            "            tick()\n"
            "        except Exception:  # repro: ignore[RPR041, RPR042]\n"
            "            pass\n"
        )
        report = run_lint([tmp_path])
        assert report.clean
        assert report.suppressed == 2


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_baseline_grandfathers_existing_findings(self, bad_tree, tmp_path):
        first = run_lint([bad_tree])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(Baseline.render(first.findings))

        second = run_lint([bad_tree], baseline=Baseline.load(baseline_path))
        assert second.clean
        assert len(second.baselined) == 1

    def test_baseline_survives_line_drift(self, bad_tree, tmp_path):
        first = run_lint([bad_tree])
        baseline = Baseline(finding.identity for finding in first.findings)
        # Shift the violation down two lines; the identity ignores position.
        (bad_tree / "bad.py").write_text("import os\nimport sys\n" + BAD_MODULE)
        second = run_lint([bad_tree], baseline=baseline)
        assert second.clean

    def test_new_findings_still_fail(self, bad_tree):
        baseline = Baseline()  # empty
        report = run_lint([bad_tree], baseline=baseline)
        assert not report.clean

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == frozenset()

    def test_corrupt_baseline_raises_analysis_error(self, tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(corrupt)


# --------------------------------------------------------------------- #
# Select
# --------------------------------------------------------------------- #
class TestSelect:
    def test_select_filters_other_codes(self, bad_tree):
        report = run_lint([bad_tree], select={"RPR041"})
        assert report.clean
        report = run_lint([bad_tree], select={"RPR040"})
        assert [finding.code for finding in report.findings] == ["RPR040"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            run_lint([tmp_path / "nowhere"])


# --------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------- #
class TestReporters:
    def test_text_report_lists_location_and_code(self, bad_tree):
        text = render_text(run_lint([bad_tree]))
        assert "bad.py:4:5: RPR040" in text
        assert "1 finding(s)" in text

    def test_json_report_schema(self, bad_tree):
        payload = json.loads(render_json(run_lint([bad_tree])))
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["tool"] == "repro lint"
        assert payload["files_checked"] == 1
        assert payload["summary"] == {"new": 1, "baselined": 0, "suppressed": 0}
        codes = {rule["code"] for rule in payload["rules"]}
        assert {"RPR000", "RPR001", "RPR020", "RPR030", "RPR040"} <= codes
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code",
            "message",
            "path",
            "line",
            "column",
            "symbol",
            "baselined",
        }
        assert finding["code"] == "RPR040"
        assert finding["baselined"] is False

    def test_rules_catalog_is_sorted_and_unique(self):
        catalog = rules_catalog()
        codes = [rule.code for rule in catalog]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        assert len(codes) >= 14  # parse-error + 13 project rules


# --------------------------------------------------------------------- #
# CLI plumbing
# --------------------------------------------------------------------- #
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("VALUE = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_two(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree)]) == 2
        assert "RPR040" in capsys.readouterr().out

    def test_json_format_and_out_file(self, bad_tree, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["lint", str(bad_tree), "--format", "json", "--out", str(out)]) == 2
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["summary"]["new"] == 1

    def test_select_flag(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--select", "RPR041,RPR042"]) == 0
        capsys.readouterr()

    def test_baseline_flag(self, bad_tree, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(Baseline.render(run_lint([bad_tree]).findings))
        assert main(["lint", str(bad_tree), "--baseline", str(baseline_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_missing_path_is_a_clean_cli_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().err

"""Per-rule fixture tests for the ``repro lint`` checkers.

Every shipped ``RPR0xx`` rule gets a seeded violation (which must be
flagged) and a compliant twin (which must stay silent), per the acceptance
criteria of the analysis subsystem.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import run_lint


def lint_source(tmp_path: Path, relpath: str, source: str) -> list:
    """Write one fixture module and return its findings."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path]).findings


def codes(findings: list) -> set[str]:
    return {finding.code for finding in findings}


# --------------------------------------------------------------------- #
# RPR000 parse errors
# --------------------------------------------------------------------- #
class TestParseError:
    def test_unparsable_file_is_reported(self, tmp_path):
        findings = lint_source(tmp_path, "broken.py", "def f(:\n")
        assert codes(findings) == {"RPR000"}

    def test_parse_errors_ignore_select_and_baseline(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_lint([tmp_path], select={"RPR040"})
        assert codes(report.findings) == {"RPR000"}


# --------------------------------------------------------------------- #
# RPR001 serve-side reader modules vs writer-locked APIs
# --------------------------------------------------------------------- #
class TestServeReaderLocks:
    def test_flags_writer_api_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/reader.py",
            """
            from ..core.session import _open_locked

            def refresh(directory):
                return _open_locked(directory, {}, None)
            """,
        )
        assert "RPR001" in codes(findings)

    def test_flags_fcntl_and_session_open(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/locker.py",
            """
            import fcntl
            from ..core.session import MaintenanceSession

            def grab(directory):
                return MaintenanceSession.open(directory)
            """,
        )
        flagged = [f for f in findings if f.code == "RPR001"]
        assert len(flagged) == 2  # the fcntl import and the .open() call

    def test_lock_free_reader_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/reader.py",
            """
            from ..core.session import MaintenanceSession, read_session_state

            def refresh(directory):
                peeked = MaintenanceSession.peek(directory)
                return read_session_state(directory), peeked
            """,
        )
        assert not findings

    def test_writer_module_outside_serve_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/locks.py",
            """
            import fcntl

            def lock(handle):
                fcntl.flock(handle, fcntl.LOCK_EX)
            """,
        )
        assert "RPR001" not in codes(findings)


# --------------------------------------------------------------------- #
# RPR002 module-level mutable state written from functions
# --------------------------------------------------------------------- #
class TestModuleStateWrites:
    def test_flags_global_rebinding(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "state.py",
            """
            _cache = None

            def warm():
                global _cache
                _cache = 42
            """,
        )
        assert "RPR002" in codes(findings)

    def test_flags_container_mutation(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "registry.py",
            """
            _REGISTRY = {}

            def register(name, value):
                _REGISTRY[name] = value

            def forget(name):
                _REGISTRY.pop(name)
            """,
        )
        flagged = [f for f in findings if f.code == "RPR002"]
        assert len(flagged) == 2

    def test_module_level_and_shadowed_writes_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "clean_state.py",
            """
            _REGISTRY = {}
            _REGISTRY["builtin"] = object()

            def build():
                _REGISTRY = {}
                _REGISTRY["local"] = 1
                return _REGISTRY

            class Holder:
                def __init__(self):
                    self.items = []

                def add(self, value):
                    self.items.append(value)
            """,
        )
        assert not findings

    def test_suppression_comment_silences_the_global(self, tmp_path):
        target = tmp_path / "memo.py"
        target.write_text(
            "_ok = None\n"
            "def probe():\n"
            "    global _ok  # repro: ignore[RPR002]\n"
            "    _ok = True\n"
        )
        report = run_lint([tmp_path])
        assert not report.findings
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# RPR003 blocking calls inside coroutines
# --------------------------------------------------------------------- #
class TestBlockingInCoroutine:
    def test_flags_sleep_open_and_subprocess(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/async_server.py",
            """
            import subprocess
            import time

            async def handler():
                time.sleep(0.1)
                data = open("/tmp/f").read()
                subprocess.run(["true"])
                return data
            """,
        )
        flagged = [f for f in findings if f.code == "RPR003"]
        assert len(flagged) == 3

    def test_resolves_import_aliases(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "aliased.py",
            """
            from time import sleep

            async def handler():
                sleep(1)
            """,
        )
        assert "RPR003" in codes(findings)

    def test_async_sleep_and_sync_functions_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "clean_async.py",
            """
            import asyncio
            import time

            async def handler(store):
                await asyncio.sleep(0.1)
                return store.open()

            def sync_helper():
                time.sleep(0.1)
                return open("/tmp/f")
            """,
        )
        assert not findings


# --------------------------------------------------------------------- #
# RPR010 / RPR011 renames and fsyncs outside the audited helpers
# --------------------------------------------------------------------- #
class TestDurabilityHelpers:
    def test_flags_adhoc_rename_and_fsync(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "writer.py",
            """
            import os

            def save(tmp, final):
                os.replace(tmp, final)
                os.fsync(0)
            """,
        )
        assert {"RPR010", "RPR011"} <= codes(findings)

    def test_audited_session_helpers_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/session.py",
            """
            import os

            def _fsync_file(handle):
                os.fsync(handle.fileno())

            def _fsync_directory(path):
                os.fsync(os.open(path, os.O_RDONLY))

            def _atomic_replace(temporary, final):
                os.replace(temporary, final)

            class _Journal:
                def append(self, handle):
                    os.fsync(handle.fileno())
            """,
        )
        assert not findings

    def test_rename_outside_the_helper_even_in_session_py(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/session.py",
            """
            import os

            def checkpoint(tmp, final):
                os.rename(tmp, final)
            """,
        )
        assert "RPR010" in codes(findings)


# --------------------------------------------------------------------- #
# RPR012 unstaged durable writes in MaintenanceSession
# --------------------------------------------------------------------- #
class TestCheckpointStaging:
    def test_flags_unstaged_writes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/session.py",
            """
            def write_snapshot(db, path):
                pass

            class MaintenanceSession:
                def _write_checkpoint(self, db, path, manifest):
                    write_snapshot(db, path)
                    manifest.write_text("data")
                    handle = path.open("r+b")
                    return handle
            """,
        )
        flagged = [f for f in findings if f.code == "RPR012"]
        assert len(flagged) == 3

    def test_staged_writes_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/session.py",
            """
            def write_snapshot(db, path):
                pass

            class MaintenanceSession:
                def _write_checkpoint(self, db, snapshot_tmp, manifest_tmp):
                    write_snapshot(db, snapshot_tmp)
                    manifest_tmp.write_text("data")
                    handle = manifest_tmp.open("rb")
                    return handle
            """,
        )
        assert not findings

    def test_other_classes_may_write(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "db/exporter.py",
            """
            class Exporter:
                def dump(self, path):
                    path.write_text("data")
            """,
        )
        assert "RPR012" not in codes(findings)


class TestLedgerStaging:
    """RPR012 also audits the intake ledger — it is a durable writer too."""

    def test_flags_unstaged_ledger_writes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "ingest/ledger.py",
            """
            class IntakeLedger:
                def compact(self, path):
                    path.write_text("data")
                    handle = path.open("wb")
                    return handle
            """,
        )
        flagged = [f for f in findings if f.code == "RPR012"]
        assert len(flagged) == 2
        assert all("IntakeLedger" in f.message for f in flagged)

    def test_staged_ledger_writes_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "ingest/ledger.py",
            """
            class IntakeLedger:
                def compact(self, ledger_tmp):
                    ledger_tmp.write_text("data")
                    handle = ledger_tmp.open("rb")
                    return handle
            """,
        )
        assert "RPR012" not in codes(findings)


# --------------------------------------------------------------------- #
# RPR020 unguarded in-place mutation of lane buffers
# --------------------------------------------------------------------- #
class TestKernelPurity:
    def test_flags_unguarded_alias_mutation(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/bad.py",
            """
            from .base import BitmapKernel

            class BadKernel(BitmapKernel):
                def append(self, transaction):
                    lanes = self._lanes
                    lanes[0, 1] |= 2
            """,
        )
        assert "RPR020" in codes(findings)

    def test_flags_out_kwarg_on_frombuffer_result(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/bad_out.py",
            """
            import numpy as np
            from .base import BitmapKernel

            class BadKernel(BitmapKernel):
                def count(self, payload):
                    view = np.frombuffer(payload, dtype="<u8")
                    np.bitwise_and(view, view, out=view)
                    return view
            """,
        )
        assert "RPR020" in codes(findings)

    def test_guarded_mutation_and_copies_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/good.py",
            """
            import numpy as np
            from .base import BitmapKernel

            class GoodKernel(BitmapKernel):
                def append(self, transaction):
                    self._ensure_capacity(1, 1)
                    lanes = self._lanes
                    lanes[0, 1] |= 2

                def count(self, payload):
                    view = np.array(np.frombuffer(payload, dtype="<u8"))
                    np.bitwise_and(view, view, out=view)
                    return view
            """,
        )
        assert not findings

    def test_non_kernel_classes_are_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/helper.py",
            """
            class Scratch:
                def fill(self):
                    lanes = self._lanes
                    lanes[0] |= 1
            """,
        )
        assert "RPR020" not in codes(findings)


# --------------------------------------------------------------------- #
# RPR021 ABC signature drift
# --------------------------------------------------------------------- #
class TestKernelSignatureDrift:
    def test_flags_drifting_signature(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/drift.py",
            """
            from .base import BitmapKernel

            class DriftKernel(BitmapKernel):
                def append(self, transaction, flush):
                    pass
            """,
        )
        drift = [f for f in findings if f.code == "RPR021"]
        assert len(drift) == 1
        assert drift[0].symbol == "DriftKernel.append"

    def test_matching_signature_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "kernels/match.py",
            """
            from .base import BitmapKernel

            class MatchKernel(BitmapKernel):
                def append(self, transaction):
                    pass

                def support(self, candidate):
                    return 0
            """,
        )
        assert not findings

    def test_fixture_tree_can_ship_its_own_contract(self, tmp_path):
        base = tmp_path / "kernels" / "base.py"
        base.parent.mkdir(parents=True)
        base.write_text(
            "import abc\n"
            "class BitmapKernel(abc.ABC):\n"
            "    @abc.abstractmethod\n"
            "    def lookup(self, key, default):\n"
            "        ...\n"
        )
        findings = lint_source(
            tmp_path,
            "kernels/impl.py",
            """
            from .base import BitmapKernel

            class Impl(BitmapKernel):
                def lookup(self, key):
                    return None
            """,
        )
        assert "RPR021" in codes(findings)


# --------------------------------------------------------------------- #
# RPR030 / RPR031 binary layout geometry
# --------------------------------------------------------------------- #
class TestBinaryLayout:
    def test_flags_undersized_header_and_bad_format(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "db/store.py",
            """
            import struct

            _V2_HEADER = struct.Struct("<8sII8Q")
            _V2_HEADER_SIZE = 64
            _BROKEN = struct.calcsize("<8sQ!")
            """,
        )
        flagged = [f for f in findings if f.code == "RPR030"]
        assert len(flagged) == 2  # undersized constant + invalid format

    def test_flags_misalignment(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "db/layout.py",
            """
            import struct

            _V2_HEADER = struct.Struct("<8sII8Q")
            _V2_HEADER_SIZE = 96
            _V2_ALIGN = 64
            _BAD_ALIGN = 24
            """,
        )
        messages = [f.message for f in findings if f.code == "RPR031"]
        assert any("not a multiple" in message for message in messages)
        assert any("power of two" in message for message in messages)

    def test_committed_geometry_shape_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "db/store.py",
            """
            import struct

            _V2_HEADER = struct.Struct("<8sII8Q")
            _V2_HEADER_SIZE = 128
            _V2_ALIGN = 64
            _RECORD = struct.Struct("<I")
            """,
        )
        assert not findings


# --------------------------------------------------------------------- #
# RPR040–RPR042 exception hygiene
# --------------------------------------------------------------------- #
class TestExceptionHygiene:
    def test_flags_bare_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "bare.py",
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
        )
        assert "RPR040" in codes(findings)

    def test_flags_unrecorded_broad_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "broad.py",
            """
            def risky():
                try:
                    return work()
                except Exception:
                    return None
            """,
        )
        assert "RPR041" in codes(findings)

    def test_logged_or_reraised_broad_except_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "handled.py",
            """
            import logging

            _log = logging.getLogger(__name__)

            def logged():
                try:
                    return work()
                except Exception:
                    _log.exception("work failed")
                    return None

            def reraised():
                try:
                    return work()
                except BaseException:
                    cleanup()
                    raise
            """,
        )
        assert not findings

    def test_flags_pass_inside_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "loop.py",
            """
            def feed():
                while True:
                    try:
                        tick()
                    except ValueError:
                        pass
            """,
        )
        assert "RPR042" in codes(findings)

    def test_pass_outside_loop_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "once.py",
            """
            def close(handle):
                try:
                    handle.close()
                except OSError:
                    pass
            """,
        )
        assert not findings


# --------------------------------------------------------------------- #
# RPR043 CLI exit taxonomy
# --------------------------------------------------------------------- #
class TestExitTaxonomy:
    def test_flags_exit_outside_main_guard(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "library.py",
            """
            import sys

            def fail(message):
                sys.exit(message)

            def abort():
                raise SystemExit(2)
            """,
        )
        flagged = [f for f in findings if f.code == "RPR043"]
        assert len(flagged) == 2

    def test_flags_out_of_taxonomy_return(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "cli.py",
            """
            def _cmd_frob(args):
                if args:
                    return 3
                return 0
            """,
        )
        assert "RPR043" in codes(findings)

    def test_main_guard_and_taxonomy_returns_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "cli.py",
            """
            import sys

            def _cmd_frob(args):
                if args is None:
                    return 2
                if not args:
                    return 1
                return 0

            def main(argv=None):
                return _cmd_frob(argv)

            if __name__ == "__main__":
                sys.exit(main())
            """,
        )
        assert not findings


# --------------------------------------------------------------------- #
# RPR050 policy purity
# --------------------------------------------------------------------- #
class TestPolicyPurity:
    def test_flags_filesystem_writes_in_the_policy_module(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/policy.py",
            """
            import os
            import json

            class SlidingWindowPolicy:
                def plan(self, batch, database):
                    with open("/tmp/policy.log", "w") as handle:
                        handle.write("planned")
                    os.fsync(3)
                    return batch

                def persist(self, path):
                    path.write_text(json.dumps(self.params()))
            """,
        )
        flagged = [f for f in findings if f.code == "RPR050"]
        assert len(flagged) == 3  # open(), os.fsync(), .write_text()

    def test_flags_durability_layer_imports(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/policy.py",
            """
            from .session import MaintenanceSession
            from ..ingest import ledger

            class TopKPolicy:
                pass
            """,
        )
        flagged = [f for f in findings if f.code == "RPR050"]
        assert len(flagged) == 2

    def test_pure_planner_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/policy.py",
            """
            import math
            from collections import Counter

            class SlidingWindowPolicy:
                def __init__(self, window):
                    self.window = window

                def plan(self, batch, database):
                    overflow = len(database) + len(batch.insertions) - self.window
                    return max(0, overflow)

                def params(self):
                    return {"window": self.window}
            """,
        )
        assert "RPR050" not in codes(findings)

    def test_other_modules_may_do_durability_work(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "core/session.py",
            """
            import os

            def checkpoint(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
            """,
        )
        assert "RPR050" not in codes(findings)

"""Unit tests for the pluggable bitmap-kernel seam."""

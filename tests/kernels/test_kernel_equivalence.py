"""The pinned kernel invariant: every kernel is observationally equivalent.

``repro.kernels.base`` pins it in prose; this module pins it in asserts.
Every test that takes a ``kernel`` parameter runs once per *available*
kernel (the numpy kernel only when numpy imports), comparing each kernel's
observable behaviour — masks, supports, batched counts, mutation results,
interchange forms — against the always-available big-int reference.  The
suite passes unchanged on a numpy-free interpreter: the parametrization
simply shrinks to the big-int kernel and the registry tests assert the
degraded resolution behaviour instead.
"""

from __future__ import annotations

import pickle

import pytest

import repro.kernels as kernels_module
from repro import VerticalIndex
from repro.kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    BigIntKernel,
    BitmapKernel,
    kernel_class,
    lane_words,
    numpy_available,
    resolve_kernel_name,
)

AVAILABLE = ["bigint"] + (["numpy"] if numpy_available() else [])

ROWS = [
    (1, 2, 3),
    (2, 3),
    (),
    (1, 5, 9),
    (2, 9),
    (1, 2, 3, 5),
    (7,),
    (1, 2),
]

CANDIDATES = [
    (),  # empty itemset: support == database size
    (1,),
    (2,),
    (42,),  # never seen
    (1, 2),
    (2, 3),
    (1, 42),  # one known item, one unknown
    (1, 2, 3),
    (1, 2, 3, 5),
]


def reference_supports(rows, candidates):
    return {
        candidate: sum(
            1 for row in rows if all(item in row for item in candidate)
        )
        for candidate in candidates
    }


@pytest.fixture(params=AVAILABLE)
def kernel(request) -> str:
    return request.param


class TestRegistry:
    def test_kernel_names_are_stable(self):
        assert KERNEL_NAMES == ("bigint", "numpy", "auto")
        assert DEFAULT_KERNEL == "bigint"

    def test_none_resolves_to_default(self):
        assert resolve_kernel_name(None) == DEFAULT_KERNEL

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel_name("simd")

    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if numpy_available() else DEFAULT_KERNEL
        assert resolve_kernel_name("auto") == expected

    def test_explicit_numpy_without_numpy_is_an_error(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_numpy_ok", False)
        with pytest.raises(ValueError, match="numpy is not installed"):
            resolve_kernel_name("numpy")
        # ... while "auto" degrades silently, by design.
        assert resolve_kernel_name("auto") == DEFAULT_KERNEL

    def test_kernel_class_mapping(self):
        assert kernel_class("bigint") is BigIntKernel
        assert kernel_class(None) is BigIntKernel
        if numpy_available():
            from repro.kernels.lanes import LaneKernel

            assert kernel_class("numpy") is LaneKernel
            assert kernel_class("auto") is LaneKernel

    def test_kernel_classes_declare_their_registry_name(self):
        for name in AVAILABLE:
            cls = kernel_class(name)
            assert issubclass(cls, BitmapKernel)
            assert cls.name == name

    def test_lane_words_geometry(self):
        assert lane_words(0) == 0
        assert lane_words(1) == 1
        assert lane_words(64) == 1
        assert lane_words(65) == 2


class TestObservationalEquivalence:
    def test_masks_match_reference(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        assert store.masks() == BigIntKernel.build(ROWS).masks()
        assert store.size == len(ROWS)
        assert sorted(store.items()) == sorted(BigIntKernel.build(ROWS).masks())

    def test_supports_match_brute_force(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        expected = reference_supports(ROWS, CANDIDATES)
        for candidate, support in expected.items():
            assert store.support(candidate) == support, candidate
        assert store.count_candidates(CANDIDATES) == expected

    def test_count_candidates_of_empty_pool(self, kernel):
        assert kernel_class(kernel).build(ROWS).count_candidates([]) == {}

    def test_item_counts(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        assert store.item_counts() == BigIntKernel.build(ROWS).item_counts()

    def test_empty_database(self, kernel):
        store = kernel_class(kernel).build([])
        assert store.size == 0
        assert len(store) == 0
        assert store.support((1,)) == 0
        assert store.count_candidates([(1,), ()]) == {(1,): 0, (): 0}

    def test_mutations_track_the_reference(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        reference = BigIntKernel.build(ROWS)
        for mutate in (
            lambda s: s.append((2, 5, 9)),
            lambda s: s.extend([(1, 9), (), (64, 65)]),
            lambda s: s.delete_tids([0, 3, 6]),
            lambda s: s.extend([(2,)] * 70),  # crosses a 64-bit word boundary
            lambda s: s.delete_tids(list(range(0, s.size, 2))),
        ):
            mutate(store)
            mutate(reference)
            assert store.masks() == reference.masks()
            assert store.size == reference.size

    def test_derivations_track_the_reference(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        reference = BigIntKernel.build(ROWS)
        assert store.slice(2, 6).masks() == reference.slice(2, 6).masks()
        other = kernel_class(kernel).build([(2, 3), (9,)])
        merged = store.concatenate(other)
        assert merged.masks() == reference.concatenate(
            BigIntKernel.build([(2, 3), (9,)])
        ).masks()
        assert merged.size == len(ROWS) + 2

    def test_copy_is_independent(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        clone = store.copy()
        clone.append((1, 2, 3))
        assert store.size == len(ROWS)
        assert clone.size == len(ROWS) + 1
        assert store.masks() == BigIntKernel.build(ROWS).masks()

    def test_payload_pickles_across_process_boundaries(self, kernel):
        store = kernel_class(kernel).build(ROWS)
        payload = pickle.loads(pickle.dumps(store.to_payload()))
        revived = kernel_class(kernel).from_payload(payload)
        assert revived.masks() == store.masks()
        assert revived.size == store.size

    def test_lane_interchange_is_kernel_agnostic(self, kernel):
        """Any kernel can reopen any kernel's exported lane buffer."""
        source = kernel_class(kernel).build(ROWS)
        items, words, buffer = source.export_lanes()
        assert items == sorted(items)
        assert words == lane_words(source.size)
        assert len(buffer) == len(items) * words * 8
        for target_name in AVAILABLE:
            revived = kernel_class(target_name).from_lanes(
                items, buffer, source.size
            )
            assert revived.masks() == source.masks()

    def test_from_lanes_buffer_survives_mutation(self, kernel):
        """A kernel wrapping a read-only buffer must copy before mutating."""
        source = kernel_class(kernel).build(ROWS)
        items, _, buffer = source.export_lanes()
        revived = kernel_class(kernel).from_lanes(items, bytes(buffer), source.size)
        revived.append((1, 2))
        revived.extend([(3,)])
        expected = BigIntKernel.build(ROWS)
        expected.append((1, 2))
        expected.extend([(3,)])
        assert revived.masks() == expected.masks()


class TestVerticalIndexSeam:
    def test_build_records_the_kernel(self, kernel):
        index = VerticalIndex.build(ROWS, kernel=kernel)
        assert index.kernel == kernel
        assert index.size == len(ROWS)

    def test_indexes_compare_equal_across_kernels(self):
        indexes = [VerticalIndex.build(ROWS, kernel=name) for name in AVAILABLE]
        for index in indexes[1:]:
            assert index == indexes[0]
            assert dict(index) == dict(indexes[0])

    def test_with_kernel_repacks_without_changing_content(self, kernel):
        index = VerticalIndex.build(ROWS, kernel="bigint")
        repacked = index.with_kernel(kernel)
        assert repacked.kernel == kernel
        assert dict(repacked) == dict(index)
        assert index.with_kernel("bigint") is index  # already there: no-op

    def test_payload_round_trip_preserves_kernel(self, kernel):
        index = VerticalIndex.build(ROWS, kernel=kernel)
        revived = VerticalIndex.from_payload(
            pickle.loads(pickle.dumps(index.to_payload()))
        )
        assert revived.kernel == kernel
        assert dict(revived) == dict(index)

    def test_count_candidates_matches_across_kernels(self, kernel):
        index = VerticalIndex.build(ROWS, kernel=kernel)
        reference = VerticalIndex.build(ROWS, kernel="bigint")
        assert index.count_candidates(CANDIDATES) == reference.count_candidates(
            CANDIDATES
        )

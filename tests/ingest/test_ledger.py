"""Intake-ledger durability: persistence, torn tails, compaction, reconcile."""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.ingest import LEDGER_NAME, IntakeLedger


def _records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRoundTrip:
    def test_commits_persist_across_reopen(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        ledger.commit(1, ["a", "b"], 3)
        ledger.commit(2, ["c"], 2)
        ledger.close()
        reopened = IntakeLedger.open(tmp_path)
        assert sorted(["a", "b", "c"]) == sorted(k for k in ("a", "b", "c") if k in reopened)
        assert reopened.applied_seq == 2
        assert reopened.events_seen == 5
        assert len(reopened) == 3
        reopened.close()

    def test_empty_batch_commit_advances_high_water_under_unchanged_seq(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        ledger.commit(1, ["a"], 1)
        ledger.commit(1, [], 4)  # fully-duplicate batch: keys empty, seq unchanged
        assert ledger.events_seen == 5
        assert ledger.applied_seq == 1
        ledger.close()
        reopened = IntakeLedger.open(tmp_path)
        assert reopened.events_seen == 5
        reopened.close()

    def test_closed_ledger_refuses_writes(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        ledger.close()
        with pytest.raises(StorageError, match="closed"):
            ledger.commit(1, ["a"], 1)
        with pytest.raises(StorageError, match="closed"):
            ledger.compact()


class TestTornTail:
    def test_torn_final_line_is_truncated_on_open(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        ledger.commit(1, ["a"], 1)
        ledger.close()
        path = tmp_path / LEDGER_NAME
        with path.open("a") as handle:
            handle.write('{"seq": 2, "keys": ["b"')  # no newline: torn append
        reopened = IntakeLedger.open(tmp_path)
        assert "a" in reopened and "b" not in reopened
        assert _records(path) == [{"seq": 1, "keys": ["a"], "events": 1}]
        # The file is appendable again after the truncation.
        reopened.commit(2, ["c"], 1)
        assert "c" in reopened
        reopened.close()

    def test_corruption_before_the_final_line_raises(self, tmp_path):
        path = tmp_path / LEDGER_NAME
        path.write_text('not json\n{"seq": 1, "keys": ["a"], "events": 1}\n')
        with pytest.raises(StorageError):
            IntakeLedger.open(tmp_path)


class TestCompaction:
    def test_compact_collapses_to_one_record_same_seen_set(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        for seq in range(1, 6):
            ledger.commit(seq, [f"k{seq}"], 2)
        assert ledger.records == 5
        ledger.compact()
        assert ledger.records == 1
        path = tmp_path / LEDGER_NAME
        (record,) = _records(path)
        assert record == {
            "seq": 5,
            "keys": ["k1", "k2", "k3", "k4", "k5"],
            "events": 10,
        }
        # The reopened journal handle appends after the compacted record.
        ledger.commit(6, ["k6"], 1)
        assert len(_records(path)) == 2
        ledger.close()
        reopened = IntakeLedger.open(tmp_path)
        assert len(reopened) == 6 and reopened.events_seen == 11
        reopened.close()

    def test_compact_is_a_noop_on_a_single_record(self, tmp_path):
        ledger = IntakeLedger.open(tmp_path)
        ledger.commit(1, ["a"], 1)
        before = (tmp_path / LEDGER_NAME).read_text()
        ledger.compact()
        assert (tmp_path / LEDGER_NAME).read_text() == before
        ledger.close()


class TestReconcile:
    def test_journal_keys_missing_from_the_ledger_are_recommitted(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            json.dumps({"seq": 1, "label": "", "insertions": [[1]], "keys": ["a", "b"]})
            + "\n"
            + json.dumps({"seq": 2, "label": "", "insertions": [[2]], "keys": ["c"]})
            + "\n"
        )
        ledger = IntakeLedger.open(tmp_path)
        ledger.commit(1, ["a", "b"], 2)  # seq 1 made it; seq 2's commit was lost
        assert ledger.reconcile(journal) == 1
        assert "c" in ledger and ledger.applied_seq == 2
        # Idempotent: a second reconcile finds nothing missing.
        assert ledger.reconcile(journal) == 0
        ledger.close()

    def test_records_without_keys_are_ignored(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(json.dumps({"seq": 1, "label": "", "insertions": [[1]]}) + "\n")
        ledger = IntakeLedger.open(tmp_path)
        assert ledger.reconcile(journal) == 0
        assert len(ledger) == 0
        ledger.close()

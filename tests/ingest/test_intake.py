"""Intake ↔ session integration: dedup, the ledger hook, the high-water pin."""

from __future__ import annotations

import json

import pytest

from repro.core.session import JOURNAL_NAME, MaintenanceSession
from repro.errors import StorageError
from repro.ingest import LEDGER_NAME, IngestEvent, IntakeLedger, TransactionIntake

from .conftest import make_events, make_session


def _journal_records(session_dir):
    path = session_dir / JOURNAL_NAME
    return [json.loads(line) for line in path.read_text().splitlines()]


def _ledger_records(session_dir):
    path = session_dir / LEDGER_NAME
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestDedup:
    def test_each_key_applies_at_most_once(self, session):
        intake = TransactionIntake(session)
        events = make_events(6)
        first = intake.submit(events[:4])
        assert (first.applied, first.duplicates, first.seq) == (4, 0, 1)
        # Overlapping redelivery plus two fresh events.
        second = intake.submit(events[2:])
        assert (second.applied, second.duplicates, second.seq) == (2, 2, 2)
        assert len(session.database) == 10 + 6

    def test_intra_batch_duplicates_collapse_to_first(self, session):
        intake = TransactionIntake(session)
        event = make_events(1)[0]
        report = intake.submit([event, event, event])
        assert (report.applied, report.duplicates) == (1, 2)

    def test_keys_are_journaled_with_the_batch(self, session):
        intake = TransactionIntake(session)
        intake.submit(make_events(3))
        (record,) = _journal_records(session.directory)
        assert record["keys"] == ["ev-0", "ev-1", "ev-2"]
        assert record["seq"] == 1

    def test_delete_events_remove_transactions(self, session):
        intake = TransactionIntake(session)
        intake.submit([IngestEvent(key="add", op="insert", items=(7, 8))])
        before = len(session.database)
        intake.submit([IngestEvent(key="del", op="delete", items=(7, 8))])
        assert len(session.database) == before - 1


class TestFullyDuplicateBatch:
    """The replay-stall bugfix pin: an all-duplicate micro-batch must advance
    the ledger's high-water mark — without journaling and without burning a
    sequence number — or a producer resuming from the high-water mark would
    re-offer the same duplicates forever."""

    def test_advances_high_water_without_journal_or_seq(self, session):
        intake = TransactionIntake(session)
        events = make_events(4)
        intake.submit(events)
        journal_before = _journal_records(session.directory)
        assert intake.ledger.events_seen == 4

        report = intake.submit(events)  # the full batch redelivered
        assert (report.applied, report.duplicates) == (0, 4)
        assert report.seq == 1  # no sequence number burned
        assert session.applied_seq == 1
        assert _journal_records(session.directory) == journal_before  # not journaled
        assert intake.ledger.events_seen == 8  # but the high-water DID advance
        # Durably: the ledger file carries the empty-keys record.
        assert _ledger_records(session.directory)[-1] == {
            "seq": 1,
            "keys": [],
            "events": 8,
        }

    def test_high_water_survives_reopen(self, session, tmp_path):
        intake = TransactionIntake(session)
        events = make_events(4)
        intake.submit(events)
        intake.submit(events)
        directory = session.directory
        session.close()
        with MaintenanceSession.open(directory) as reopened:
            resumed = TransactionIntake(reopened)
            assert resumed.ledger.events_seen == 8
            # Progress past the duplicate batch is visible, so replay converges.
            report = resumed.submit(events)
            assert report.applied == 0
            assert resumed.ledger.events_seen == 12


class TestSessionLedgerLifecycle:
    def test_checkpoint_compacts_the_ledger(self, tmp_path):
        with make_session(tmp_path / "s", checkpoint_interval=2) as session:
            intake = TransactionIntake(session)
            intake.submit(make_events(2))
            assert len(_ledger_records(session.directory)) == 1
            intake.submit(make_events(2, start=2))  # triggers the auto-checkpoint
            assert session.checkpoint_seq == 2
            records = _ledger_records(session.directory)
            assert len(records) == 1  # compacted alongside the journal
            assert records[0]["keys"] == ["ev-0", "ev-1", "ev-2", "ev-3"]

    def test_session_close_closes_the_attached_ledger(self, tmp_path):
        session = make_session(tmp_path / "s")
        intake = TransactionIntake(session)
        session.close()
        with pytest.raises(StorageError, match="closed"):
            intake.ledger.commit(1, ["x"], 1)

    def test_second_ledger_attachment_is_refused(self, session):
        TransactionIntake(session)
        with pytest.raises(StorageError, match="already has an intake ledger"):
            session.attach_ledger(IntakeLedger.open(session.directory))

    def test_reattaching_after_reopen_reuses_the_persisted_state(self, tmp_path):
        session = make_session(tmp_path / "s")
        TransactionIntake(session).submit(make_events(3))
        directory = session.directory
        session.close()
        with MaintenanceSession.open(directory) as reopened:
            intake = TransactionIntake(reopened)
            report = intake.submit(make_events(5))  # 3 dups, 2 fresh
            assert (report.applied, report.duplicates) == (2, 3)

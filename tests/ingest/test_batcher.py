"""Micro-batcher: count/time watermarks against an injected clock."""

from __future__ import annotations

import pytest

from repro.ingest import MicroBatcher

from .conftest import make_events


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCountWatermark:
    def test_cuts_every_max_events(self):
        batcher = MicroBatcher(max_events=3)
        events = make_events(7)
        cuts = [cut for event in events for cut in batcher.offer(event)]
        assert [len(cut) for cut in cuts] == [3, 3]
        assert batcher.pending == 1
        assert batcher.flush() == events[6:]
        assert batcher.flush() is None

    def test_preserves_order_without_loss(self):
        batcher = MicroBatcher(max_events=4)
        events = make_events(10)
        seen = [cut for event in events for cut in batcher.offer(event)]
        final = batcher.flush()
        assert final is not None
        seen.append(final)
        assert [event for cut in seen for event in cut] == events

    def test_max_events_one(self):
        batcher = MicroBatcher(max_events=1)
        (event,) = make_events(1)
        assert batcher.offer(event) == [[event]]


class TestTimeWatermark:
    def test_poll_cuts_an_aged_batch(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_events=100, max_seconds=5.0, clock=clock)
        events = make_events(2)
        assert batcher.offer(events[0]) == []
        assert batcher.offer(events[1]) == []
        assert batcher.poll() is None  # not aged yet
        clock.advance(5.0)
        assert batcher.poll() == events

    def test_deadline_counts_from_the_first_event(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_events=100, max_seconds=5.0, clock=clock)
        events = make_events(2)
        batcher.offer(events[0])
        clock.advance(4.0)
        batcher.offer(events[1])  # a late event does not reset the deadline
        clock.advance(1.0)
        assert batcher.poll() == events

    def test_late_event_goes_to_the_next_batch(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_events=100, max_seconds=5.0, clock=clock)
        events = make_events(3)
        batcher.offer(events[0])
        batcher.offer(events[1])
        clock.advance(6.0)
        # The aged batch cuts first; the late event starts a fresh batch.
        assert batcher.offer(events[2]) == [events[:2]]
        assert batcher.pending == 1
        assert batcher.poll() is None  # the fresh batch's deadline restarted
        clock.advance(5.0)
        assert batcher.poll() == [events[2]]

    def test_time_and_count_can_cut_twice_in_one_offer(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_events=1, max_seconds=5.0, clock=clock)
        events = make_events(2)
        assert batcher.offer(events[0]) == [[events[0]]]
        clock.advance(10.0)
        assert batcher.offer(events[1]) == [[events[1]]]

    def test_no_time_watermark_means_poll_never_cuts(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_events=100, clock=clock)
        batcher.offer(make_events(1)[0])
        clock.advance(1e9)
        assert batcher.poll() is None


class TestValidation:
    def test_rejects_nonpositive_watermarks(self):
        with pytest.raises(ValueError, match="max_events"):
            MicroBatcher(max_events=0)
        with pytest.raises(ValueError, match="max_seconds"):
            MicroBatcher(max_seconds=0.0)

"""Shared helpers for the ingest tier: tiny sessions, event factories, streams."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.options import FupOptions
from repro.core.session import MaintenanceSession
from repro.ingest import IngestEvent

#: Small enough that every backend mines it instantly, rich enough that an
#: increment moves supports across the threshold.
BASE_DB = [
    [1, 2, 3],
    [1, 2],
    [2, 3],
    [1, 3],
    [1, 2, 3],
    [2, 4],
    [3, 4],
    [1, 2, 4],
    [1, 4],
    [2, 3, 4],
]


def make_events(count: int, *, start: int = 0, prefix: str = "ev") -> list[IngestEvent]:
    """Deterministic insert events with distinct keys and varied transactions."""
    return [
        IngestEvent(
            key=f"{prefix}-{index}",
            op="insert",
            items=(1 + index % 3, 2 + index % 3),
        )
        for index in range(start, start + count)
    ]


def write_jsonl(path: Path, events: list[IngestEvent]) -> Path:
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps({"key": event.key, "op": event.op, "items": list(event.items)})
                + "\n"
            )
    return path


def make_session(
    directory: Path,
    *,
    backend: str = "horizontal",
    checkpoint_interval: int = 100,
) -> MaintenanceSession:
    return MaintenanceSession.create(
        directory,
        BASE_DB,
        min_support=0.2,
        min_confidence=0.5,
        fup_options=FupOptions(backend=backend),
        checkpoint_interval=checkpoint_interval,
    )


@pytest.fixture
def session(tmp_path):
    created = make_session(tmp_path / "session")
    yield created
    created.close()

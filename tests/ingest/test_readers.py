"""Reader tier: incremental parsing, torn tails, corruption, formats."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import IngestError
from repro.ingest import EventStreamReader, IngestEvent, open_event_stream, sniff_format


def _reader(text: str, format: str = "jsonl", **kwargs) -> EventStreamReader:
    return EventStreamReader(io.BytesIO(text.encode()), format, **kwargs)


def _jsonl(key: str, items: list[int], op: str | None = None) -> str:
    payload: dict[str, object] = {"key": key, "items": items}
    if op is not None:
        payload["op"] = op
    return json.dumps(payload) + "\n"


class TestJsonl:
    def test_parses_events_in_order(self):
        reader = _reader(_jsonl("a", [3, 1]) + _jsonl("b", [2], op="delete"))
        events = list(reader.events())
        assert events == [
            IngestEvent(key="a", op="insert", items=(1, 3)),
            IngestEvent(key="b", op="delete", items=(2,)),
        ]
        assert reader.torn_tail == b""

    def test_op_defaults_to_insert_and_key_may_be_int(self):
        reader = _reader('{"key": 7, "items": [5]}\n')
        (event,) = reader.events()
        assert event == IngestEvent(key="7", op="insert", items=(5,))

    def test_blank_lines_are_skipped(self):
        reader = _reader("\n" + _jsonl("a", [1]) + "   \n")
        assert len(list(reader.events())) == 1

    @pytest.mark.parametrize(
        "record",
        [
            '{"items": [1]}',  # no key
            '{"key": "", "items": [1]}',  # empty key
            '{"key": "a", "items": [1], "op": "upsert"}',  # unknown op
            '{"key": "a"}',  # no items
            '{"key": "a", "items": "1 2"}',  # items not a list
            '{"key": "a", "items": []}',  # empty transaction
            '{"key": true, "items": [1]}',  # boolean key
            '["a", [1]]',  # not an object
        ],
    )
    def test_invalid_records_raise_with_line_context(self, record):
        reader = _reader(_jsonl("ok", [1]) + record + "\n", name="stream.jsonl")
        iterator = reader.events()
        assert next(iterator).key == "ok"
        with pytest.raises(IngestError, match="stream.jsonl:2"):
            next(iterator)


class TestCsv:
    def test_parses_rows(self):
        reader = _reader("a,insert,3 1\nb,delete,2\n", format="csv")
        events = list(reader.events())
        assert events == [
            IngestEvent(key="a", op="insert", items=(1, 3)),
            IngestEvent(key="b", op="delete", items=(2,)),
        ]

    def test_quoted_key_may_contain_comma(self):
        reader = _reader('"a,b",insert,1\n', format="csv")
        (event,) = reader.events()
        assert event.key == "a,b"

    @pytest.mark.parametrize("row", ["a,insert", "a,insert,1 x", "a,upsert,1"])
    def test_invalid_rows_raise(self, row):
        reader = _reader(row + "\n", format="csv")
        with pytest.raises(IngestError):
            list(reader.events())


class TestTornTail:
    def test_unterminated_final_record_is_buffered_not_parsed(self):
        torn = '{"key": "late", "ite'
        reader = _reader(_jsonl("a", [1]) + torn)
        events = list(reader.events())
        assert [event.key for event in events] == ["a"]
        assert reader.torn_tail == torn.encode()

    def test_repoll_completes_a_torn_record(self):
        """Follow mode: the producer finishes the line between two polls."""
        stream = io.BytesIO()
        reader = EventStreamReader(stream, "jsonl")
        line = _jsonl("a", [1])
        stream.write(line[:10].encode())
        stream.seek(0)
        assert list(reader.events()) == []
        assert reader.torn_tail == line[:10].encode()
        position = stream.tell()
        stream.write(line[10:].encode() + _jsonl("b", [2]).encode())
        stream.seek(position)
        assert [event.key for event in reader.events()] == ["a", "b"]
        assert reader.torn_tail == b""

    def test_complete_but_invalid_line_is_corruption_not_torn(self):
        reader = _reader('{"key": "a", "items": [1\n')
        with pytest.raises(IngestError):
            list(reader.events())


class TestBoundedMemory:
    def test_records_spanning_chunks_parse(self):
        events_text = "".join(_jsonl(f"k{i}", [1 + i % 5]) for i in range(100))
        reader = _reader(events_text, chunk_size=7)
        assert len(list(reader.events())) == 100

    def test_buffer_holds_only_the_partial_record(self):
        events_text = "".join(_jsonl(f"k{i}", [1]) for i in range(50))
        reader = _reader(events_text, chunk_size=16)
        for _ in reader.events():
            assert len(reader._buffer) < 16 + 40  # one chunk + one record


class TestOpenEventStream:
    def test_sniffs_jsonl_and_csv(self, tmp_path):
        assert sniff_format(tmp_path / "x.jsonl") == "jsonl"
        assert sniff_format(tmp_path / "x.ndjson") == "jsonl"
        assert sniff_format(tmp_path / "x.csv") == "csv"
        with pytest.raises(IngestError, match="cannot infer"):
            sniff_format(tmp_path / "x.dat")

    def test_opens_and_owns_a_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(_jsonl("a", [1]))
        with open_event_stream(path) as reader:
            assert [event.key for event in reader.events()] == ["a"]

    def test_missing_file_raises_ingest_error(self, tmp_path):
        with pytest.raises(IngestError, match="cannot open"):
            open_event_stream(tmp_path / "absent.jsonl")

    def test_unknown_format_refused(self):
        with pytest.raises(IngestError, match="unknown event format"):
            EventStreamReader(io.BytesIO(b""), "xml")

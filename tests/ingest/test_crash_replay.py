"""The fault-injection tier: die at every named crash point, replay, converge.

Every durability claim the ingest layer makes gets killed here:

* ``after-journal-before-ledger`` — the batch is journaled and applied but
  its keys never reach the ledger; recovery must reconcile them from the
  journal or a producer replay double-counts.
* ``after-ledger-before-checkpoint`` — the ledger committed but the due
  checkpoint never ran; recovery replays the journal tail.
* ``mid-ledger-fsync`` — the process dies inside the ledger append, leaving
  a torn (half-written, unterminated) ledger line behind.
* torn final JSONL line — the *producer* dies mid-write, so the input
  stream itself ends in a torn record.

The convergence oracle is the acceptance criterion verbatim: after the
crash, recovery plus a **full producer replay** yields a rule lattice
byte-identical (the serialized itemset state) to a single clean ingest of
the same stream — on all three counting backends.  Crashes come in two
flavours: an in-process raise (fast; exercises every backend × point) and
a real ``SIGKILL`` of a ``repro ingest`` subprocess (no ``finally`` blocks
run — the only honest power-loss simulation).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

import repro.faults as faults
from repro.core.session import MaintenanceSession, save_state
from repro.faults import CRASH_POINT_ENV, InjectedCrash
from repro.ingest import LEDGER_NAME, MicroBatcher, open_event_stream, run_ingest

from .conftest import make_events, make_session, write_jsonl

CRASH_POINTS = (
    "after-journal-before-ledger",
    "after-ledger-before-checkpoint",
    "mid-ledger-fsync",
)
BACKENDS = ("horizontal", "vertical", "partitioned")

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@dataclass(frozen=True)
class CrashPoint:
    """One named point, armable for an in-process raise or a subprocess kill."""

    name: str

    def env(self, action: str, skip: int = 0) -> dict[str, str]:
        return {CRASH_POINT_ENV: f"{self.name}:{action}:{skip}"}


@pytest.fixture(params=CRASH_POINTS)
def crash_point(request, monkeypatch):
    # Fresh traversal counters per test: the skip count must count *this*
    # test's traversals, not every armed run of the process.
    monkeypatch.setattr(faults, "_HITS", {})
    return CrashPoint(request.param)


def _stream_with_duplicates(path: Path):
    """18 events, the middle six delivered twice (producer redelivery)."""
    events = make_events(18)
    return write_jsonl(path, events[:12] + events[6:12] + events[12:])


def _lattice_bytes(directory: Path, dump: Path) -> bytes:
    with MaintenanceSession.open(directory) as session:
        save_state(session.result, dump)
    state = json.loads(dump.read_text())
    # ``algorithm`` records which code path produced the last apply ("fup",
    # "noop", "restored") — provenance, not lattice state.  Everything else
    # (itemsets, counts, database size, support) must match to the byte.
    state.pop("algorithm", None)
    return json.dumps(state, sort_keys=True).encode()


def _clean_reference(tmp_path: Path, stream: Path, backend: str) -> bytes:
    ref_dir = tmp_path / f"ref-{backend}"
    with make_session(ref_dir, backend=backend, checkpoint_interval=2) as session:
        with open_event_stream(stream) as reader:
            run_ingest(session, reader, MicroBatcher(max_events=4))
    return _lattice_bytes(ref_dir, tmp_path / "ref-lattice.json")


def _ingest_cli(session_dir: Path, stream: Path, *, extra_env: dict[str, str] | None = None):
    env = {**os.environ, "PYTHONPATH": str(SRC_DIR)}
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "ingest",
            str(session_dir),
            "--source",
            str(stream),
            "--batch-size",
            "4",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestRaiseAndReplay:
    """In-process flavour: InjectedCrash at the point, then recover + replay."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_converges_to_the_clean_run(self, crash_point, backend, tmp_path, monkeypatch):
        stream = _stream_with_duplicates(tmp_path / "events.jsonl")
        reference = _clean_reference(tmp_path, stream, backend)

        crash_dir = tmp_path / "crash"
        session = make_session(crash_dir, backend=backend, checkpoint_interval=2)
        # Let one traversal pass so the crash lands mid-stream, with batches
        # already applied and a checkpoint already due.
        monkeypatch.setenv(CRASH_POINT_ENV, f"{crash_point.name}:raise:1")
        with open_event_stream(stream) as reader:
            with pytest.raises(InjectedCrash):
                run_ingest(session, reader, MicroBatcher(max_events=4))
        # close() is write-free, so the on-disk state equals a process kill.
        session.close()
        monkeypatch.delenv(CRASH_POINT_ENV)

        # Recovery + the producer's full replay.
        with MaintenanceSession.open(crash_dir) as session:
            with open_event_stream(stream) as reader:
                summary = run_ingest(session, reader, MicroBatcher(max_events=4))
        assert summary.events == 24  # the whole stream was re-offered
        assert _lattice_bytes(crash_dir, tmp_path / "crash-lattice.json") == reference


class TestSigkillAndReplay:
    """Subprocess flavour: a real SIGKILL of `repro ingest`, then replay."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_converges_to_the_clean_run(self, crash_point, backend, tmp_path):
        stream = _stream_with_duplicates(tmp_path / "events.jsonl")
        reference = _clean_reference(tmp_path, stream, backend)

        crash_dir = tmp_path / "crash"
        make_session(crash_dir, backend=backend, checkpoint_interval=2).close()

        killed = _ingest_cli(
            crash_dir, stream, extra_env=crash_point.env("kill", skip=1)
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        replayed = _ingest_cli(crash_dir, stream)
        assert replayed.returncode == 0, replayed.stderr
        assert "ingested 24 event(s)" in replayed.stdout
        assert _lattice_bytes(crash_dir, tmp_path / "crash-lattice.json") == reference


class TestMidLedgerFsyncTearsTheLedger:
    def test_torn_ledger_line_is_left_then_recovered(self, tmp_path, monkeypatch):
        monkeypatch.setattr(faults, "_HITS", {})
        stream = _stream_with_duplicates(tmp_path / "events.jsonl")
        crash_dir = tmp_path / "crash"
        session = make_session(crash_dir, checkpoint_interval=100)
        monkeypatch.setenv(CRASH_POINT_ENV, "mid-ledger-fsync:raise:1")
        with open_event_stream(stream) as reader:
            with pytest.raises(InjectedCrash):
                run_ingest(session, reader, MicroBatcher(max_events=4))
        session.close()
        monkeypatch.delenv(CRASH_POINT_ENV)

        # The crash really left an unterminated ledger line behind.
        raw = (crash_dir / LEDGER_NAME).read_bytes()
        assert raw and not raw.endswith(b"\n")

        with MaintenanceSession.open(crash_dir) as session:
            with open_event_stream(stream) as reader:
                summary = run_ingest(session, reader, MicroBatcher(max_events=4))
            # The journal-side reconcile re-committed the applied-but-lost keys.
            assert summary.recovered_keys == 4
            assert summary.applied + summary.duplicates == 24
        reference = _clean_reference(tmp_path, stream, "horizontal")
        assert _lattice_bytes(crash_dir, tmp_path / "crash-lattice.json") == reference


class TestTornFinalStreamLine:
    """The fourth named point: the *producer* dies mid-write."""

    def test_partial_stream_then_full_replay_converges(self, tmp_path):
        events = make_events(18)
        full = write_jsonl(tmp_path / "full.jsonl", events)
        reference = _clean_reference(tmp_path, full, "horizontal")

        # The producer got through 10 events and half of the 11th.
        torn = tmp_path / "torn.jsonl"
        complete_lines = full.read_text().splitlines(keepends=True)
        torn.write_text("".join(complete_lines[:10]) + complete_lines[10][:13])

        crash_dir = tmp_path / "crash"
        session = make_session(crash_dir, checkpoint_interval=2)
        with open_event_stream(torn) as reader:
            summary = run_ingest(session, reader, MicroBatcher(max_events=4))
            assert summary.applied == 10
            assert summary.torn_tail > 0  # tolerated, never parsed
        session.close()

        # The restarted producer replays the whole stream into a fresh file.
        with MaintenanceSession.open(crash_dir) as session:
            with open_event_stream(full) as reader:
                summary = run_ingest(session, reader, MicroBatcher(max_events=4))
            assert summary.applied == 8
            assert summary.duplicates == 10
        assert _lattice_bytes(crash_dir, tmp_path / "crash-lattice.json") == reference

"""Unit tests for the canonical itemset helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidItemsetError
from repro.itemsets import (
    contains,
    format_itemset,
    is_canonical,
    itemset,
    one_extensions,
    parse_itemset,
    proper_subsets,
    subsets_of_size,
    support_fraction,
    union,
)


class TestItemsetConstruction:
    def test_sorts_and_deduplicates(self):
        assert itemset([3, 1, 2, 1]) == (1, 2, 3)

    def test_accepts_any_iterable(self):
        assert itemset({5, 2}) == (2, 5)
        assert itemset(iter([7])) == (7,)

    def test_single_item(self):
        assert itemset([0]) == (0,)

    def test_rejects_empty(self):
        with pytest.raises(InvalidItemsetError):
            itemset([])

    def test_rejects_negative_items(self):
        with pytest.raises(InvalidItemsetError):
            itemset([1, -2])

    def test_rejects_non_integer_items(self):
        with pytest.raises(InvalidItemsetError):
            itemset([1, "a"])

    def test_rejects_booleans(self):
        with pytest.raises(InvalidItemsetError):
            itemset([True, 2])

    def test_rejects_non_iterable(self):
        with pytest.raises(InvalidItemsetError):
            itemset(42)  # type: ignore[arg-type]


class TestIsCanonical:
    def test_accepts_sorted_tuple(self):
        assert is_canonical((1, 2, 5))

    def test_rejects_unsorted(self):
        assert not is_canonical((2, 1))

    def test_rejects_duplicates(self):
        assert not is_canonical((1, 1, 2))

    def test_rejects_list(self):
        assert not is_canonical([1, 2])  # type: ignore[arg-type]

    def test_rejects_empty_tuple(self):
        assert not is_canonical(())

    def test_rejects_negative(self):
        assert not is_canonical((-1, 2))

    def test_rejects_bool_members(self):
        assert not is_canonical((True, 2))


class TestSetOperations:
    def test_union_is_canonical(self):
        assert union((1, 3), (2, 3)) == (1, 2, 3)

    def test_union_disjoint(self):
        assert union((1,), (2,)) == (1, 2)

    def test_subsets_of_size(self):
        assert list(subsets_of_size((1, 2, 3), 2)) == [(1, 2), (1, 3), (2, 3)]

    def test_subsets_of_size_zero(self):
        assert list(subsets_of_size((1, 2), 0)) == []

    def test_subsets_of_size_too_large(self):
        assert list(subsets_of_size((1, 2), 3)) == []

    def test_proper_subsets(self):
        assert set(proper_subsets((1, 2, 3))) == {
            (1,), (2,), (3,), (1, 2), (1, 3), (2, 3),
        }

    def test_proper_subsets_of_singleton_is_empty(self):
        assert list(proper_subsets((1,))) == []

    def test_one_extensions(self):
        assert set(one_extensions((2,), [1, 2, 3])) == {(1, 2), (2, 3)}

    def test_one_extensions_skips_members(self):
        assert list(one_extensions((1, 2), [1, 2])) == []

    def test_contains_true(self):
        assert contains((1, 2, 3, 4), (2, 4))

    def test_contains_false(self):
        assert not contains((1, 2, 3), (2, 5))


class TestSupportFraction:
    def test_plain_division(self):
        assert support_fraction(3, 10) == pytest.approx(0.3)

    def test_zero_total_is_zero(self):
        assert support_fraction(5, 0) == 0.0


class TestFormatting:
    def test_format_plain(self):
        assert format_itemset((1, 2)) == "{1, 2}"

    def test_format_with_names(self):
        assert format_itemset((1, 2), {1: "beer", 2: "nappies"}) == "{beer, nappies}"

    def test_format_with_partial_names(self):
        assert format_itemset((1, 2), {1: "beer"}) == "{beer, 2}"

    def test_parse_braced(self):
        assert parse_itemset("{3, 1, 2}") == (1, 2, 3)

    def test_parse_space_separated(self):
        assert parse_itemset("5 4") == (4, 5)

    def test_parse_round_trip(self):
        original = (2, 7, 9)
        assert parse_itemset(format_itemset(original)) == original

    def test_parse_rejects_empty(self):
        with pytest.raises(InvalidItemsetError):
            parse_itemset("{}")

    def test_parse_rejects_non_integer(self):
        with pytest.raises(InvalidItemsetError):
            parse_itemset("1 two")

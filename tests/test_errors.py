"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            errors.InvalidItemsetError,
            errors.InvalidTransactionError,
            errors.InvalidThresholdError,
            errors.EmptyDatabaseError,
            errors.StaleStateError,
            errors.StorageError,
            errors.GeneratorConfigError,
            errors.ExperimentError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, errors.ReproError)
        assert issubclass(exception_type, Exception)

    def test_catching_the_base_class_catches_library_errors(self):
        with pytest.raises(errors.ReproError):
            repro.itemset([])


class TestPublicApi:
    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_core_classes_exposed_at_top_level(self):
        assert repro.FupUpdater.algorithm_name == "fup"
        assert repro.Fup2Updater.algorithm_name == "fup2"
        assert repro.AprioriMiner.algorithm_name == "apriori"
        assert repro.DhpMiner.algorithm_name == "dhp"

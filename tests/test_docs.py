"""Drift checks for the generated documentation.

Two files under ``docs/`` are build artifacts of the code itself:

* ``docs/cli.md`` — rendered from the argparse tree by ``repro docs``;
* the marker-delimited block of ``docs/reproduction.md`` — the
  deterministic work-ratio tables of the ``repro reproduce --quick`` matrix.

These tests regenerate both and compare byte-for-byte, so a change to the
CLI surface or to anything the quick matrix measures must ship with its
regenerated docs in the same commit (CI runs the same checks through the
CLI entry points).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import render_cli_markdown
from repro.harness.experiments import (
    DOCS_BEGIN,
    DOCS_END,
    ExperimentMatrix,
    generated_block_drift,
    run_matrix,
)

DOCS_DIR = Path(__file__).resolve().parents[1] / "docs"


def test_docs_directory_is_complete():
    expected = {"architecture.md", "paper-map.md", "cli.md", "reproduction.md"}
    assert expected <= {path.name for path in DOCS_DIR.glob("*.md")}


def test_cli_reference_matches_parser():
    committed = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
    regenerated = render_cli_markdown()
    assert committed == regenerated, (
        "docs/cli.md drifted from the argparse tree; run "
        "`python -m repro.cli docs --out docs/cli.md`"
    )


def test_cli_reference_covers_every_subcommand():
    committed = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
    for command in (
        "repro generate",
        "repro mine",
        "repro update",
        "repro maintain",
        "repro session apply",
        "repro rules",
        "repro compare",
        "repro reproduce",
        "repro docs",
    ):
        assert f"## `{command}`" in committed, f"{command} missing from docs/cli.md"


@pytest.mark.slow_docs_check
def test_reproduction_tables_match_quick_matrix():
    """The committed tables must equal a fresh seeded --quick run, byte for byte."""
    committed = (DOCS_DIR / "reproduction.md").read_text(encoding="utf-8")
    assert DOCS_BEGIN in committed and DOCS_END in committed
    report = run_matrix(ExperimentMatrix.quick())
    drift = generated_block_drift(committed, report.deterministic_markdown())
    assert drift is None, (
        "docs/reproduction.md drifted from the regenerated tables; run "
        f"`python -m repro.cli reproduce --quick --update-docs docs/reproduction.md`\n{drift}"
    )

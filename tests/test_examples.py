"""Smoke tests for the example scripts.

Examples are documentation that executes; without a test they rot silently
the moment an API they demonstrate moves.  Each script is run exactly as a
reader would run it — a fresh interpreter, from a scratch working directory
(some examples create session directories) — and must exit 0.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SRC_DIR = Path(__file__).resolve().parents[1] / "src"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    """The glob must keep finding the walkthroughs (guards against renames)."""
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert {"quickstart.py", "streaming_maintenance.py"} <= names
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[script.stem for script in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script: Path, tmp_path: Path):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=environment,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"

"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import io
import json
import sys
from pathlib import Path

import pytest

from repro import (
    AprioriMiner,
    MaintenanceSession,
    TransactionDatabase,
    load_database,
    save_database,
)
from repro.cli import build_parser, load_state, main, save_state
from repro.errors import ReproError


@pytest.fixture
def workload_files(tmp_path, random_database_factory):
    """A database file, an increment file and their in-memory counterparts."""
    database = random_database_factory(transactions=300, items=20, max_size=7, seed=3)
    original = database.slice(0, 250, name="original")
    increment = database.slice(250, name="increment")
    database_path = tmp_path / "db.txt"
    increment_path = tmp_path / "incr.txt"
    save_database(original, database_path)
    save_database(increment, increment_path)
    return {
        "database_path": database_path,
        "increment_path": increment_path,
        "original": original,
        "increment": increment,
    }


class TestStateFiles:
    def test_round_trip(self, tmp_path, small_database):
        result = AprioriMiner(0.3).mine(small_database)
        path = tmp_path / "state.json"
        save_state(result, path)
        lattice, min_support = load_state(path)
        assert lattice.supports() == result.lattice.supports()
        assert lattice.database_size == len(small_database)
        assert min_support == 0.3

    def test_state_file_is_json(self, tmp_path, small_database):
        path = tmp_path / "state.json"
        save_state(AprioriMiner(0.3).mine(small_database), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-itemset-state"
        assert payload["algorithm"] == "apriori"

    def test_load_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ReproError):
            load_state(path)


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_requires_support(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "db.txt"])


class TestGenerateCommand:
    def test_generates_files_of_requested_size(self, tmp_path, capsys):
        database_path = tmp_path / "db.txt"
        increment_path = tmp_path / "incr.txt"
        code = main(
            [
                "generate",
                str(database_path),
                "--increment", str(increment_path),
                "--database-size", "200",
                "--increment-size", "40",
                "--items", "50",
                "--patterns", "30",
                "--transaction-size", "6",
                "--pattern-size", "3",
                "--seed", "9",
            ]
        )
        assert code == 0
        assert len(load_database(database_path)) == 200
        assert len(load_database(increment_path)) == 40
        assert "wrote 200 transactions" in capsys.readouterr().out

    def test_generate_without_increment_file(self, tmp_path):
        database_path = tmp_path / "db.txt"
        code = main(
            [
                "generate", str(database_path),
                "--database-size", "50", "--increment-size", "10",
                "--items", "30", "--patterns", "20",
            ]
        )
        assert code == 0
        assert database_path.exists()


class TestMineCommand:
    def test_mine_writes_state(self, tmp_path, workload_files, capsys):
        state_path = tmp_path / "state.json"
        code = main(
            [
                "mine", str(workload_files["database_path"]),
                "--min-support", "0.1",
                "--state", str(state_path),
            ]
        )
        assert code == 0
        lattice, min_support = load_state(state_path)
        expected = AprioriMiner(0.1).mine(workload_files["original"])
        assert lattice.supports() == expected.lattice.supports()
        assert min_support == 0.1
        assert "large itemsets" in capsys.readouterr().out

    def test_mine_with_dhp_and_rules(self, workload_files, capsys):
        code = main(
            [
                "mine", str(workload_files["database_path"]),
                "--algorithm", "dhp",
                "--min-support", "0.1",
                "--min-confidence", "0.5",
                "--top", "3",
            ]
        )
        assert code == 0
        assert "strong rules" in capsys.readouterr().out


class TestUpdateCommand:
    def test_update_matches_remining(self, tmp_path, workload_files, capsys):
        state_path = tmp_path / "state.json"
        out_state = tmp_path / "updated.json"
        out_database = tmp_path / "updated.txt"
        assert main(
            [
                "mine", str(workload_files["database_path"]),
                "--min-support", "0.1", "--state", str(state_path),
            ]
        ) == 0
        code = main(
            [
                "update",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                str(state_path),
                "--out-state", str(out_state),
                "--out-database", str(out_database),
            ]
        )
        assert code == 0
        lattice, _ = load_state(out_state)
        updated = workload_files["original"].concatenate(workload_files["increment"])
        expected = AprioriMiner(0.1).mine(updated)
        assert lattice.supports() == expected.lattice.supports()
        assert list(load_database(out_database)) == list(updated)
        assert "fup" in capsys.readouterr().out

    def test_update_with_stale_state_fails_cleanly(self, tmp_path, workload_files, capsys):
        # State mined from the *increment* does not match the database size.
        state_path = tmp_path / "state.json"
        save_state(AprioriMiner(0.1).mine(workload_files["increment"]), state_path)
        code = main(
            [
                "update",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                str(state_path),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRulesCommand:
    def test_rules_from_state(self, tmp_path, small_database, capsys):
        state_path = tmp_path / "state.json"
        save_state(AprioriMiner(0.3).mine(small_database), state_path)
        code = main(["rules", str(state_path), "--min-confidence", "0.6", "--top", "5"])
        assert code == 0
        assert "strong rules" in capsys.readouterr().out


class TestMaintainCommand:
    def test_batched_session_matches_remining(self, tmp_path, workload_files, capsys):
        out_state = tmp_path / "final.json"
        code = main(
            [
                "maintain",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                "--min-support", "0.1",
                "--min-confidence", "0.5",
                "--batches", "4",
                "--backend", "vertical",
                "--out-state", str(out_state),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "maintenance session: 4 batches" in output
        assert "batch-3" in output
        lattice, _ = load_state(out_state)
        updated = workload_files["original"].concatenate(workload_files["increment"])
        expected = AprioriMiner(0.1).mine(updated)
        assert lattice.supports() == expected.lattice.supports()

    def test_session_with_deletion_batches(self, tmp_path, workload_files, capsys):
        # Delete the first 20 original transactions over the session, in
        # addition to the inserts — the mixed batches run through FUP2.
        deletions_path = tmp_path / "deletions.txt"
        save_database(workload_files["original"].slice(0, 20), deletions_path)
        code = main(
            [
                "maintain",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                "--deletions", str(deletions_path),
                "--min-support", "0.1",
                "--batches", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "fup2" in output
        assert "20 deletions" in output

    def test_phantom_deletions_fail_cleanly(self, tmp_path, workload_files, capsys):
        deletions_path = tmp_path / "deletions.txt"
        deletions_path.write_text("9991 9992 9993\n")  # not in the database
        code = main(
            [
                "maintain",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                "--deletions", str(deletions_path),
                "--min-support", "0.1",
                "--batches", "2",
            ]
        )
        assert code == 2
        assert "not present in the maintained database" in capsys.readouterr().err

    def test_batches_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["maintain", "db.txt", "inc.txt", "--min-support", "0.1", "--batches", "0"]
            )


class TestSessionCommand:
    def test_full_round_trip(self, tmp_path, workload_files, capsys):
        """init → apply (two process lifetimes) → status → checkpoint → status."""
        session_dir = tmp_path / "session"
        code = main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
                "--checkpoint-interval", "10",
            ]
        )
        assert code == 0
        assert "initialised session" in capsys.readouterr().out

        # Two separate apply invocations: the process "dies" in between and
        # the second one recovers purely from the session directory.
        code = main(
            [
                "session", "apply", str(session_dir),
                "--insertions", str(workload_files["increment_path"]),
                "--batches", "2",
            ]
        )
        assert code == 0
        assert "applied 2 batch(es)" in capsys.readouterr().out

        deletions_path = tmp_path / "deletions.txt"
        save_database(workload_files["original"].slice(0, 10), deletions_path)
        code = main(
            ["session", "apply", str(session_dir), "--deletions", str(deletions_path)]
        )
        assert code == 0
        capsys.readouterr()

        code = main(["session", "status", str(session_dir)])
        assert code == 0
        status_output = capsys.readouterr().out
        assert "applied_seq: 3" in status_output
        assert "pending_batches: 3" in status_output

        code = main(["session", "checkpoint", str(session_dir)])
        assert code == 0
        assert "checkpointed" in capsys.readouterr().out

        code = main(["session", "status", str(session_dir)])
        assert code == 0
        status_output = capsys.readouterr().out
        assert "checkpoint_seq: 3" in status_output
        assert "pending_batches: 0" in status_output

        # The maintained state equals a from-scratch mine of the final database.
        final = MaintenanceSession.open(session_dir)
        expected_database = (
            workload_files["original"].slice(10).concatenate(workload_files["increment"])
        )
        assert sorted(final.database) == sorted(expected_database)
        remined = AprioriMiner(0.1).mine(final.database)
        assert final.result.lattice.supports() == remined.lattice.supports()
        final.close()

    def test_apply_without_files_is_an_error(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
            ]
        )
        capsys.readouterr()
        code = main(["session", "apply", str(session_dir)])
        assert code == 2
        assert "needs --insertions" in capsys.readouterr().err

    def test_status_of_missing_session_fails_cleanly(self, tmp_path, capsys):
        code = main(["session", "status", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_init_refuses_existing_session(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        args = [
            "session", "init", str(session_dir),
            str(workload_files["database_path"]),
            "--min-support", "0.1",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "already holds" in capsys.readouterr().err

    def test_phantom_deletions_fail_cleanly(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
            ]
        )
        deletions_path = tmp_path / "phantom.txt"
        deletions_path.write_text("9991 9992 9993\n")
        capsys.readouterr()
        code = main(
            ["session", "apply", str(session_dir), "--deletions", str(deletions_path)]
        )
        assert code == 2
        assert "not present in the maintained database" in capsys.readouterr().err
        # The refused batch left no journal record: status shows zero pending.
        capsys.readouterr()
        assert main(["session", "status", str(session_dir)]) == 0
        assert "pending_batches: 0" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_reports_speedups(self, workload_files, capsys):
        code = main(
            [
                "compare",
                str(workload_files["database_path"]),
                str(workload_files["increment_path"]),
                "--min-support", "0.1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "speed-up of FUP" in output
        assert "candidate ratio" in output


class TestExecutorFlags:
    def test_mine_with_process_executor(self, tmp_path, workload_files, capsys):
        code = main(
            [
                "mine", str(workload_files["database_path"]),
                "--min-support", "0.1",
                "--backend", "partitioned", "--shards", "3",
                "--executor", "processes", "--workers", "2",
            ]
        )
        assert code == 0
        assert "large itemsets" in capsys.readouterr().out

    def test_executor_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "db.txt", "--min-support", "0.1", "--executor", "fibers"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "db.txt", "--min-support", "0.1", "--workers", "0"]
            )

    def test_session_manifest_records_executor(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        code = main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
                "--backend", "partitioned", "--executor", "processes", "--workers", "2",
            ]
        )
        assert code == 0
        manifest = json.loads((session_dir / "session.json").read_text())
        assert manifest["executor"] == "processes"
        assert manifest["workers"] == 2
        capsys.readouterr()
        assert main(["session", "status", str(session_dir)]) == 0
        status_output = capsys.readouterr().out
        assert "executor: processes" in status_output
        assert "workers: 2" in status_output

    def test_pre_executor_manifests_still_open(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
            ]
        )
        manifest_path = session_dir / "session.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["executor"], manifest["workers"]
        manifest_path.write_text(json.dumps(manifest))
        capsys.readouterr()
        assert main(["session", "status", str(session_dir)]) == 0
        assert "executor: threads" in capsys.readouterr().out
        with MaintenanceSession.open(session_dir) as session:
            assert session.maintainer.fup_options.executor == "threads"


class TestReproduceCommand:
    def test_tiny_custom_matrix_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_reproduction.json"
        code = main(
            [
                "reproduce",
                "--workload", "T5.I2.D1.d1", "--scale", "0.2",
                "--supports", "0.1", "--increments", "0.5",
                "--engines", "vertical,partitioned:3:threads",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "measured speedups" in output
        assert "work ratios" in output
        payload = json.loads(out_path.read_text())
        assert payload["matrix"]["label"] == "custom"
        assert {row["strategy"] for row in payload["rows"]} == {"fup", "apriori", "dhp"}

    def test_update_then_check_docs_round_trip(self, tmp_path, capsys):
        docs_path = tmp_path / "reproduction.md"
        docs_path.write_text(
            "# title\n\n<!-- repro:reproduce:tables:begin -->\n"
            "<!-- repro:reproduce:tables:end -->\n"
        )
        matrix_args = [
            "reproduce",
            "--workload", "T5.I2.D1.d1", "--scale", "0.2",
            "--supports", "0.1", "--increments", "1.0",
            "--engines", "vertical",
        ]
        assert main([*matrix_args, "--update-docs", str(docs_path)]) == 0
        assert "work ratios" in docs_path.read_text()
        capsys.readouterr()
        assert main([*matrix_args, "--check-docs", str(docs_path)]) == 0
        assert "in sync" in capsys.readouterr().out

        # Any edit inside the generated block is drift: exit 1, named line.
        docs_path.write_text(docs_path.read_text().replace("work ratios", "work rations"))
        assert main([*matrix_args, "--check-docs", str(docs_path)]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_bad_engine_spec_fails_cleanly(self, capsys):
        code = main(["reproduce", "--quick", "--engines", "columnar"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err


class TestDocsCommand:
    def test_docs_prints_markdown(self, capsys):
        assert main(["docs"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("# CLI reference")
        assert "## `repro reproduce`" in output

    def test_docs_out_then_check(self, tmp_path, capsys):
        target = tmp_path / "cli.md"
        assert main(["docs", "--out", str(target)]) == 0
        capsys.readouterr()
        assert main(["docs", "--check", str(target)]) == 0
        assert "in sync" in capsys.readouterr().out

        target.write_text(target.read_text() + "manual edit\n")
        assert main(["docs", "--check", str(target)]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_malformed_numeric_flags_fail_cleanly(self, capsys):
        assert main(["reproduce", "--quick", "--supports", "abc"]) == 2
        assert "comma-separated numbers" in capsys.readouterr().err
        assert main(["reproduce", "--quick", "--increments", "0.5x"]) == 2
        assert "comma-separated numbers" in capsys.readouterr().err
        assert main(["reproduce", "--quick", "--engines", "partitioned:x"]) == 2
        assert "engine spec" in capsys.readouterr().err

    def test_check_docs_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["docs", "--check", str(tmp_path / "absent.md")]) == 2
        assert "cannot read docs file" in capsys.readouterr().err


class TestServe:
    """The serving subcommand: argument validation inline, serving via subprocess."""

    def test_needs_exactly_one_source(self, tmp_path, capsys):
        assert main(["serve"]) == 2
        assert "exactly one" in capsys.readouterr().err
        (tmp_path / "db.txt").write_text("1 2\n")
        assert main(
            ["serve", str(tmp_path / "db.txt"), "--session", str(tmp_path)]
        ) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_database_mode_needs_min_support(self, workload_files, capsys):
        assert main(["serve", str(workload_files["database_path"])]) == 2
        assert "--min-support" in capsys.readouterr().err

    def test_database_mode_rejects_refresh(self, workload_files, capsys):
        code = main(
            [
                "serve",
                str(workload_files["database_path"]),
                "--min-support", "0.2",
                "--refresh", "0.5",
            ]
        )
        assert code == 2
        assert "--refresh only applies with --session" in capsys.readouterr().err

    def test_session_mode_rejects_nonpositive_refresh(self, tmp_path, capsys):
        assert main(["serve", "--session", str(tmp_path), "--refresh", "0"]) == 2
        assert "--refresh must be positive" in capsys.readouterr().err

    def test_missing_session_fails_cleanly(self, tmp_path, capsys):
        assert main(["serve", "--session", str(tmp_path / "nope")]) == 2
        assert "holds no maintenance session" in capsys.readouterr().err

    def test_session_mode_rejects_mining_flags(self, tmp_path, capsys):
        """Flags the session manifest overrides must error, not silently no-op."""
        code = main(
            ["serve", "--session", str(tmp_path), "--min-support", "0.05"]
        )
        assert code == 2
        assert "--min-support" in capsys.readouterr().err
        code = main(["serve", "--session", str(tmp_path), "--backend", "vertical"])
        assert code == 2
        assert "--backend" in capsys.readouterr().err
        # Explicitly passing a flag at its database-mode default is still an
        # explicit request the manifest would override: also refused.
        code = main(
            ["serve", "--session", str(tmp_path), "--min-confidence", "0.5"]
        )
        assert code == 2
        assert "--min-confidence" in capsys.readouterr().err

    def test_async_flags_need_the_async_frontend(self, workload_files, capsys):
        """The async-only knobs must error under --frontend threaded, not no-op."""
        for flag, value in (
            ("--cache-size", "64"),
            ("--rate-limit", "100"),
            ("--max-connections", "32"),
        ):
            code = main(
                [
                    "serve",
                    str(workload_files["database_path"]),
                    "--min-support", "0.2",
                    flag, value,
                ]
            )
            assert code == 2
            err = capsys.readouterr().err
            assert flag in err
            assert "--frontend async" in err

    def test_rate_burst_needs_rate_limit(self, workload_files, capsys):
        code = main(
            [
                "serve",
                str(workload_files["database_path"]),
                "--min-support", "0.2",
                "--frontend", "async",
                "--rate-burst", "10",
            ]
        )
        assert code == 2
        assert "--rate-burst needs --rate-limit" in capsys.readouterr().err

    def test_async_flag_values_are_validated(self, workload_files, capsys):
        base = [
            "serve",
            str(workload_files["database_path"]),
            "--min-support", "0.2",
            "--frontend", "async",
        ]
        assert main(base + ["--cache-size", "-1"]) == 2
        assert "--cache-size must be >= 0" in capsys.readouterr().err
        assert main(base + ["--rate-limit", "0"]) == 2
        assert "--rate-limit must be positive" in capsys.readouterr().err
        assert main(base + ["--rate-limit", "5", "--rate-burst", "0.5"]) == 2
        assert "--rate-burst must be >= 1" in capsys.readouterr().err
        # --max-connections is typed positive_int, so argparse itself
        # refuses zero with the usual usage-error exit.
        with pytest.raises(SystemExit) as excinfo:
            main(base + ["--max-connections", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_occupied_port_fails_cleanly(self, workload_files, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        try:
            port = blocker.getsockname()[1]
            code = main(
                [
                    "serve",
                    str(workload_files["database_path"]),
                    "--min-support", "0.2",
                    "--port", str(port),
                ]
            )
        finally:
            blocker.close()
        assert code == 2
        assert "cannot serve on" in capsys.readouterr().err

    def test_serves_a_session_and_follows_live_updates(self, tmp_path, workload_files):
        """End to end over HTTP: a batch applied by another process shows up
        as a new snapshot version while the server keeps answering."""
        import json as jsonlib
        import os
        import subprocess
        import sys
        import time
        import urllib.request

        session_dir = tmp_path / "session"
        assert (
            main(
                [
                    "session",
                    "init",
                    str(session_dir),
                    str(workload_files["database_path"]),
                    "--min-support",
                    "0.1",
                ]
            )
            == 0
        )
        environment = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        environment["PYTHONPATH"] = src + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--session",
                str(session_dir),
                "--port",
                "0",
                "--refresh",
                "0.1",
                "--max-seconds",
                "60",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            banner = process.stdout.readline()
            assert "serving rules on http://" in banner, banner
            url = banner.split()[3]

            def fetch(path: str) -> dict:
                with urllib.request.urlopen(url + path, timeout=10) as response:
                    return jsonlib.loads(response.read())

            health = fetch("/health")
            assert health["status"] == "ok"
            assert health["version"] == 0
            assert health["publications"] == 1  # startup recovers exactly once

            recommendations = fetch("/recommend?basket=1,2&k=3")
            assert recommendations["version"] == 0

            # Another process applies a batch; the feed must pick it up.
            assert (
                main(
                    [
                        "session",
                        "apply",
                        str(session_dir),
                        "--insertions",
                        str(workload_files["increment_path"]),
                        "--batches",
                        "2",
                    ]
                )
                == 0
            )
            deadline = time.monotonic() + 30
            version = health["version"]
            while time.monotonic() < deadline:
                version = fetch("/health")["version"]
                if version > health["version"]:
                    break
                time.sleep(0.2)
            assert version == 2, f"served version never advanced past {version}"
        finally:
            process.terminate()
            process.wait(timeout=30)


class TestSnapshotCommands:
    def test_inspect_v1_then_migrate_then_inspect_v2(
        self, tmp_path, workload_files, capsys
    ):
        v1_path = tmp_path / "snap.v1"
        v2_path = tmp_path / "snap.v2"
        save_database(workload_files["original"], v1_path, binary=True)

        assert main(["snapshot", "inspect", str(v1_path)]) == 0
        out = capsys.readouterr().out
        assert "format_version: 1" in out
        assert f"transactions: {len(workload_files['original'])}" in out
        assert "lanes_present: False" in out

        assert main(["snapshot", "migrate", str(v1_path), str(v2_path)]) == 0
        out = capsys.readouterr().out
        assert "format v2" in out
        assert "item lanes" in out

        assert main(["snapshot", "inspect", str(v2_path)]) == 0
        out = capsys.readouterr().out
        assert "format_version: 2" in out
        assert "lanes_present: True" in out

        migrated = load_database(v2_path)
        assert (
            migrated.transactions() == workload_files["original"].transactions()
        )

    def test_inspect_corrupt_snapshot_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.v2"
        path.write_bytes(b"REPROSN2" + b"\x07" * 16)  # magic, truncated header
        assert main(["snapshot", "inspect", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_inspect_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["snapshot", "inspect", str(tmp_path / "absent.v2")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_migrating_a_v2_snapshot_exits_2(self, tmp_path, workload_files, capsys):
        from repro.db.store import write_snapshot

        v2_path = tmp_path / "snap.v2"
        write_snapshot(workload_files["original"], v2_path)
        assert (
            main(["snapshot", "migrate", str(v2_path), str(tmp_path / "again.v2")])
            == 2
        )
        assert "already snapshot format" in capsys.readouterr().err


class TestKernelFlag:
    def test_mine_with_explicit_kernel_matches_default(
        self, tmp_path, workload_files, capsys
    ):
        from repro.kernels import numpy_available

        kernel = "numpy" if numpy_available() else "bigint"
        state_default = tmp_path / "default.json"
        state_kernel = tmp_path / "kernel.json"
        base = ["mine", str(workload_files["database_path"]), "--min-support", "0.1"]
        assert main(base + ["--state", str(state_default)]) == 0
        assert (
            main(
                base
                + ["--backend", "vertical", "--kernel", kernel, "--state", str(state_kernel)]
            )
            == 0
        )
        capsys.readouterr()
        assert load_state(state_kernel)[0].supports() == load_state(state_default)[0].supports()

    def test_kernel_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "db.txt", "--min-support", "0.1", "--kernel", "simd"]
            )

    def test_session_manifest_records_kernel(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        assert (
            main(
                [
                    "session", "init", str(session_dir),
                    str(workload_files["database_path"]),
                    "--min-support", "0.1",
                    "--min-confidence", "0.5",
                    "--backend", "vertical",
                    "--kernel", "auto",
                ]
            )
            == 0
        )
        assert main(["session", "status", str(session_dir)]) == 0
        out = capsys.readouterr().out
        # The manifest records the *requested* name — resolution happens at
        # backend construction, so a numpy-free host can still recover an
        # "auto" session.
        assert "kernel: auto" in out

        manifest = json.loads((session_dir / "session.json").read_text())
        assert manifest["kernel"] == "auto"


class TestIngestCommand:
    """The streaming-intake subcommand: flag validation plus round trips."""

    @pytest.fixture()
    def ingest_session(self, tmp_path, workload_files):
        session_dir = tmp_path / "session"
        assert main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
            ]
        ) == 0
        return session_dir

    @staticmethod
    def _write_events(path, specs):
        lines = [
            json.dumps({"key": key, "items": items}) for key, items in specs
        ]
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_follow_needs_a_file_source(self, tmp_path, capsys):
        assert main(["ingest", str(tmp_path), "--follow"]) == 2
        assert "--follow needs a file source" in capsys.readouterr().err

    def test_nonpositive_watermarks_are_rejected(self, tmp_path, capsys):
        code = main(
            ["ingest", str(tmp_path), "--source", "x.jsonl", "--batch-seconds", "0"]
        )
        assert code == 2
        assert "--batch-seconds must be positive" in capsys.readouterr().err
        code = main(["ingest", str(tmp_path), "--source", "x.jsonl", "--poll", "0"])
        assert code == 2
        assert "--poll must be positive" in capsys.readouterr().err

    def test_file_ingest_then_replay_dedups(self, tmp_path, ingest_session, capsys):
        stream = self._write_events(
            tmp_path / "events.jsonl",
            [(f"k{i}", [1 + i % 3, 2 + i % 3]) for i in range(6)],
        )
        code = main(
            ["ingest", str(ingest_session), "--source", str(stream), "--batch-size", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 1: 4 applied, 0 duplicate(s) dropped" in out
        assert "ingested 6 event(s) in 2 batch(es): 6 applied, 0 deduplicated" in out
        assert "now at batch 2" in out

        # The producer replays the whole stream: everything dedups, no seq burned.
        code = main(
            ["ingest", str(ingest_session), "--source", str(stream), "--batch-size", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 event(s) in 2 batch(es): 0 applied, 6 deduplicated" in out
        assert "now at batch 2" in out

    def test_stdin_ingest(self, tmp_path, ingest_session, capsys, monkeypatch):
        payload = b'{"key": "a", "items": [1, 2]}\n{"key": "b", "items": [2, 3]}\n'

        class FakeStdin:
            buffer = io.BytesIO(payload)

        monkeypatch.setattr(sys, "stdin", FakeStdin())
        assert main(["ingest", str(ingest_session)]) == 0
        assert "2 applied, 0 deduplicated" in capsys.readouterr().out

    def test_corrupt_record_fails_cleanly(self, tmp_path, ingest_session, capsys):
        stream = tmp_path / "events.jsonl"
        stream.write_text('{"key": "a", "items": [1]}\nnot json\n')
        code = main(["ingest", str(ingest_session), "--source", str(stream)])
        assert code == 2
        assert "invalid JSON event record" in capsys.readouterr().err

    def test_missing_session_fails_cleanly(self, tmp_path, capsys):
        stream = self._write_events(tmp_path / "e.jsonl", [("a", [1])])
        code = main(["ingest", str(tmp_path / "nope"), "--source", str(stream)])
        assert code == 2
        assert "holds no maintenance session" in capsys.readouterr().err


class TestPipelineCommand:
    def test_once_serves_while_ingesting(self, tmp_path, workload_files, capsys):
        session_dir = tmp_path / "session"
        assert main(
            [
                "session", "init", str(session_dir),
                str(workload_files["database_path"]),
                "--min-support", "0.1",
            ]
        ) == 0
        stream = TestIngestCommand._write_events(
            tmp_path / "events.jsonl", [("a", [1, 2]), ("b", [2, 3]), ("a", [1, 2])]
        )
        capsys.readouterr()
        code = main(
            [
                "pipeline", str(session_dir),
                "--source", str(stream),
                "--once",
                "--port", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline serving on http://127.0.0.1:" in out
        assert "via the threaded front end" in out
        assert "3 event(s)" in out and "2 applied, 1 deduplicated" in out

    def test_follow_conflicts_with_stdin(self, tmp_path, capsys):
        # pipeline defaults to follow mode, so stdin requires --once.
        assert main(["pipeline", str(tmp_path)]) == 2
        assert "--follow needs a file source" in capsys.readouterr().err

"""Property tests: crash-recovery equivalence of durable maintenance sessions.

The durability contract is that a session interrupted after **any prefix** of
batches — the process simply disappears, no close, no checkpoint — and then
reopened produces bit-for-bit identical supports, rules and database to a
session that applied the same batches without interruption.  These tests
drive random batch sequences (insertions mixed with deletions of rows that
exist at that point of the sequence) through both paths on **all three
counting backends** and compare the end states exactly.

A second property covers the crash *inside* a batch: the journal record was
written but the batch was never applied in memory.  Recovery must apply it
exactly once.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AprioriMiner, FupOptions, MaintenanceSession, UpdateBatch
from repro.core.session import JOURNAL_NAME
from repro.mining.backends import BACKEND_NAMES

from .strategies import build_database, transactions

#: Compact databases keep every example's two mining sessions fast.
initial_databases = st.lists(transactions, min_size=4, max_size=20)

#: Per-batch shape: raw insertions plus positions (mod current size) to delete.
batch_shapes = st.lists(
    st.tuples(
        st.lists(transactions, min_size=0, max_size=4),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=3),
    ),
    min_size=1,
    max_size=5,
)


def _materialise_batches(database, shapes) -> list[UpdateBatch]:
    """Turn hypothesis shapes into concrete batches valid for *database*.

    Deletions are chosen by position against a shadow copy that tracks the
    sequence, so every deletion names a transaction that really exists at
    that point — the precondition strict maintenance enforces.
    """
    shadow = database.copy()
    batches: list[UpdateBatch] = []
    for number, (insertions, delete_positions) in enumerate(shapes):
        deletions = []
        for position in delete_positions:
            rows = shadow.transactions()
            if not rows:
                break
            victim = rows[position % len(rows)]
            deletions.append(list(victim))
            shadow.remove_batch([victim])
        shadow.extend(insertions)
        batches.append(
            UpdateBatch.from_iterables(
                insertions=insertions, deletions=deletions, label=f"batch-{number}"
            )
        )
    return batches


def _run_session(directory, database, batches, backend, interrupt_after=None):
    """Apply *batches*; optionally "crash" (abandon) and reopen mid-sequence."""
    session = MaintenanceSession.create(
        directory,
        database,
        min_support=0.25,
        min_confidence=0.5,
        fup_options=FupOptions(backend=backend, shards=2),
        checkpoint_interval=2,
    )
    for index, batch in enumerate(batches):
        if interrupt_after is not None and index == interrupt_after:
            # The crash: close() is write-free (no checkpoint, no journal
            # truncation), so this is disk-identical to a kill while
            # releasing the flock deterministically.
            session.close()
            session = MaintenanceSession.open(directory)
        session.apply(batch)
    return session


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@settings(max_examples=8, deadline=None)
@given(
    rows=initial_databases,
    shapes=batch_shapes,
    cut=st.integers(min_value=0, max_value=100),
)
def test_interrupted_session_equals_uninterrupted(tmp_path_factory, backend, rows, shapes, cut):
    database = build_database(rows)
    batches = _materialise_batches(database, shapes)
    prefix = cut % (len(batches) + 1)
    base = tmp_path_factory.mktemp("sessions")

    smooth = _run_session(base / "smooth", database, batches, backend)
    bumpy = _run_session(base / "bumpy", database, batches, backend, interrupt_after=prefix)

    assert list(bumpy.database) == list(smooth.database)
    assert bumpy.result.lattice.supports() == smooth.result.lattice.supports()
    assert [str(rule) for rule in bumpy.rules] == [str(rule) for rule in smooth.rules]
    # And both equal a from-scratch mine of the final database: nothing was
    # lost, double-applied, or silently desynced.
    remined = AprioriMiner(0.25).mine(smooth.database)
    assert smooth.result.lattice.supports() == remined.lattice.supports()
    smooth.close()
    bumpy.close()


@settings(max_examples=10, deadline=None)
@given(rows=initial_databases, shapes=batch_shapes)
def test_journaled_unapplied_batch_replays_exactly_once(tmp_path_factory, rows, shapes):
    database = build_database(rows)
    batches = _materialise_batches(database, shapes)
    base = tmp_path_factory.mktemp("wal")

    smooth = _run_session(base / "smooth", database, batches, "horizontal")

    # The bumpy twin crashes *inside* the final batch: its journal record hit
    # the disk but the in-memory apply never ran.
    directory = base / "bumpy"
    bumpy = _run_session(directory, database, batches[:-1], "horizontal")
    record = {"seq": bumpy.applied_seq + 1, **batches[-1].as_dict()}
    bumpy.close()  # the crash: write-free, releases the flock
    with (directory / JOURNAL_NAME).open("a") as handle:
        handle.write(json.dumps(record) + "\n")

    recovered = MaintenanceSession.open(directory)
    assert list(recovered.database) == list(smooth.database)
    assert recovered.result.lattice.supports() == smooth.result.lattice.supports()
    smooth.close()
    recovered.close()

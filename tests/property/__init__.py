"""Property-based tests (a package so ``from .strategies import ...`` works)."""

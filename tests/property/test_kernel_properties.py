"""Property tests for the bitmap-kernel seam and the v2 snapshot format.

Two invariants from PR 7 get the hypothesis treatment here:

* **kernel equivalence** — for any transaction sequence and any interleaving
  of mutations/derivations, the numpy lane kernel and the big-int kernel
  expose bit-for-bit identical indexes, and a full FUP/FUP2 maintenance
  session ends in the same mined state whichever kernel counts; and
* **snapshot fidelity** — any database round-trips exactly through snapshot
  v2 (with and without its lane section), agreeing with the v1 binary
  format it supersedes.

The cross-kernel properties skip on a numpy-free interpreter — with one
kernel available there is nothing to compare; the unit suite still covers
the big-int kernel's own behaviour there.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AprioriMiner,
    FupOptions,
    RuleMaintainer,
    TransactionDatabase,
    UpdateBatch,
    VerticalIndex,
    load_database,
    save_database,
)
from repro.db.store import open_snapshot, write_snapshot
from repro.kernels import numpy_available

from .strategies import build_database, increment_lists, transaction_lists, transactions

needs_two_kernels = pytest.mark.skipif(
    not numpy_available(), reason="only one kernel available without numpy"
)

#: One random step of the kernel-equivalence interleaving.  Deletions pick
#: victims by position modulo the current size, so they scatter arbitrarily.
operations = st.one_of(
    st.tuples(st.just("append"), transactions),
    st.tuples(st.just("extend"), st.lists(transactions, max_size=6)),
    st.tuples(
        st.just("delete"), st.lists(st.integers(min_value=0, max_value=300), max_size=8)
    ),
    st.tuples(st.just("slice"), st.tuples(st.integers(0, 80), st.integers(0, 80))),
    st.tuples(st.just("concatenate"), st.lists(transactions, max_size=6)),
)


def apply_operation(index: VerticalIndex, name: str, payload) -> VerticalIndex:
    if name == "append":
        index.append(payload)
    elif name == "extend":
        index.extend(payload)
    elif name == "delete":
        tids = sorted({tid % index.size for tid in payload}) if index.size else []
        index.delete_tids(tids)
    elif name == "slice":
        start, stop = payload
        index = index.slice(min(start, stop), max(start, stop))
    else:
        index = index.concatenate(VerticalIndex.build(payload, kernel=index.kernel))
    return index


@needs_two_kernels
@settings(max_examples=50, deadline=None)
@given(initial=transaction_lists, ops=st.lists(operations, max_size=10))
def test_kernels_agree_through_any_mutation_interleaving(initial, ops):
    rows = [tuple(row) for row in initial]
    bigint = VerticalIndex.build(rows, kernel="bigint")
    lanes = VerticalIndex.build(rows, kernel="numpy")
    assert dict(lanes) == dict(bigint)
    for name, payload in ops:
        bigint = apply_operation(bigint, name, payload)
        lanes = apply_operation(lanes, name, payload)
        assert lanes.kernel == "numpy"
        assert lanes.size == bigint.size
        assert dict(lanes) == dict(bigint)
        assert lanes.item_counts() == bigint.item_counts()


@needs_two_kernels
@settings(max_examples=25, deadline=None)
@given(
    rows=transaction_lists,
    increment=increment_lists,
    second=increment_lists,
    min_support=st.sampled_from([0.1, 0.25, 0.5]),
)
def test_maintenance_session_ends_identically_per_kernel(
    rows, increment, second, min_support
):
    """A mixed FUP/FUP2 session (inserts + deletions) is kernel-independent."""
    supports = {}
    for kernel in ("bigint", "numpy"):
        maintainer = RuleMaintainer(
            min_support,
            0.5,
            fup_options=FupOptions(backend="vertical", kernel=kernel),
        )
        maintainer.initialise(build_database(rows))
        maintainer.apply(UpdateBatch.from_iterables(insertions=increment))
        deletions = [list(t) for t in maintainer.database.transactions()[:2]]
        maintainer.apply(
            UpdateBatch.from_iterables(insertions=second, deletions=deletions)
        )
        supports[kernel] = maintainer.result.lattice.supports()
        final_rows = maintainer.database.transactions()
    assert supports["numpy"] == supports["bigint"]
    # ... and both equal a from-scratch re-mine of the final database.
    remined = AprioriMiner(min_support).mine(TransactionDatabase(final_rows))
    assert supports["bigint"] == remined.lattice.supports()


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(transactions, min_size=0, max_size=60), lanes=st.booleans())
def test_snapshot_v2_round_trips_any_database(tmp_path_factory, rows, lanes):
    tmp_path = tmp_path_factory.mktemp("snapshots")
    database = TransactionDatabase(rows)
    v1_path = tmp_path / "snap.v1"
    v2_path = tmp_path / "snap.v2"
    save_database(database, v1_path, binary=True)
    write_snapshot(database, v2_path, include_lanes=lanes)

    from_v1 = load_database(v1_path, binary=True)
    from_v2 = open_snapshot(v2_path)
    assert from_v2.transactions() == database.transactions()
    assert from_v2.transactions() == from_v1.transactions()
    assert dict(from_v2.vertical()) == dict(from_v1.vertical())

"""Property-based tests of the central correctness invariants.

The single most important property in this reproduction is the FUP
equivalence: for *any* original database, increment and threshold, the
incremental update must produce exactly the large itemsets (with exactly the
support counts) that re-mining the updated database from scratch produces.
Hypothesis hammers that invariant with adversarial small databases — empty
increments, increments larger than the database, items that vanish, items
that appear out of nowhere.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BACKEND_NAMES,
    AprioriMiner,
    DhpMiner,
    Fup2Updater,
    FupOptions,
    FupUpdater,
    MiningOptions,
    TransactionDatabase,
    make_backend,
)

from .strategies import build_database, increment_lists, supports, transaction_lists

#: Counting-engine names, as a strategy for the backend-equivalence properties.
backends = st.sampled_from(BACKEND_NAMES)
shard_counts = st.integers(min_value=1, max_value=5)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_equals_apriori_on_updated_database(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support).update(original, initial, increment_db)
    remined = AprioriMiner(min_support).mine(original.concatenate(increment_db))
    assert fup.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_with_all_optimisations_disabled_is_still_exact(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support, options=FupOptions.all_disabled()).update(
        original, initial, increment_db
    )
    remined = AprioriMiner(min_support).mine(original.concatenate(increment_db))
    assert fup.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, min_support=supports)
def test_dhp_equals_apriori(rows, min_support):
    database = build_database(rows)
    apriori = AprioriMiner(min_support).mine(database)
    dhp = DhpMiner(min_support).mine(database)
    assert dhp.lattice.supports() == apriori.lattice.supports()


@RELAXED
@given(
    rows=transaction_lists,
    insertions=increment_lists,
    delete_count=st.integers(min_value=0, max_value=20),
    min_support=supports,
)
def test_fup2_equals_apriori_on_modified_database(rows, insertions, delete_count, min_support):
    original = build_database(rows)
    delete_count = min(delete_count, len(original))
    deletions = original.slice(len(original) - delete_count)
    remaining = original.slice(0, len(original) - delete_count)
    insert_db = build_database(insertions) if insertions else TransactionDatabase()

    initial = AprioriMiner(min_support).mine(original)
    result = Fup2Updater(min_support).update(original, initial, insert_db, deletions)
    remined = AprioriMiner(min_support).mine(remaining.concatenate(insert_db))
    assert result.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_support_counts_are_true_counts(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    updated = original.concatenate(increment_db)
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support).update(original, initial, increment_db)
    for candidate, count in fup.lattice.supports().items():
        assert count == updated.count_itemset(candidate)


@RELAXED
@given(rows=transaction_lists, backend=backends, shards=shard_counts)
def test_backends_count_candidates_identically(rows, backend, shards):
    """Every engine returns byte-identical counts to the horizontal scan."""
    database = build_database(rows)
    items = sorted(database.items())
    candidates = [(item,) for item in items]
    candidates += [(a, b) for a in items[:6] for b in items[:6] if a < b]
    candidates += [tuple(items[:3])] if len(items) >= 3 else []
    reference = make_backend("horizontal").count_candidates(database, candidates)
    engine = make_backend(backend, shards=shards)
    assert engine.count_candidates(database, candidates) == reference
    assert engine.count_items(database) == make_backend("horizontal").count_items(database)


@RELAXED
@given(
    rows=transaction_lists,
    increment=increment_lists,
    min_support=supports,
    backend=backends,
    shards=shard_counts,
)
def test_miners_and_updaters_backend_invariant(rows, increment, min_support, backend, shards):
    """Mining and updating produce identical supports on every engine."""
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    reference_mine = AprioriMiner(min_support).mine(original)
    mined = AprioriMiner(
        min_support, options=MiningOptions(backend=backend, shards=shards)
    ).mine(original)
    assert mined.lattice.supports() == reference_mine.lattice.supports()

    reference_update = FupUpdater(min_support).update(original, reference_mine, increment_db)
    updated = FupUpdater(
        min_support, options=FupOptions(backend=backend, shards=shards)
    ).update(original, reference_mine, increment_db)
    assert updated.lattice.supports() == reference_update.lattice.supports()

"""Property-based tests of the central correctness invariants.

The single most important property in this reproduction is the FUP
equivalence: for *any* original database, increment and threshold, the
incremental update must produce exactly the large itemsets (with exactly the
support counts) that re-mining the updated database from scratch produces.
Hypothesis hammers that invariant with adversarial small databases — empty
increments, increments larger than the database, items that vanish, items
that appear out of nowhere.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AprioriMiner, DhpMiner, Fup2Updater, FupOptions, FupUpdater, TransactionDatabase

from .strategies import build_database, increment_lists, supports, transaction_lists

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_equals_apriori_on_updated_database(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support).update(original, initial, increment_db)
    remined = AprioriMiner(min_support).mine(original.concatenate(increment_db))
    assert fup.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_with_all_optimisations_disabled_is_still_exact(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support, options=FupOptions.all_disabled()).update(
        original, initial, increment_db
    )
    remined = AprioriMiner(min_support).mine(original.concatenate(increment_db))
    assert fup.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, min_support=supports)
def test_dhp_equals_apriori(rows, min_support):
    database = build_database(rows)
    apriori = AprioriMiner(min_support).mine(database)
    dhp = DhpMiner(min_support).mine(database)
    assert dhp.lattice.supports() == apriori.lattice.supports()


@RELAXED
@given(
    rows=transaction_lists,
    insertions=increment_lists,
    delete_count=st.integers(min_value=0, max_value=20),
    min_support=supports,
)
def test_fup2_equals_apriori_on_modified_database(rows, insertions, delete_count, min_support):
    original = build_database(rows)
    delete_count = min(delete_count, len(original))
    deletions = original.slice(len(original) - delete_count)
    remaining = original.slice(0, len(original) - delete_count)
    insert_db = build_database(insertions) if insertions else TransactionDatabase()

    initial = AprioriMiner(min_support).mine(original)
    result = Fup2Updater(min_support).update(original, initial, insert_db, deletions)
    remined = AprioriMiner(min_support).mine(remaining.concatenate(insert_db))
    assert result.lattice.supports() == remined.lattice.supports()


@RELAXED
@given(rows=transaction_lists, increment=increment_lists, min_support=supports)
def test_fup_support_counts_are_true_counts(rows, increment, min_support):
    original = build_database(rows)
    increment_db = build_database(increment) if increment else TransactionDatabase()
    updated = original.concatenate(increment_db)
    initial = AprioriMiner(min_support).mine(original)
    fup = FupUpdater(min_support).update(original, initial, increment_db)
    for candidate, count in fup.lattice.supports().items():
        assert count == updated.count_itemset(candidate)
